"""Packaging metadata and the console entry points.

Kept as a plain ``setup.py`` (instead of pyproject metadata) because the
offline environment ships a setuptools without the ``wheel`` package, which
PEP 660 editable installs require; ``python setup.py develop`` still works.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.8.0",
    description="Reproduction of 'A New Approach to Component Testing' "
                "(Brinkmeyer, DATE 2005)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-compile=repro.cli:main_compile",
            "repro-run=repro.cli:main_run",
            "repro-report=repro.cli:main_report",
            "repro-campaign=repro.cli:main_campaign",
            "repro-lint=repro.lint.cli:main",
            "repro-serve=repro.service.cli:main_serve",
        ],
    },
)
