"""Compatibility shim so `python setup.py develop` works on older setuptools.

The project metadata lives in pyproject.toml; this file only exists because
the offline environment ships a setuptools without the `wheel` package,
which PEP 660 editable installs require.
"""
from setuptools import setup

setup()
