#!/usr/bin/env python3
"""Perf trajectory harness: run the executor benchmarks, append to BENCH_executor.json.

Every PR that touches the execution hot path should leave a data point
behind.  This tool runs quick variants of the repository's six
executor-economics benchmarks -

* **plan_cache** (the E4 family workload): the whole body-electronics
  family campaigned serially, once with execution plans + stand reuse off
  and once with them on - the compile-once-run-many headline number,
* **vm** (PR 8): the same family workload, plan replay only vs. the
  bytecode VM fast path riding on it,
* **executor_scaling** (A3): one DUT campaign serial vs. a 4-worker
  thread pool,
* **portability** (E1): the paper suite across all three bundled stands,
* **async_stands** (A4): one script on N latency-simulated stands, serial
  vs. one async worker,
* **chaos_overhead** (robustness PR): the wiper campaign with no chaos
  policy vs. an installed-but-inert one - the no-policy path must stay
  within 2 % (the hooks are a single ``ACTIVE is not None`` check when
  off) -

and **appends** the wall clocks, speedup ratios and plan-cache statistics
as one trajectory point - keyed by git SHA + measurement timestamp - to
``BENCH_executor.json``.  The file accumulates the perf history across
commits (schema 2: ``{"schema", "benchmark", "latest", "trajectory"}``,
newest point last and mirrored under ``latest``; a legacy schema-1
single-point file is migrated in place).  CI runs ``--quick`` on every
push, uploads the file as an artifact and **fails when the plan-cached
serial path is not faster than the uncached one, or the VM path not
faster than plan replay alone** - the regressions this file exists to
catch.

Usage::

    python tools/bench_trajectory.py [--quick] [--output BENCH_executor.json]

Exit codes: 0 = measured and gates passed, 1 = a perf gate failed,
2 = the harness itself could not run.
"""

from __future__ import annotations

import argparse
import functools
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import Compiler                                   # noqa: E402
from repro.store import current_git_sha                           # noqa: E402
from repro.dut import InteriorLightEcu                            # noqa: E402
from repro.paper import interior_harness, paper_signal_set, paper_suite  # noqa: E402
from repro.targets import (                                       # noqa: E402
    CampaignSpec,
    build_campaign,
    campaignable_dut_names,
)
from repro.teststand import (                                     # noqa: E402
    GLOBAL_PLAN_CACHE,
    AsyncExecutor,
    SerialExecutor,
    ThreadExecutor,
    build_paper_stand,
    expand_jobs,
    run_across_stands,
    run_jobs,
)
from repro.teststand.stands import build_big_rack, build_minimal_bench  # noqa: E402

#: Schema version of the emitted JSON file (2 = accumulating trajectory;
#: 1 was a single point, overwritten on every run).
SCHEMA = 2


def load_trajectory(path: Path) -> list[dict]:
    """Existing trajectory points of *path*, oldest first.

    Understands both shapes: a schema-2 trajectory file and a legacy
    schema-1 single-point file (migrated to a one-point trajectory).  An
    unreadable or alien file yields an empty history rather than aborting -
    losing the old points is better than losing today's measurement, and
    the history lives in git anyway.
    """
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    if not isinstance(document, dict):
        return []
    if isinstance(document.get("trajectory"), list):
        return [p for p in document["trajectory"] if isinstance(p, dict)]
    if "workloads" in document:  # legacy schema 1: the file IS the point
        point = {k: v for k, v in document.items()
                 if k not in ("schema", "benchmark")}
        point.setdefault("git_sha", None)
        return [point]
    return []


def _best_of(fn, rounds: int) -> float:
    """Best (minimum) wall clock of *rounds* invocations of *fn*."""
    best = float("inf")
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_plan_cache(rounds: int) -> dict:
    """E4 family workload: serial campaign execution, plans off vs. on."""
    duts = campaignable_dut_names()

    def _campaigns(use_plans: bool):
        return [
            build_campaign(CampaignSpec(
                dut=dut, use_plans=use_plans, reuse_stands=use_plans,
            ))
            for dut in duts
        ]

    def _run(campaigns) -> None:
        for campaign, faults in campaigns:
            campaign.run(faults)

    uncached_campaigns = _campaigns(False)
    cached_campaigns = _campaigns(True)
    jobs = sum(
        (1 + len(faults)) * len(campaign.scripts)
        for campaign, faults in cached_campaigns
    )

    GLOBAL_PLAN_CACHE.clear()
    uncached = _best_of(lambda: _run(uncached_campaigns), rounds)
    GLOBAL_PLAN_CACHE.clear()
    _run(cached_campaigns)  # warm-up pass pays the plan compiles
    cached = _best_of(lambda: _run(cached_campaigns), rounds)
    stats = GLOBAL_PLAN_CACHE.stats.snapshot()

    return {
        "workload": f"{len(duts)} DUT family campaign, serial backend, {jobs} jobs/pass",
        "uncached_s": round(uncached, 4),
        "cached_s": round(cached, 4),
        "speedup": round(uncached / cached, 2) if cached > 0 else None,
        "plan_cache": stats,
    }


def bench_vm(rounds: int) -> dict:
    """PR 8 workload: the family campaign, plan replay only vs. full VM.

    Both paths run with plans and stand reuse on; the knob under test is
    ``use_vm``.  Campaigns are built once and reused across passes -
    rebuilding them would create fresh script objects every pass and
    defeat the identity-based caches both paths share, measuring an
    artifact instead of the VM.  Passes interleave vm-off/vm-on so a load
    spike on the machine hits both paths alike.
    """
    duts = campaignable_dut_names()

    def _campaigns(use_vm: bool):
        return [
            build_campaign(CampaignSpec(dut=dut, use_vm=use_vm))
            for dut in duts
        ]

    def _run(campaigns) -> None:
        for campaign, faults in campaigns:
            campaign.run(faults)

    plan_only_campaigns = _campaigns(False)
    vm_campaigns = _campaigns(True)

    GLOBAL_PLAN_CACHE.clear()
    _run(plan_only_campaigns)  # warm: plan compiles
    _run(vm_campaigns)         # warm: VM binds + prologue memos
    plan_only = float("inf")
    vm_wall = float("inf")
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        _run(plan_only_campaigns)
        plan_only = min(plan_only, time.perf_counter() - start)
        start = time.perf_counter()
        _run(vm_campaigns)
        vm_wall = min(vm_wall, time.perf_counter() - start)
    stats = GLOBAL_PLAN_CACHE.stats.snapshot()

    return {
        "workload": f"{len(duts)} DUT family campaign, serial backend, "
                    f"plan replay vs bytecode VM",
        "plan_only_s": round(plan_only, 4),
        "vm_s": round(vm_wall, 4),
        "speedup": round(plan_only / vm_wall, 2) if vm_wall > 0 else None,
        "vm_runs": stats["vm_runs"],
        "vm_degraded": stats["vm_degraded"],
    }


def bench_executor_scaling(rounds: int) -> dict:
    """A3 quick variant: one DUT campaign, serial vs. 4 worker threads."""
    campaign, faults = build_campaign(CampaignSpec(dut="wiper_ecu"))
    serial = _best_of(
        lambda: campaign.run(faults, executor=SerialExecutor()), rounds)
    threaded = _best_of(
        lambda: campaign.run(faults, executor=ThreadExecutor(max_workers=4)), rounds)
    return {
        "workload": "wiper_ecu campaign",
        "serial_s": round(serial, 4),
        "thread4_s": round(threaded, 4),
        "speedup": round(serial / threaded, 2) if threaded > 0 else None,
    }


def bench_portability(rounds: int) -> dict:
    """E1 quick variant: the whole paper suite on all three bundled stands."""
    suite = paper_suite()
    scripts = Compiler().compile_suite(suite)
    stands = {
        "paper_stand": build_paper_stand,
        "big_rack": build_big_rack,
        "minimal_bench": build_minimal_bench,
    }
    wall = _best_of(
        lambda: run_across_stands(
            scripts, suite.signals, stands, interior_harness, InteriorLightEcu,
        ),
        rounds,
    )
    return {
        "workload": f"{len(scripts)} scripts x {len(stands)} stands",
        "wall_s": round(wall, 4),
        "runs_per_pass": len(scripts) * len(stands),
    }


def bench_async_stands(rounds: int, *, stands: int, io_delay: float) -> dict:
    """A4 quick variant: N latency-simulated stands, serial vs. async."""
    script = Compiler().compile_test(paper_suite(), "interior_illumination")
    slow_stand = functools.partial(build_paper_stand, io_delay=io_delay)
    jobs = expand_jobs(
        (script,),
        paper_signal_set(),
        {f"stand{i}": slow_stand for i in range(stands)},
        interior_harness,
        {"baseline": InteriorLightEcu},
    )
    serial = _best_of(lambda: run_jobs(jobs, SerialExecutor()), rounds)
    asynced = _best_of(
        lambda: run_jobs(jobs, AsyncExecutor(concurrency=stands)), rounds)
    return {
        "workload": f"1 script x {stands} stands @ {io_delay * 1e3:.0f} ms/call",
        "serial_s": round(serial, 4),
        "async_s": round(asynced, 4),
        "speedup": round(serial / asynced, 2) if asynced > 0 else None,
    }


def bench_chaos_overhead(rounds: int) -> dict:
    """Robustness PR workload: the chaos hooks must be free when off.

    Every instrument call, store commit and job dispatch now carries a
    ``chaos.ACTIVE is not None`` guard.  This workload interleaves the
    wiper campaign with *no* policy installed against the same campaign
    under an installed-but-inert policy (all rates zero): the inert pass
    pays for the full per-job schedule machinery, so the no-policy pass
    landing within 2 % of it proves the guard itself costs nothing.
    Passes interleave so a load spike on the machine hits both paths
    alike.
    """
    from repro.chaos import ChaosPolicy, ChaosProfile
    from repro.teststand import ResiliencePolicy

    campaign, faults = build_campaign(CampaignSpec(dut="wiper_ecu"))
    inert = ResiliencePolicy(
        chaos=ChaosPolicy(seed=0, profile=ChaosProfile()))
    campaign.run(faults)  # warm-up: plan compiles + VM binds
    campaign.run(faults, resilience=inert)
    no_policy = float("inf")
    installed = float("inf")
    # One campaign run is ~30 ms, far too small for a 2 % gate at one
    # round; each measured pass runs the campaign three times and best-of
    # covers extra interleaved rounds, keeping the comparison honest for
    # about a second of harness cost.
    for _ in range(max(7, rounds)):
        start = time.perf_counter()
        for _ in range(3):
            campaign.run(faults)
        no_policy = min(no_policy, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(3):
            campaign.run(faults, resilience=inert)
        installed = min(installed, time.perf_counter() - start)
    return {
        "workload": "wiper_ecu campaign, no chaos policy vs installed "
                    "inert policy",
        "no_policy_s": round(no_policy, 4),
        "installed_s": round(installed, 4),
        "overhead_ratio": round(no_policy / installed, 4)
        if installed > 0 else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the executor perf benchmarks and write the "
                    "BENCH_executor.json trajectory point.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="single measurement round and a smaller async "
                             "workload (what CI runs)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_executor.json"),
                        help="where to write the JSON (default: repo root)")
    args = parser.parse_args(argv)

    rounds = 1 if args.quick else 3
    async_stands = 4 if args.quick else 8
    io_delay = 0.002 if args.quick else 0.003

    try:
        workloads = {
            "plan_cache": bench_plan_cache(rounds),
            "vm": bench_vm(rounds),
            "executor_scaling": bench_executor_scaling(rounds),
            "portability": bench_portability(rounds),
            "async_stands": bench_async_stands(
                rounds, stands=async_stands, io_delay=io_delay),
            "chaos_overhead": bench_chaos_overhead(rounds),
        }
    except Exception as exc:  # noqa: BLE001 - harness problem, not a gate
        print(f"error: benchmark harness failed: {exc}", file=sys.stderr)
        return 2

    plan = workloads["plan_cache"]
    vm_point = workloads["vm"]
    gates = {
        # The reason this file exists: the compiled-plan serial path must
        # beat the uncached path, on every machine, on every commit.
        # Compared on the raw wall clocks - the rounded speedup can read
        # 1.0 for a path that is genuinely (barely) faster.
        "plan_cache_faster_than_uncached": plan["cached_s"] < plan["uncached_s"],
        # PR 8: the bytecode VM must beat the plan-replay-only path it
        # rides on - a VM that is slower than what it replaced is a
        # regression no matter what the parity tests say.
        "vm_faster_than_plan_only": vm_point["vm_s"] < vm_point["plan_only_s"],
        # Robustness PR: with no chaos policy installed, the resilience
        # hooks in the hot path must cost <= 2 % against the same campaign
        # running under an installed-but-inert policy.
        "chaos_hooks_free_when_off": workloads["chaos_overhead"]["no_policy_s"]
        <= workloads["chaos_overhead"]["installed_s"] * 1.02,
    }

    point = {
        "git_sha": current_git_sha(),
        "measured_at_unix": int(time.time()),
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rounds": rounds,
        "workloads": workloads,
        "gates": gates,
    }
    output = Path(args.output)
    trajectory = load_trajectory(output)
    key = (point["git_sha"], point["measured_at_unix"])
    trajectory = [
        p for p in trajectory
        if (p.get("git_sha"), p.get("measured_at_unix")) != key
    ]
    trajectory.append(point)
    payload = {
        "schema": SCHEMA,
        "benchmark": "executor",
        "latest": point,
        "trajectory": trajectory,
    }
    output.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")

    print(f"wrote {output} ({len(trajectory)} trajectory point(s), "
          f"latest {point['git_sha'][:12] if point['git_sha'] else 'unknown'} "
          f"@ {point['measured_at_unix']})")
    print(f"  plan cache      : {plan['uncached_s']:.3f} s uncached -> "
          f"{plan['cached_s']:.3f} s cached ({plan['speedup']}x)")
    print(f"  bytecode vm     : {vm_point['plan_only_s']:.3f} s plan replay -> "
          f"{vm_point['vm_s']:.3f} s VM ({vm_point['speedup']}x)")
    print(f"  executor scaling: {workloads['executor_scaling']['speedup']}x "
          f"with 4 threads")
    print(f"  portability     : {workloads['portability']['wall_s']:.3f} s "
          f"for {workloads['portability']['runs_per_pass']} runs")
    print(f"  async stands    : {workloads['async_stands']['speedup']}x "
          f"over serial")
    chaos_point = workloads["chaos_overhead"]
    print(f"  chaos overhead  : {chaos_point['no_policy_s']:.3f} s off vs "
          f"{chaos_point['installed_s']:.3f} s inert "
          f"({chaos_point['overhead_ratio']}x)")
    if not all(gates.values()):
        failed = [name for name, passed in gates.items() if not passed]
        print(f"error: perf gate(s) failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
