#!/usr/bin/env python3
"""Markdown link checker for the documentation site (CI docs job).

Scans the given markdown files (directories are walked for ``*.md``) for
inline links and images, and verifies that every *relative* target exists
on disk, resolved against the linking file's directory.  External targets
(``http://``, ``https://``, ``mailto:``) are not fetched - CI must stay
meaningful offline - and pure in-page anchors (``#section``) are accepted
as long as the file itself exists.

Usage::

    python tools/check_md_links.py README.md docs ROADMAP.md

Exit code 0 when every link resolves, 1 with a per-link report otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images: [text](target) / ![alt](target "title").
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Target schemes that are not checked against the filesystem.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(arguments: list[str]) -> list[Path]:
    """Expand the CLI arguments into a sorted list of markdown files."""
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def check_file(path: Path) -> list[str]:
    """All broken-link complaints for one markdown file."""
    problems: list[str] = []
    if not path.is_file():
        return [f"{path}: file does not exist"]
    text = path.read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            relative = target.split("#", 1)[0]  # drop cross-file anchors
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path}:{line_number}: broken link {target!r} "
                    f"(resolved to {resolved})"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments:
        print("usage: check_md_links.py FILE_OR_DIR [...]", file=sys.stderr)
        return 2
    files = iter_markdown_files(arguments)
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{'OK' if not problems else f'{len(problems)} broken link(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
