#!/usr/bin/env python3
"""The paper's complete worked example, from sheets to verdicts.

Reproduces Section 3 and 4 of Brinkmeyer (DATE 2005): prints the three
definition tables, the generated XML snippet for the ``Ho`` check, the test
stand's resource table and connection matrix, then executes the ten-step
interior-illumination test on the paper's stand and prints the report.
"""

from repro.core import signal_fragment
from repro.paper import (
    compile_paper_script,
    paper_xml_snippet_action,
    render_connection_matrix,
    render_resource_table,
    render_status_table,
    render_test_circuit,
    render_test_definition_table,
    run_paper_example,
)
from repro.teststand import text_report


def main() -> None:
    print("=" * 78)
    print("Table 1 - test definition sheet (interior illumination)")
    print("=" * 78)
    print(render_test_definition_table())
    print()

    print("=" * 78)
    print("Table 2 - status table")
    print("=" * 78)
    print(render_status_table())
    print()

    print("=" * 78)
    print("XML snippet of Section 3 - checking the 'Ho' status of INT_ILL")
    print("=" * 78)
    print(signal_fragment(paper_xml_snippet_action()))
    print()

    script = compile_paper_script()
    print(f"(the full generated script has {len(script.steps)} steps and "
          f"{script.action_count()} signal statements)")
    print()

    print("=" * 78)
    print("Table 3 - resources of the test stand")
    print("=" * 78)
    print(render_resource_table())
    print()

    print("=" * 78)
    print("Table 4 - connection matrix")
    print("=" * 78)
    print(render_connection_matrix())
    print()

    print("=" * 78)
    print("Figure 1 - test circuit (generated from the connection model)")
    print("=" * 78)
    print(render_test_circuit())
    print()

    print("=" * 78)
    print("Execution on the paper's test stand")
    print("=" * 78)
    _, result = run_paper_example()
    print(text_report(result))


if __name__ == "__main__":
    main()
