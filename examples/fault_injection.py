#!/usr/bin/env python3
"""Fault-injection campaign: do the preserved test cases catch real defects?

The paper motivates its method with knowledge about "bugs, that have occurred
in the past".  This example seeds nine realistic defects into the interior
illumination ECU (broken lamp driver, dead 300 s timer, inverted night bit,
ignored door contact, ...) and measures how many of them

* the paper's original ten-step sheet detects, and
* the extended suite (which later project generations added) detects.

The gap between the two is exactly the knowledge-accumulation effect the
paper argues for: the original sheet misses the ignored front-right door
because it only ever exercises that door by day.

Everything below is a declarative :class:`repro.targets.CampaignSpec`
expanded by :func:`repro.targets.run_campaign`: the registry knows how to
wire the interior-light ECU, and the executor engine fans the
(script x fault) jobs out over any backend - try ``--jobs 4`` or
``--backend process`` and note that the verdict tables do not change, only
the wall time does.
"""

import argparse

from repro.paper import extended_suite, paper_suite
from repro.targets import CampaignSpec, run_campaign
from repro.teststand import EXECUTION_BACKENDS, make_executor


def campaign(suite, label: str, executor):
    # Both campaigns share one executor, so --backend/--jobs are applied
    # consistently to both runs.
    result = run_campaign(CampaignSpec(suite=suite, stand="paper"),
                          executor=executor)
    print("=" * 78)
    print(f"{label}: {len(suite)} test sheet(s)")
    print("=" * 78)
    print(result.table())
    print(result.summary())
    if result.execution is not None:
        print(result.execution.summary())
    print()
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker count (default: 1 = serial)")
    parser.add_argument("--backend", choices=EXECUTION_BACKENDS + ("auto",),
                        default="auto", help="execution backend")
    args = parser.parse_args()
    executor = make_executor(args.backend, args.jobs)

    paper_result = campaign(paper_suite(),
                            "paper suite (the original sheet)", executor)
    extended_result = campaign(extended_suite(),
                               "extended suite (accumulated knowledge)", executor)

    print(f"detection rate, paper sheet only : {paper_result.detection_rate:.0%}")
    print(f"detection rate, extended suite   : {extended_result.detection_rate:.0%}")
    gained = set(extended_result.detected) - set(paper_result.detected)
    print(f"additional defects caught by the extended suite: {sorted(gained) or 'none'}")


if __name__ == "__main__":
    main()
