#!/usr/bin/env python3
"""Fault-injection campaign: do the preserved test cases catch real defects?

The paper motivates its method with knowledge about "bugs, that have occurred
in the past".  This example seeds nine realistic defects into the interior
illumination ECU (broken lamp driver, dead 300 s timer, inverted night bit,
ignored door contact, ...) and measures how many of them

* the paper's original ten-step sheet detects, and
* the extended suite (which later project generations added) detects.

The gap between the two is exactly the knowledge-accumulation effect the
paper argues for: the original sheet misses the ignored front-right door
because it only ever exercises that door by day.
"""

from repro.analysis import FaultCampaign, interior_light_faults
from repro.core import Compiler
from repro.dut import InteriorLightEcu, LoadSpec, TestHarness, body_can_database
from repro.paper import extended_suite, paper_signal_set, paper_suite
from repro.teststand import build_paper_stand


def interior_harness(ecu):
    """Wire the (possibly faulty) ECU exactly like the paper's test circuit."""
    return TestHarness(ecu, body_can_database(),
                       loads=(LoadSpec("INT_ILL_F", "INT_ILL_R", 6.0),))


def run_campaign(suite, label: str):
    scripts = Compiler().compile_suite(suite)
    campaign = FaultCampaign(scripts, paper_signal_set(), build_paper_stand,
                             interior_harness, InteriorLightEcu)
    result = campaign.run(interior_light_faults())
    print("=" * 78)
    print(f"{label}: {len(scripts)} test sheet(s)")
    print("=" * 78)
    print(result.table())
    print(result.summary())
    print()
    return result


def main() -> None:
    paper_result = run_campaign(paper_suite(), "paper suite (the original sheet)")
    extended_result = run_campaign(extended_suite(), "extended suite (accumulated knowledge)")

    print(f"detection rate, paper sheet only : {paper_result.detection_rate:.0%}")
    print(f"detection rate, extended suite   : {extended_result.detection_rate:.0%}")
    gained = set(extended_result.detected) - set(paper_result.detected)
    print(f"additional defects caught by the extended suite: {sorted(gained) or 'none'}")


if __name__ == "__main__":
    main()
