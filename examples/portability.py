#!/usr/bin/env python3
"""Test-stand independence: one XML script, three very different stands.

This is the paper's central claim: because the test definition only talks
about signals, statuses and methods, the *same* generated script runs on any
stand that provides interpreters for the methods - regardless of which
instruments the stand owns or how they are wired.

The script compiled from the paper's sheet is executed, byte-identically, on

* the paper's stand (DVM + two decades behind a small switching matrix, 12 V),
* a big HIL rack (many instruments behind a full crossbar, 13.5 V),
* a minimal hand-wired bench (handheld DVM, two small decades, 12.5 V),

and the verdict table plus the per-stand resource choices are printed.
"""

from repro.core import script_to_string
from repro.paper import build_paper_harness, compile_paper_script, paper_signal_set
from repro.teststand import (
    TestStandInterpreter,
    build_big_rack,
    build_minimal_bench,
    build_paper_stand,
    campaign_summary,
    format_table,
)


def main() -> None:
    script = compile_paper_script()
    xml_text = script_to_string(script)
    print(f"generated script: {script.name}, {len(script.steps)} steps, "
          f"{len(xml_text.splitlines())} lines of XML\n")

    results = []
    rows = []
    for builder in (build_paper_stand, build_big_rack, build_minimal_bench):
        stand = builder()
        harness = build_paper_harness(ubatt=stand.supply_voltage)
        interpreter = TestStandInterpreter(stand, harness, paper_signal_set())
        result = interpreter.run(script)
        results.append(result)
        rows.append((
            stand.name,
            f"{stand.supply_voltage:g} V",
            str(len(stand.resources)),
            ", ".join(result.resources_used()),
            str(result.verdict),
        ))

    print(format_table(("stand", "UBATT", "#resources", "resources used", "verdict"), rows))
    print()
    print(campaign_summary(results))
    print()
    identical = len({result.verdict for result in results}) == 1
    print("same XML script, identical verdicts on all stands:", identical)


if __name__ == "__main__":
    main()
