#!/usr/bin/env python3
"""Test-stand independence: one XML script, three very different stands.

This is the paper's central claim: because the test definition only talks
about signals, statuses and methods, the *same* generated script runs on any
stand that provides interpreters for the methods - regardless of which
instruments the stand owns or how they are wired.

The script compiled from the paper's sheet is executed, byte-identically, on

* the paper's stand (DVM + two decades behind a small switching matrix, 12 V),
* a big HIL rack (many instruments behind a full crossbar, 13.5 V),
* a minimal hand-wired bench (handheld DVM, two small decades, 12.5 V),

and the verdict table plus the per-stand resource choices are printed.  The
stands and the DUT wiring come from the :mod:`repro.targets` registry
(:func:`~repro.targets.stand_factories_for` yields one picklable stand
factory per registered stand that carries the DUT's adapter); the per-stand
runs are independent jobs in one :func:`repro.teststand.run_across_stands`
batch - pass ``--jobs N`` to fan it out over a thread pool.
"""

import argparse

from repro.core import script_to_string
from repro.paper import compile_paper_script
from repro.targets import get_dut, stand_factories_for
from repro.teststand import campaign_summary, format_table, make_executor, run_across_stands


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker count (default: 1 = serial)")
    args = parser.parse_args()

    script = compile_paper_script()
    xml_text = script_to_string(script)
    print(f"generated script: {script.name}, {len(script.steps)} steps, "
          f"{len(xml_text.splitlines())} lines of XML\n")

    target = get_dut(script.dut)
    stand_factories = stand_factories_for(target)
    report = run_across_stands(
        script,
        target.signals_factory(),
        stand_factories,
        target.harness_factory,
        target.ecu_factory,
        executor=make_executor("auto", args.jobs),
    )

    display_stands = {label: factory() for label, factory in stand_factories.items()}
    rows = []
    for job_result in report:
        stand = display_stands[job_result.job.stand_label]
        result = job_result.result
        rows.append((
            stand.name,
            f"{stand.supply_voltage:g} V",
            str(len(stand.resources)),
            ", ".join(result.resources_used()),
            str(result.verdict),
        ))

    print(format_table(("stand", "UBATT", "#resources", "resources used", "verdict"), rows))
    print()
    print(campaign_summary(report.test_results()))
    print()
    print(report.summary())
    identical = len({result.verdict for result in report.test_results()}) == 1
    print("same XML script, identical verdicts on all stands:", identical)


if __name__ == "__main__":
    main()
