#!/usr/bin/env python3
"""Knowledge reuse across projects: a second ECU shares the test vocabulary.

The paper's long-term goal is that OEM and suppliers build up component-test
knowledge over many projects.  This example sets up a *second* project - the
central locking ECU - whose sheets reuse the shared status vocabulary
(``Open``, ``Closed``, ``0``, ``1``, ``Lo``, ``Ho``) and only add what is
genuinely new (``Lock``, ``Unlock``, ``Locked`` ...).  It then

* executes the locking suite on the big HIL rack,
* prints the pairwise reuse metrics between the three suites
  (paper, extended interior light, central locking), and
* prints which fraction of the combined status vocabulary every project uses.
"""

from repro.analysis import compare_suites, vocabulary_reuse
from repro.core import Compiler
from repro.paper import (
    build_locking_harness,
    extended_suite,
    locking_signal_set,
    locking_suite,
    paper_suite,
)
from repro.teststand import TestStandInterpreter, build_big_rack, campaign_summary, format_table


def main() -> None:
    suite = locking_suite()
    compiler = Compiler()
    stand = build_big_rack(pins=("KEY_SW", "UNLOCK_SW", "LOCK_LED", "LOCK_ACT"))

    results = []
    for test in suite:
        script = compiler.compile_test(suite, test)
        interpreter = TestStandInterpreter(stand, build_locking_harness(), locking_signal_set())
        results.append(interpreter.run(script))
    print("central locking project, executed on the big rack:")
    print(campaign_summary(results))
    print()

    projects = {
        "interior light (paper)": paper_suite(),
        "interior light (extended)": extended_suite(),
        "central locking": locking_suite(),
    }
    print("pairwise reuse metrics:")
    names = list(projects)
    rows = []
    for i, name_a in enumerate(names):
        for name_b in names[i + 1:]:
            report = compare_suites(projects[name_a], projects[name_b])
            rows.append((name_a, name_b, f"{report.status_jaccard:.2f}",
                         f"{report.method_jaccard:.2f}",
                         str(len(report.shared_statuses))))
    print(format_table(("project A", "project B", "status J", "method J", "shared statuses"), rows))
    print()

    print("fraction of projects using each status of the combined vocabulary:")
    usage = vocabulary_reuse(list(projects.values()))
    rows = [(status, f"{fraction:.0%}") for status, fraction in usage.items()]
    print(format_table(("status", "used by"), rows))


if __name__ == "__main__":
    main()
