#!/usr/bin/env python3
"""Quickstart: define, generate and execute a component test in ~60 lines.

The workflow follows the paper exactly:

1. describe the DUT's signals (signal definition sheet),
2. describe the status vocabulary (status table),
3. write a test as timed steps assigning statuses to signals (test sheet),
4. generate the stand-independent XML test script,
5. execute the script on a virtual test stand against the simulated ECU.
"""

from repro.core import Compiler, Signal, SignalDirection, SignalKind, SignalSet
from repro.core import StatusDefinition, StatusTable, TestDefinition, TestSuite
from repro.core import script_to_string
from repro.paper import build_paper_harness, paper_signal_set
from repro.teststand import TestStandInterpreter, build_paper_stand, text_report

# 1. Signals of the device under test (here: the interior illumination ECU).
signals = paper_signal_set()

# 2. Status vocabulary: every symbolic status is bound to a method.
statuses = StatusTable((
    StatusDefinition.from_cells("Off", "put_can", "data", nominal="0001B"),
    StatusDefinition.from_cells("Open", "put_r", "r", nominal="0,5", minimum="0", maximum="2"),
    StatusDefinition.from_cells("Closed", "put_r", "r", nominal="INF", minimum="5000", maximum="INF"),
    StatusDefinition.from_cells("1", "put_can", "data", nominal="1B"),
    StatusDefinition.from_cells("0", "put_can", "data", nominal="0B"),
    StatusDefinition.from_cells("Lo", "get_u", "u", variable="UBATT",
                                nominal="0", minimum="0", maximum="0,3"),
    StatusDefinition.from_cells("Ho", "get_u", "u", variable="UBATT",
                                nominal="1", minimum="0,7", maximum="1,1"),
))

# 3. A small test sheet: open the driver door at night, expect the lamp on.
test = TestDefinition("night_courtesy_light", signals=("NIGHT", "DS_FL", "INT_ILL"))
test.add_step(0.5, {"NIGHT": "1", "DS_FL": "Closed", "INT_ILL": "Lo"},
              remark="night, door closed: lamp off")
test.add_step(0.5, {"DS_FL": "Open", "INT_ILL": "Ho"},
              remark="door open: lamp on")
test.add_step(0.5, {"DS_FL": "Closed", "INT_ILL": "Lo"},
              remark="door closed again: lamp off")

suite = TestSuite("interior_light_ecu", signals, statuses, (test,))
suite.validate()

# 4. Generate the stand-independent XML test script.
script = Compiler().compile_test(suite, "night_courtesy_light")
print("Generated XML test script:")
print(script_to_string(script))

# 5. Execute it on the paper's virtual test stand against the simulated ECU.
stand = build_paper_stand()
harness = build_paper_harness()
interpreter = TestStandInterpreter(stand, harness, signals)
result = interpreter.run(script)

print(text_report(result))
print()
print("overall verdict:", result.verdict)
