#!/usr/bin/env python3
"""Campaign the whole body-electronics family through the target registry.

The paper's reuse argument scales beyond one DUT: the same status
vocabulary, sheet format and execution engine serve a whole family of
control units.  This example walks every campaignable DUT in the
:mod:`repro.targets` registry - interior light, central locking, window
lifter, wiper and exterior light - runs its bundled suite against its fault
catalogue on an adaptable stand, and prints one coverage line per DUT.

Faults the catalogue does *not* expect the current sheets to catch (the
"knowledge gaps" the paper says future sheets must close) are listed
separately, so the output doubles as the family's open test-knowledge
backlog.
"""

import argparse

from repro.targets import (
    CampaignSpec,
    campaignable_dut_names,
    default_stand_for,
    get_dut,
    run_campaign,
)
from repro.teststand import EXECUTION_BACKENDS, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stand", default=None,
                        help="stand to campaign on (default: one carrying "
                             "each DUT's adapter)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker count (default: 1 = serial)")
    parser.add_argument("--backend", choices=EXECUTION_BACKENDS + ("auto",),
                        default="auto", help="execution backend")
    args = parser.parse_args()

    rows = []
    gaps: list[tuple[str, str, str]] = []
    for dut in campaignable_dut_names():
        target = get_dut(dut)
        stand = args.stand or default_stand_for(target)
        result = run_campaign(CampaignSpec(
            dut=dut, stand=stand, backend=args.backend, jobs=args.jobs,
        ))
        rows.append((
            dut,
            stand,
            str(len(target.suite_factory())) if target.suite_factory else "-",
            str(len(result.outcomes)),
            f"{result.detection_rate:.0%}",
            "clean" if result.baseline_clean else "NOT CLEAN",
        ))
        for outcome in result.outcomes:
            if not outcome.detected:
                gaps.append((dut, outcome.fault.name, outcome.fault.description))

    print(format_table(
        ("DUT", "stand", "sheets", "faults", "detected", "baseline"), rows))
    print()
    if gaps:
        print("known test-knowledge gaps (future sheets must close these):")
        print(format_table(("DUT", "fault", "description"), gaps))
    else:
        print("no detection gaps - every seeded fault is caught.")


if __name__ == "__main__":
    main()
