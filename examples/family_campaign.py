#!/usr/bin/env python3
"""Campaign the whole body-electronics family through the target registry.

The paper's reuse argument scales beyond one DUT: the same status
vocabulary, sheet format and execution engine serve a whole family of
control units.  This example walks every campaignable DUT in the
:mod:`repro.targets` registry - interior light, central locking, window
lifter, wiper and exterior light - runs its bundled suite against its fault
catalogue on an adaptable stand, and prints one coverage line per DUT.

Faults that escape their suite (the "knowledge gaps" the paper says future
sheets must close) are listed separately, so the output doubles as the
family's open test-knowledge backlog.  Since the current-measurement and
tightened-timing sheets closed the four catalogued gaps (fast_relay_weak,
travel_slightly_slow, drl_dim, unlocks_at_speed), a healthy checkout prints
an empty backlog - seed a new fault without a matching sheet to see the
listing come back.

Each row also shows the registry's method-coverage negotiation: which
registered stands can execute the DUT's bundled suite at all (a stand
without an ammeter cannot serve the get_i sheets and would be rejected
pre-flight).
"""

import argparse

from repro.targets import (
    CampaignSpec,
    campaignable_dut_names,
    default_stand_for,
    get_dut,
    method_coverage,
    run_campaign,
)
from repro.teststand import EXECUTION_BACKENDS, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stand", default=None,
                        help="stand to campaign on (default: one carrying "
                             "each DUT's adapter)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker count (default: 1 = serial)")
    parser.add_argument("--backend", choices=EXECUTION_BACKENDS + ("auto",),
                        default="auto", help="execution backend")
    args = parser.parse_args()

    rows = []
    gaps: list[tuple[str, str, str]] = []
    for dut in campaignable_dut_names():
        target = get_dut(dut)
        stand = args.stand or default_stand_for(target)
        result = run_campaign(CampaignSpec(
            dut=dut, stand=stand, backend=args.backend, jobs=args.jobs,
        ))
        coverage = method_coverage(target)
        runnable = ", ".join(name for name, missing in coverage.items()
                             if missing == ()) or "-"
        rows.append((
            dut,
            stand,
            str(len(target.suite_factory())) if target.suite_factory else "-",
            str(len(result.outcomes)),
            f"{result.detection_rate:.0%}",
            "clean" if result.baseline_clean else "NOT CLEAN",
            runnable,
        ))
        for outcome in result.outcomes:
            if not outcome.detected:
                gaps.append((dut, outcome.fault.name, outcome.fault.description))

    print(format_table(
        ("DUT", "stand", "sheets", "faults", "detected", "baseline",
         "runs on"), rows))
    print()
    if gaps:
        print("known test-knowledge gaps (future sheets must close these):")
        print(format_table(("DUT", "fault", "description"), gaps))
    else:
        print("no detection gaps - every seeded fault is caught.")


if __name__ == "__main__":
    main()
