"""The persistent result store: record, query, re-render, diff.

:class:`ResultStore` turns :class:`~repro.teststand.executor.ExecutionReport`
objects - which otherwise die with the process - into rows of a normalized
SQLite database (see :mod:`repro.store.schema`), stamped with the git SHA
and ``repro.__version__`` of the producing process.  The contract mirrors
the dict serialization it is built on: a recorded run re-renders
**byte-identically** - ``get_run(run_id).render()`` equals what
``repro-campaign`` printed live, and ``diff_runs(a, b)`` of two identical
campaigns (e.g. the same family campaign on the serial and async backends)
is empty.

Concurrency model: every public call opens its own connection (with a busy
timeout) and commits one transaction, so many threads - or many processes -
may record into the same store file.  ``":memory:"`` stores keep a single
shared connection behind a lock instead (handy for tests and the service's
default), at the price of dying with the process like any in-memory
database.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import subprocess
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .. import chaos as _chaos
from ..analysis.campaign import BASELINE_GROUP, CampaignResult, FaultRunOutcome
from ..analysis.faults import FaultModel
from ..core.errors import ReproError
from ..teststand.executor import ExecutionReport, JobResult
from ..teststand.report import format_table
from ..teststand.serialize import (
    REPORT_SCHEMA,
    report_from_dict,
    report_to_dict,
    restored_factory,
)
from .schema import DDL, STORE_SCHEMA

__all__ = [
    "StoreError",
    "ResultStore",
    "StoredRun",
    "RunInfo",
    "CaseRow",
    "VerdictDelta",
    "RunDiff",
    "current_git_sha",
]


class StoreError(ReproError):
    """A result-store operation failed (unknown run, schema mismatch...)."""


def current_git_sha() -> str | None:
    """Best-effort git SHA of the producing process's working tree.

    ``None`` when git is unavailable or the process does not run inside a
    repository - recording never fails over provenance metadata.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except Exception:
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def _canonical(document: object) -> str:
    """Canonical JSON: the store's content-fingerprint input format."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _fingerprint(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _catalogue_content(faults: Sequence[FaultModel]) -> list[dict]:
    return [
        {
            "name": fault.name,
            "description": fault.description,
            "expected_detected": bool(fault.expected_detected),
        }
        for fault in faults
    ]


def _restored_faults(content: Iterable[Mapping]) -> list[FaultModel]:
    """Catalogue metadata rows back into (render-only) fault models.

    The factories are :func:`~repro.teststand.serialize.restored_factory`
    placeholders: a stored catalogue describes what *was* injected, it
    cannot rebuild the faulty ECUs.
    """
    return [
        FaultModel(
            name=entry["name"],
            description=entry.get("description", ""),
            factory=restored_factory,
            expected_detected=bool(entry.get("expected_detected", True)),
        )
        for entry in content
    ]


@dataclass(frozen=True)
class RunInfo:
    """One row of :meth:`ResultStore.list_runs`."""

    run_id: int
    created_at: float
    dut: str
    stand: str
    backend: str
    workers: int
    wall_time: float
    jobs: int
    verdict: str
    git_sha: str
    repro_version: str


@dataclass(frozen=True)
class CaseRow:
    """One row of :meth:`ResultStore.query`: a (run x job x case) verdict."""

    run_id: int
    created_at: float
    job: str
    script: str
    dut: str
    group: str
    stand: str
    verdict: str
    passed: bool
    duration: float
    wall_time: float


@dataclass(frozen=True)
class VerdictDelta:
    """One changed sheet in a run-vs-run diff."""

    job: str
    verdict_a: str
    verdict_b: str


@dataclass(frozen=True)
class RunDiff:
    """Per-sheet verdict deltas between two stored runs.

    ``changed`` lists jobs present in both runs whose verdicts differ;
    ``only_a`` / ``only_b`` list job ids that exist in one run only.  Jobs
    are matched by their deterministic
    :attr:`~repro.teststand.executor.Job.job_id`
    (``group[@stand]/script#index``), so backend and worker-count choices
    never show up as deltas.
    """

    run_a: int
    run_b: int
    changed: tuple[VerdictDelta, ...] = ()
    only_a: tuple[str, ...] = ()
    only_b: tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        """True when the two runs carry identical per-sheet verdicts."""
        return not (self.changed or self.only_a or self.only_b)

    def table(self) -> str:
        """Text table of the deltas (empty diffs render a one-line note)."""
        if self.empty:
            return f"runs {self.run_a} and {self.run_b}: no verdict deltas"
        header = ("job", f"run {self.run_a}", f"run {self.run_b}")
        rows = [(delta.job, delta.verdict_a, delta.verdict_b)
                for delta in self.changed]
        rows.extend((job, "-", "(missing)") for job in self.only_a)
        rows.extend((job, "(missing)", "-") for job in self.only_b)
        return format_table(header, rows)

    def summary(self) -> str:
        return (
            f"diff runs {self.run_a} vs {self.run_b}: "
            f"{len(self.changed)} changed verdict(s), "
            f"{len(self.only_a)} only in {self.run_a}, "
            f"{len(self.only_b)} only in {self.run_b}"
        )


class StoredRun:
    """One recorded run, lazily rebuilt into live report objects.

    Attribute access is cheap (row data only); :meth:`execution_report`
    and :meth:`campaign_result` rebuild real
    :class:`~repro.teststand.executor.ExecutionReport` /
    :class:`~repro.analysis.campaign.CampaignResult` objects from the rows
    (cached per instance), so :meth:`render` reproduces the live
    ``repro-campaign`` stdout byte-identically.
    """

    def __init__(self, store: "ResultStore", row: Mapping,
                 campaign: Mapping | None, catalogue: list[dict] | None):
        self._store = store
        self.run_id = int(row["id"])
        self.created_at = float(row["created_at"])
        self.git_sha = row["git_sha"] or ""
        self.repro_version = row["repro_version"]
        self.backend = row["backend"]
        self.workers = int(row["workers"])
        self.wall_time = float(row["wall_time"])
        #: Plan-cache statistics snapshot of the producing process (dict),
        #: or None when none was recorded.
        self.plan_cache = (
            json.loads(row["plan_cache"]) if row["plan_cache"] else None
        )
        #: Campaign configuration metadata (dict) or None for bare reports.
        self.campaign = dict(campaign) if campaign is not None else None
        #: Selected fault-catalogue metadata (list of dicts) or None.
        self.catalogue = catalogue
        self._report: ExecutionReport | None = None
        self._result: CampaignResult | None = None

    @property
    def dut(self) -> str:
        if self.campaign and self.campaign.get("dut"):
            return self.campaign["dut"]
        report = self.execution_report()
        for job_result in report.results:
            if job_result.job.script.dut:
                return job_result.job.script.dut
        return ""

    def execution_report(self) -> ExecutionReport:
        """The run's :class:`ExecutionReport`, rebuilt from the rows."""
        if self._report is None:
            self._report = ExecutionReport.from_dict(
                self._store._report_document(self.run_id)
            )
        return self._report

    def campaign_result(self) -> CampaignResult:
        """The run's :class:`CampaignResult`, rebuilt from report + catalogue.

        Raises :class:`StoreError` for runs recorded without a fault
        catalogue (bare ``record_report`` calls) - there is no fault table
        to rebuild for those; use :meth:`execution_report` instead.
        """
        if self._result is not None:
            return self._result
        if self.catalogue is None:
            raise StoreError(
                f"run {self.run_id} was recorded without a fault catalogue; "
                "only the execution report is available"
            )
        report = self.execution_report()
        if report.failed_jobs:
            raise StoreError(
                f"run {self.run_id} contains terminally failed job(s); "
                "a fault table cannot be rebuilt from a partial campaign"
            )
        by_group = report.by_group()
        baseline = tuple(
            jr.result for jr in by_group.get(BASELINE_GROUP, ())
        )
        outcomes = [
            FaultRunOutcome(
                fault, tuple(jr.result for jr in by_group.get(fault.name, ()))
            )
            for fault in _restored_faults(self.catalogue)
        ]
        self._result = CampaignResult(baseline, outcomes, execution=report)
        return self._result

    def verdict_table(self) -> str:
        """The execution report's per-job verdict table."""
        return self.execution_report().verdict_table()

    def render(self) -> str:
        """Exactly what ``repro-campaign`` printed on stdout for this run.

        Campaign runs render the fault table plus the campaign summary
        line; bare report runs fall back to the per-job verdict table plus
        the execution summary.
        """
        if self.catalogue is not None:
            result = self.campaign_result()
            return f"{result.table()}\n{result.summary()}"
        report = self.execution_report()
        return f"{report.verdict_table()}\n{report.summary()}"

    def __repr__(self) -> str:
        return (
            f"StoredRun(id={self.run_id}, dut={self.dut!r}, "
            f"backend={self.backend!r}, version={self.repro_version!r})"
        )


class ResultStore:
    """SQL-backed persistent store for execution reports and campaigns.

    >>> store = ResultStore("results.db")
    >>> run_id = store.record_campaign(result, spec)
    >>> store.get_run(run_id).render() == result.table() + "\\n" + result.summary()
    True

    All methods are safe to call from multiple threads (and the file-backed
    form from multiple processes): each call runs one transaction on its
    own connection with a busy timeout.
    """

    def __init__(self, path: str, *, timeout: float = 30.0):
        self.path = str(path)
        self.timeout = float(timeout)
        self._memory = self.path == ":memory:"
        self._lock = threading.Lock()
        self._shared: sqlite3.Connection | None = None
        try:
            if self._memory:
                self._shared = self._open()
            with self._connect() as conn:
                self._initialise(conn)
        except sqlite3.Error as exc:
            raise StoreError(
                f"cannot open result store {self.path!r}: {exc}"
            ) from exc

    # -- connection plumbing ------------------------------------------------

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path, timeout=self.timeout,
            check_same_thread=not self._memory,
        )
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA foreign_keys = ON")
        if not self._memory:
            # WAL lets concurrent writers queue behind the busy timeout
            # instead of failing immediately, and readers never block
            # writers.  The mode is persistent, but setting it is cheap
            # and idempotent, so every connection just asserts it.
            conn.execute("PRAGMA journal_mode = WAL")
        return conn

    class _Session:
        """Context manager: shared-locked connection or a fresh one."""

        def __init__(self, store: "ResultStore"):
            self._store = store
            self._conn: sqlite3.Connection | None = None

        def __enter__(self) -> sqlite3.Connection:
            if self._store._memory:
                self._store._lock.acquire()
                self._conn = self._store._shared
            else:
                self._conn = self._store._open()
            return self._conn

        def __exit__(self, exc_type, exc, tb) -> None:
            conn = self._conn
            try:
                if exc_type is None:
                    if _chaos.ACTIVE is not None:
                        # Chaos commit-point hook: may raise a one-shot
                        # "database is locked" for the bounded write
                        # retry to absorb.
                        _chaos.on_store_commit()
                    conn.commit()
                else:
                    conn.rollback()
            except BaseException:
                try:
                    conn.rollback()
                except sqlite3.Error:
                    pass
                raise
            finally:
                if self._store._memory:
                    self._store._lock.release()
                else:
                    conn.close()

    def _connect(self) -> "_Session":
        return self._Session(self)

    #: Attempts one write transaction gets against a locked database
    #: before the store gives up.
    WRITE_RETRIES = 5

    def _with_write_retry(self, operation):
        """Run a write transaction, retrying bounded on database-locked.

        SQLite raises ``OperationalError: database is locked`` when another
        writer holds the file past the busy timeout.  Transactions roll
        back cleanly (see ``_Session``) and all inserts are idempotent
        (``INSERT OR IGNORE`` interning, fresh rowids), so re-running the
        whole transaction is safe.  Retries back off exponentially;
        anything but a locked/busy error propagates immediately.
        """
        delay = 0.05
        for attempt in range(1, self.WRITE_RETRIES + 1):
            try:
                return operation()
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                if attempt >= self.WRITE_RETRIES:
                    raise StoreError(
                        f"store {self.path!r} stayed locked after "
                        f"{self.WRITE_RETRIES} attempts: {exc}"
                    ) from exc
                time.sleep(delay)
                delay = min(1.0, delay * 2.0)

    def _initialise(self, conn: sqlite3.Connection) -> None:
        conn.executescript(DDL)
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'store_schema'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("store_schema", str(STORE_SCHEMA)),
            )
        elif int(row["value"]) != STORE_SCHEMA:
            raise StoreError(
                f"store {self.path!r} uses schema {row['value']}, this "
                f"release reads schema {STORE_SCHEMA}"
            )

    def close(self) -> None:
        """Close the shared connection of an in-memory store (no-op else)."""
        if self._shared is not None:
            with self._lock:
                self._shared.close()
                self._shared = None

    # -- recording ----------------------------------------------------------

    def _intern_script(self, conn: sqlite3.Connection, script_doc: dict) -> int:
        content = _canonical(script_doc)
        fingerprint = _fingerprint(content)
        conn.execute(
            "INSERT OR IGNORE INTO scripts (name, dut, fingerprint, content) "
            "VALUES (?, ?, ?, ?)",
            (script_doc["name"], script_doc["dut"], fingerprint, content),
        )
        row = conn.execute(
            "SELECT id FROM scripts WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return int(row["id"])

    def _intern_catalogue(self, conn: sqlite3.Connection, dut: str,
                          content: list[dict]) -> int:
        text = _canonical({"dut": dut, "faults": content})
        fingerprint = _fingerprint(text)
        conn.execute(
            "INSERT OR IGNORE INTO catalogues (dut, fingerprint, content) "
            "VALUES (?, ?, ?)",
            (dut, fingerprint, json.dumps(content)),
        )
        row = conn.execute(
            "SELECT id FROM catalogues WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return int(row["id"])

    def _intern_campaign(self, conn: sqlite3.Connection, spec,
                         catalogue_id: int | None) -> int:
        composition = getattr(spec, "composition", None)
        fields = {
            "dut": spec.dut,
            "composition": composition,
            "stand": spec.stand,
            "policy": spec.policy,
            "backend": spec.backend,
            "jobs": int(spec.jobs),
            "concurrency": int(spec.concurrency),
            "retries": int(spec.retries),
            "use_plans": bool(spec.use_plans),
            "reuse_stands": bool(spec.reuse_stands),
            "catalogue": catalogue_id,
        }
        fingerprint = _fingerprint(_canonical(fields))
        conn.execute(
            "INSERT OR IGNORE INTO campaigns (dut, composition, stand, "
            "policy, backend, jobs, concurrency, retries, use_plans, "
            "reuse_stands, catalogue_id, fingerprint) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (spec.dut, composition, spec.stand, spec.policy, spec.backend,
             int(spec.jobs), int(spec.concurrency), int(spec.retries),
             int(spec.use_plans), int(spec.reuse_stands), catalogue_id,
             fingerprint),
        )
        row = conn.execute(
            "SELECT id FROM campaigns WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return int(row["id"])

    def record_report(
        self,
        report: ExecutionReport,
        spec=None,
        *,
        faults: Sequence[FaultModel] | None = None,
        plan_cache: Mapping | None = None,
        git_sha: str | None = None,
        created_at: float | None = None,
    ) -> int:
        """Record one execution report; returns the new run id.

        *spec* is the producing :class:`~repro.targets.CampaignSpec` (or
        any object with its fields), *faults* the selected fault models in
        catalogue order - both optional, but required for
        :meth:`StoredRun.campaign_result` / fault-table re-rendering.
        *git_sha* defaults to :func:`current_git_sha`, *created_at* to now;
        *plan_cache* may carry a plan-cache statistics snapshot.
        """
        from .. import __version__

        document = report.to_dict()
        if git_sha is None:
            git_sha = current_git_sha()
        if created_at is None:
            created_at = time.time()
        return self._with_write_retry(
            lambda: self._record_report_txn(
                document, report, spec, faults, plan_cache,
                git_sha, created_at, __version__,
            )
        )

    def _record_report_txn(
        self, document, report, spec, faults, plan_cache,
        git_sha, created_at, version,
    ) -> int:
        """One recording transaction (retried by :meth:`record_report`)."""
        with self._connect() as conn:
            campaign_id = None
            if spec is not None or faults is not None:
                catalogue_id = None
                if faults is not None:
                    dut = (spec.dut if spec is not None else None) or next(
                        (s["dut"] for s in document["scripts"]), "")
                    catalogue_id = self._intern_catalogue(
                        conn, dut or "", _catalogue_content(faults))
                if spec is not None:
                    campaign_id = self._intern_campaign(
                        conn, spec, catalogue_id)
                else:
                    # Faults without a spec still need an anchor row so the
                    # catalogue is reachable from the run.
                    campaign_id = self._intern_campaign(
                        conn, _AnonymousSpec(), catalogue_id)
            cursor = conn.execute(
                "INSERT INTO runs (created_at, git_sha, repro_version, "
                "backend, workers, wall_time, plan_cache, campaign_id) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (created_at, git_sha, version, document["backend"],
                 document["workers"], document["wall_time"],
                 json.dumps(dict(plan_cache)) if plan_cache else None,
                 campaign_id),
            )
            run_id = int(cursor.lastrowid)
            script_ids = [
                self._intern_script(conn, script_doc)
                for script_doc in document["scripts"]
            ]
            for ordinal, job in enumerate(document["jobs"]):
                cursor = conn.execute(
                    "INSERT INTO jobs (run_id, ordinal, job_index, script_id, "
                    "group_name, stand_label, policy, stop_on_error, "
                    "use_plans, reuse_stands, attempts, error, wall_time) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (run_id, ordinal, job["index"],
                     script_ids[job["script"]], job["group"],
                     job["stand_label"], job["policy"],
                     int(job["stop_on_error"]), int(job["use_plans"]),
                     int(job["reuse_stands"]), job["attempts"], job["error"],
                     job["wall_time"]),
                )
                job_id = int(cursor.lastrowid)
                result = job["result"]
                if result is None:
                    continue
                verdict = report.results[ordinal].verdict
                cursor = conn.execute(
                    "INSERT INTO case_results (job_id, stand, verdict, "
                    "passed, duration, wall_time, setup) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (job_id, result["stand"], verdict.value,
                     int(verdict.ok), result["duration"],
                     result["wall_time"], json.dumps(result["setup"])),
                )
                case_id = int(cursor.lastrowid)
                steps = report.results[ordinal].result.steps
                for step_ordinal, step in enumerate(result["steps"]):
                    conn.execute(
                        "INSERT INTO step_results (case_id, ordinal, number, "
                        "duration, start_time, remark, verdict, actions) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (case_id, step_ordinal, step["number"],
                         step["duration"], step["start_time"], step["remark"],
                         steps[step_ordinal].verdict.value,
                         json.dumps(step["actions"])),
                    )
        return run_id

    def record_campaign(self, result: CampaignResult, spec=None, **kwargs) -> int:
        """Record a finished campaign (report + fault catalogue metadata).

        Convenience wrapper around :meth:`record_report` that extracts the
        execution report and the injected fault models from the
        :class:`~repro.analysis.campaign.CampaignResult`; the stored run
        then re-renders the full fault table byte-identically.
        """
        if result.execution is None:
            raise StoreError(
                "campaign result carries no execution report; "
                "only executor-produced results can be recorded"
            )
        faults = [outcome.fault for outcome in result.outcomes]
        return self.record_report(result.execution, spec,
                                  faults=faults, **kwargs)

    # -- checkpoints (campaign resume) --------------------------------------

    def save_checkpoint(self, campaign_key: str, job_result: JobResult) -> bool:
        """Persist one finished job of an in-flight resumable campaign.

        The payload is a full single-result report document, so
        :meth:`load_checkpoints` restores the :class:`JobResult` (and every
        verdict detail in it) byte-identically.  Failed jobs are *not*
        checkpointed - a resumed campaign gets to retry them - and the call
        reports whether it stored anything.  Committed per job: a SIGKILL
        between jobs loses at most the job in flight.
        """
        if job_result.result is None:
            return False
        payload = json.dumps(report_to_dict(ExecutionReport([job_result])))
        job_key = job_result.job.job_id

        def _write() -> None:
            with self._connect() as conn:
                conn.execute(
                    "INSERT OR REPLACE INTO checkpoints "
                    "(campaign_key, job_key, payload, created_at) "
                    "VALUES (?, ?, ?, ?)",
                    (campaign_key, job_key, payload, time.time()),
                )

        self._with_write_retry(_write)
        return True

    def load_checkpoints(self, campaign_key: str) -> dict[str, JobResult]:
        """All checkpointed job results of a campaign, keyed by ``job_id``.

        The restored results render byte-identically but carry placeholder
        factories (:func:`~repro.teststand.serialize.restored_factory`);
        :func:`~repro.teststand.executor.run_jobs` slots them into the
        report without executing anything.
        """
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT job_key, payload FROM checkpoints "
                "WHERE campaign_key = ? ORDER BY id",
                (campaign_key,),
            ).fetchall()
        restored: dict[str, JobResult] = {}
        for row in rows:
            report = report_from_dict(json.loads(row["payload"]))
            restored[row["job_key"]] = report.results[0]
        return restored

    def clear_checkpoints(self, campaign_key: str) -> int:
        """Drop a campaign's checkpoints (after its final report recorded)."""

        def _write() -> int:
            with self._connect() as conn:
                cursor = conn.execute(
                    "DELETE FROM checkpoints WHERE campaign_key = ?",
                    (campaign_key,),
                )
                return cursor.rowcount

        return self._with_write_retry(_write)

    # -- reading ------------------------------------------------------------

    def _report_document(self, run_id: int) -> dict:
        """Rebuild the exact :func:`report_to_dict` document of a run."""
        with self._connect() as conn:
            run = conn.execute(
                "SELECT * FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
            if run is None:
                raise StoreError(f"no stored run with id {run_id}")
            job_rows = conn.execute(
                "SELECT jobs.*, scripts.content AS script_content "
                "FROM jobs JOIN scripts ON scripts.id = jobs.script_id "
                "WHERE jobs.run_id = ? ORDER BY jobs.ordinal", (run_id,)
            ).fetchall()
            cases = {
                row["job_id"]: row for row in conn.execute(
                    "SELECT case_results.* FROM case_results "
                    "JOIN jobs ON jobs.id = case_results.job_id "
                    "WHERE jobs.run_id = ?", (run_id,)
                ).fetchall()
            }
            steps_by_case: dict[int, list] = {}
            for row in conn.execute(
                    "SELECT step_results.* FROM step_results "
                    "JOIN case_results ON case_results.id = step_results.case_id "
                    "JOIN jobs ON jobs.id = case_results.job_id "
                    "WHERE jobs.run_id = ? "
                    "ORDER BY step_results.case_id, step_results.ordinal",
                    (run_id,)):
                steps_by_case.setdefault(row["case_id"], []).append(row)
        scripts: list[dict] = []
        index_by_id: dict[int, int] = {}
        jobs: list[dict] = []
        for row in job_rows:
            script_index = index_by_id.get(row["script_id"])
            if script_index is None:
                script_index = index_by_id[row["script_id"]] = len(scripts)
                scripts.append(json.loads(row["script_content"]))
            case = cases.get(row["id"])
            result_doc = None
            if case is not None:
                result_doc = {
                    "stand": case["stand"],
                    "duration": case["duration"],
                    "wall_time": case["wall_time"],
                    "setup": json.loads(case["setup"]),
                    "steps": [
                        {
                            "number": step["number"],
                            "duration": step["duration"],
                            "start_time": step["start_time"],
                            "remark": step["remark"],
                            "actions": json.loads(step["actions"]),
                        }
                        for step in steps_by_case.get(case["id"], [])
                    ],
                }
            jobs.append({
                "index": row["job_index"],
                "script": script_index,
                "group": row["group_name"],
                "stand_label": row["stand_label"],
                "policy": row["policy"],
                "stop_on_error": bool(row["stop_on_error"]),
                "use_plans": bool(row["use_plans"]),
                "reuse_stands": bool(row["reuse_stands"]),
                "attempts": row["attempts"],
                "error": row["error"],
                "wall_time": row["wall_time"],
                "result": result_doc,
            })
        return {
            "schema": REPORT_SCHEMA,
            "kind": "execution-report",
            "backend": run["backend"],
            "workers": run["workers"],
            "wall_time": run["wall_time"],
            "scripts": scripts,
            "jobs": jobs,
        }

    def get_run(self, run_id: int) -> StoredRun:
        """Load one stored run (metadata now, report rebuilt lazily)."""
        with self._connect() as conn:
            run = conn.execute(
                "SELECT * FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
            if run is None:
                raise StoreError(f"no stored run with id {run_id}")
            campaign = None
            catalogue = None
            if run["campaign_id"] is not None:
                row = conn.execute(
                    "SELECT * FROM campaigns WHERE id = ?",
                    (run["campaign_id"],),
                ).fetchone()
                if row is not None:
                    campaign = {
                        "dut": row["dut"],
                        "composition": row["composition"],
                        "stand": row["stand"],
                        "policy": row["policy"],
                        "backend": row["backend"],
                        "jobs": row["jobs"],
                        "concurrency": row["concurrency"],
                        "retries": row["retries"],
                        "use_plans": bool(row["use_plans"]),
                        "reuse_stands": bool(row["reuse_stands"]),
                    }
                    if row["catalogue_id"] is not None:
                        cat = conn.execute(
                            "SELECT content FROM catalogues WHERE id = ?",
                            (row["catalogue_id"],),
                        ).fetchone()
                        if cat is not None:
                            catalogue = json.loads(cat["content"])
        return StoredRun(self, run, campaign, catalogue)

    def run_ids(self) -> tuple[int, ...]:
        """All stored run ids, oldest first."""
        with self._connect() as conn:
            rows = conn.execute("SELECT id FROM runs ORDER BY id").fetchall()
        return tuple(row["id"] for row in rows)

    def list_runs(self, *, dut: str | None = None,
                  limit: int | None = None) -> list[RunInfo]:
        """Run metadata rows, newest first, optionally filtered by DUT."""
        sql = (
            "SELECT runs.*, "
            "COALESCE(campaigns.dut, ("
            "  SELECT scripts.dut FROM jobs JOIN scripts "
            "  ON scripts.id = jobs.script_id "
            "  WHERE jobs.run_id = runs.id ORDER BY jobs.ordinal LIMIT 1"
            "), '') AS run_dut, "
            "COALESCE(campaigns.stand, '') AS run_stand, "
            "(SELECT COUNT(*) FROM jobs WHERE jobs.run_id = runs.id) AS n_jobs, "
            "(SELECT CASE "
            "   WHEN EXISTS (SELECT 1 FROM jobs LEFT JOIN case_results "
            "     ON case_results.job_id = jobs.id WHERE jobs.run_id = runs.id "
            "     AND COALESCE(case_results.verdict, 'error') = 'error') "
            "     THEN 'error' "
            "   WHEN EXISTS (SELECT 1 FROM jobs JOIN case_results "
            "     ON case_results.job_id = jobs.id WHERE jobs.run_id = runs.id "
            "     AND case_results.verdict = 'fail') THEN 'fail' "
            "   ELSE 'pass' END) AS worst "
            "FROM runs LEFT JOIN campaigns ON campaigns.id = runs.campaign_id "
        )
        params: list = []
        if dut is not None:
            sql += "WHERE LOWER(run_dut) = LOWER(?) "
            params.append(dut)
        sql += "ORDER BY runs.id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._connect() as conn:
            rows = conn.execute(sql, params).fetchall()
        return [
            RunInfo(
                run_id=row["id"],
                created_at=row["created_at"],
                dut=row["run_dut"],
                stand=row["run_stand"],
                backend=row["backend"],
                workers=row["workers"],
                wall_time=row["wall_time"],
                jobs=row["n_jobs"],
                verdict=row["worst"],
                git_sha=row["git_sha"] or "",
                repro_version=row["repro_version"],
            )
            for row in rows
        ]

    def query(self, *, dut: str | None = None, stand: str | None = None,
              verdict: str | None = None,
              since: float | None = None) -> list[CaseRow]:
        """Per-case verdict rows across all runs, newest run first.

        Filters combine with AND: *dut* matches the script's DUT, *stand*
        the executing stand name as shown in verdict tables, *verdict* one
        of ``pass`` / ``fail`` / ``error`` / ``skipped`` (jobs that failed
        terminally count as ``error``), *since* a unix timestamp lower
        bound on the run's ``created_at``.  All string matches are
        case-insensitive - which is why ``repro-lint``'s
        X-UNSTORABLE-RESULT rule flags case-colliding sheet names.
        """
        sql = (
            "SELECT runs.id AS run_id, runs.created_at, jobs.job_index, "
            "jobs.group_name, jobs.stand_label, scripts.name AS script, "
            "scripts.dut AS dut, "
            "COALESCE(case_results.stand, '-') AS stand, "
            "COALESCE(case_results.verdict, 'error') AS verdict, "
            "COALESCE(case_results.passed, 0) AS passed, "
            "COALESCE(case_results.duration, 0.0) AS duration, "
            "COALESCE(case_results.wall_time, 0.0) AS wall_time "
            "FROM jobs "
            "JOIN runs ON runs.id = jobs.run_id "
            "JOIN scripts ON scripts.id = jobs.script_id "
            "LEFT JOIN case_results ON case_results.job_id = jobs.id "
        )
        clauses: list[str] = []
        params: list = []
        if dut is not None:
            clauses.append("LOWER(scripts.dut) = LOWER(?)")
            params.append(dut)
        if stand is not None:
            clauses.append("LOWER(COALESCE(case_results.stand, '-')) = LOWER(?)")
            params.append(stand)
        if verdict is not None:
            clauses.append("COALESCE(case_results.verdict, 'error') = LOWER(?)")
            params.append(str(verdict))
        if since is not None:
            clauses.append("runs.created_at >= ?")
            params.append(float(since))
        if clauses:
            sql += "WHERE " + " AND ".join(clauses) + " "
        sql += "ORDER BY runs.id DESC, jobs.ordinal"
        with self._connect() as conn:
            rows = conn.execute(sql, params).fetchall()
        result = []
        for row in rows:
            label = row["group_name"] or "-"
            if row["stand_label"]:
                label = f"{label}@{row['stand_label']}"
            result.append(CaseRow(
                run_id=row["run_id"],
                created_at=row["created_at"],
                job=f"{label}/{row['script']}#{row['job_index']}",
                script=row["script"],
                dut=row["dut"],
                group=row["group_name"],
                stand=row["stand"],
                verdict=row["verdict"],
                passed=bool(row["passed"]),
                duration=row["duration"],
                wall_time=row["wall_time"],
            ))
        return result

    def diff_runs(self, a: int, b: int) -> RunDiff:
        """Per-sheet verdict deltas between stored runs *a* and *b*.

        Two recordings of the same campaign - regardless of backend,
        worker count or plan-cache state - produce an ``empty`` diff;
        anything else lists exactly which sheet's verdict moved.
        """
        verdicts: dict[int, dict[str, str]] = {}
        with self._connect() as conn:
            for run_id in (a, b):
                if conn.execute("SELECT 1 FROM runs WHERE id = ?",
                                (run_id,)).fetchone() is None:
                    raise StoreError(f"no stored run with id {run_id}")
                rows = conn.execute(
                    "SELECT jobs.job_index, jobs.group_name, jobs.stand_label, "
                    "scripts.name AS script, "
                    "COALESCE(case_results.verdict, 'error') AS verdict "
                    "FROM jobs "
                    "JOIN scripts ON scripts.id = jobs.script_id "
                    "LEFT JOIN case_results ON case_results.job_id = jobs.id "
                    "WHERE jobs.run_id = ? ORDER BY jobs.ordinal", (run_id,)
                ).fetchall()
                table = {}
                for row in rows:
                    label = row["group_name"] or "-"
                    if row["stand_label"]:
                        label = f"{label}@{row['stand_label']}"
                    key = f"{label}/{row['script']}#{row['job_index']}"
                    table[key] = row["verdict"]
                verdicts[run_id] = table
        table_a, table_b = verdicts[a], verdicts[b]
        changed = tuple(
            VerdictDelta(job=key, verdict_a=table_a[key], verdict_b=table_b[key])
            for key in table_a if key in table_b and table_a[key] != table_b[key]
        )
        only_a = tuple(key for key in table_a if key not in table_b)
        only_b = tuple(key for key in table_b if key not in table_a)
        return RunDiff(run_a=a, run_b=b, changed=changed,
                       only_a=only_a, only_b=only_b)


class _AnonymousSpec:
    """Neutral campaign fields for reports recorded with faults but no spec."""

    dut = None
    composition = None
    stand = None
    policy = "first_fit"
    backend = "auto"
    jobs = 1
    concurrency = 0
    retries = 1
    use_plans = True
    reuse_stands = True
