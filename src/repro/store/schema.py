"""SQLite schema of the persistent result store.

The store is deliberately built on the stdlib :mod:`sqlite3` module - no
new dependency - with a normalized schema (one row per run / job / case /
step, content-deduplicated scripts and fault catalogues) so verdicts stay
queryable with plain SQL.  ``docs/result-store.md`` carries the diagram
and a query cookbook; the short version:

``meta``
    key/value pairs; carries the on-disk ``store_schema`` version.
``scripts``
    one row per *distinct* compiled test script, keyed by a content
    fingerprint (the canonical JSON of
    :func:`repro.teststand.serialize.script_to_dict`).  Campaigns share
    one script across dozens of jobs and re-runs share it across runs;
    the store keeps a single copy.
``catalogues``
    one row per distinct fault-catalogue selection (name / description /
    expected_detected triples, selection order preserved), deduplicated
    the same way.
``campaigns``
    one row per distinct campaign *configuration* (DUT, stand, policy,
    backend sizing, catalogue) - many runs may point at the same one.
``runs``
    one row per recorded :class:`~repro.teststand.executor.ExecutionReport`:
    timestamp, git SHA + ``repro.__version__`` of the producing process,
    backend / workers / wall time, plan-cache statistics snapshot.
``jobs``
    one row per job of a run, in the report's deterministic insertion
    order (``ordinal``), referencing the deduplicated script.
``case_results``
    one row per executed test case (job x script): stand, overall
    verdict, simulated duration, wall time, setup action results.
``step_results``
    one row per executed script step with its action results.
``checkpoints``
    one row per completed job of an *in-flight* resumable campaign
    (``CampaignSpec(store=..., resume=True)``), keyed by the campaign's
    content fingerprint and the job id.  Each payload is a full
    single-result report document, so a killed campaign restores its
    finished jobs byte-identically and re-runs only the rest; the rows
    are deleted once the campaign records its final report.

Action results are stored as JSON documents (the exact dicts of
:mod:`repro.teststand.serialize`) inside the case/step rows: the
row-level columns carry everything queries filter on, while the JSON
preserves the full observation detail needed to rebuild a byte-identical
report.
"""

from __future__ import annotations

__all__ = ["STORE_SCHEMA", "DDL"]

#: Version of the on-disk store schema, recorded in ``meta``.  Bump on any
#: table change; :class:`repro.store.ResultStore` refuses to open a store
#: written by a different schema version instead of misreading it.
STORE_SCHEMA = 3

#: The full DDL, executed with ``executescript`` on first open.  Every
#: statement is idempotent (``IF NOT EXISTS``) so concurrent first opens
#: of the same path do not race each other.
DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS scripts (
    id          INTEGER PRIMARY KEY,
    name        TEXT NOT NULL,
    dut         TEXT NOT NULL,
    fingerprint TEXT NOT NULL UNIQUE,
    content     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_scripts_dut ON scripts(dut);

CREATE TABLE IF NOT EXISTS catalogues (
    id          INTEGER PRIMARY KEY,
    dut         TEXT NOT NULL,
    fingerprint TEXT NOT NULL UNIQUE,
    content     TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS campaigns (
    id           INTEGER PRIMARY KEY,
    dut          TEXT,
    composition  TEXT,
    stand        TEXT,
    policy       TEXT NOT NULL,
    backend      TEXT NOT NULL,
    jobs         INTEGER NOT NULL,
    concurrency  INTEGER NOT NULL,
    retries      INTEGER NOT NULL,
    use_plans    INTEGER NOT NULL,
    reuse_stands INTEGER NOT NULL,
    catalogue_id INTEGER REFERENCES catalogues(id),
    fingerprint  TEXT NOT NULL UNIQUE
);

CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY,
    created_at    REAL NOT NULL,
    git_sha       TEXT,
    repro_version TEXT NOT NULL,
    backend       TEXT NOT NULL,
    workers       INTEGER NOT NULL,
    wall_time     REAL NOT NULL,
    plan_cache    TEXT,
    campaign_id   INTEGER REFERENCES campaigns(id)
);
CREATE INDEX IF NOT EXISTS idx_runs_created ON runs(created_at);

CREATE TABLE IF NOT EXISTS jobs (
    id            INTEGER PRIMARY KEY,
    run_id        INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    ordinal       INTEGER NOT NULL,
    job_index     INTEGER NOT NULL,
    script_id     INTEGER NOT NULL REFERENCES scripts(id),
    group_name    TEXT NOT NULL,
    stand_label   TEXT NOT NULL,
    policy        TEXT NOT NULL,
    stop_on_error INTEGER NOT NULL,
    use_plans     INTEGER NOT NULL,
    reuse_stands  INTEGER NOT NULL,
    attempts      INTEGER NOT NULL,
    error         TEXT NOT NULL,
    wall_time     REAL NOT NULL,
    UNIQUE (run_id, ordinal)
);
CREATE INDEX IF NOT EXISTS idx_jobs_run ON jobs(run_id);
CREATE INDEX IF NOT EXISTS idx_jobs_group ON jobs(group_name);

CREATE TABLE IF NOT EXISTS case_results (
    id        INTEGER PRIMARY KEY,
    job_id    INTEGER NOT NULL UNIQUE REFERENCES jobs(id) ON DELETE CASCADE,
    stand     TEXT NOT NULL,
    verdict   TEXT NOT NULL,
    passed    INTEGER NOT NULL,
    duration  REAL NOT NULL,
    wall_time REAL NOT NULL,
    setup     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_cases_verdict ON case_results(verdict);

CREATE TABLE IF NOT EXISTS step_results (
    id         INTEGER PRIMARY KEY,
    case_id    INTEGER NOT NULL REFERENCES case_results(id) ON DELETE CASCADE,
    ordinal    INTEGER NOT NULL,
    number     INTEGER NOT NULL,
    duration   REAL NOT NULL,
    start_time REAL NOT NULL,
    remark     TEXT NOT NULL,
    verdict    TEXT NOT NULL,
    actions    TEXT NOT NULL,
    UNIQUE (case_id, ordinal)
);

CREATE TABLE IF NOT EXISTS checkpoints (
    id           INTEGER PRIMARY KEY,
    campaign_key TEXT NOT NULL,
    job_key      TEXT NOT NULL,
    payload      TEXT NOT NULL,
    created_at   REAL NOT NULL,
    UNIQUE (campaign_key, job_key)
);
CREATE INDEX IF NOT EXISTS idx_checkpoints_campaign
    ON checkpoints(campaign_key);
"""
