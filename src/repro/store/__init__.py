"""Persistent result store: campaigns and reports as a SQLite database.

The executor's :class:`~repro.teststand.executor.ExecutionReport` is a
process-local object; this package makes it durable.  A
:class:`ResultStore` records reports (and whole campaign results, with
their fault-catalogue metadata) into a normalized stdlib-:mod:`sqlite3`
schema (:mod:`repro.store.schema`), stamped with the producing process's
git SHA and ``repro.__version__``, and reads them back as live objects
that re-render **byte-identically**:

>>> store = ResultStore("results.db")
>>> run_id = store.record_campaign(result, spec)     # or: spec.store=...
>>> store.get_run(run_id).render()                   # the exact CLI stdout
>>> store.diff_runs(run_id, other).empty             # per-sheet deltas
>>> store.query(dut="wiper_ecu", verdict="fail")     # SQL-backed history

Every front end records through the same path: ``repro-campaign --store``,
``CampaignSpec(store=...)`` and the campaign service
(:mod:`repro.service`) all call :meth:`ResultStore.record_campaign`;
``repro-report --store`` and the service's report endpoints read back.
"""

from .schema import DDL, STORE_SCHEMA
from .store import (
    CaseRow,
    ResultStore,
    RunDiff,
    RunInfo,
    StoredRun,
    StoreError,
    VerdictDelta,
    current_git_sha,
)

__all__ = [
    "STORE_SCHEMA",
    "DDL",
    "StoreError",
    "ResultStore",
    "StoredRun",
    "RunInfo",
    "CaseRow",
    "VerdictDelta",
    "RunDiff",
    "current_git_sha",
]
