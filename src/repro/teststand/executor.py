"""Job-based campaign execution: backends, retries, deterministic aggregation.

Because every compiled test script is stand-independent and every run uses a
fresh DUT, harness and stand, the cross product

    (test scripts) x (test stands) x (fault models)

decomposes into *independent jobs* — the natural unit of parallelism for
large campaigns (the compositional-testing literature makes the same
observation for FSM component runs).  This module turns that observation
into an execution engine:

:class:`Job`
    one (script, stand factory, harness factory, ECU factory) work item,
:func:`expand_jobs`
    the ordered cross-product expansion,
:class:`Executor` / :func:`make_executor`
    one interface over four interchangeable backends
    (``serial``, ``thread``, ``process``, ``async``),
:func:`run_jobs`
    drives any backend, retries transient errors, streams results to an
    optional callback and collects them into an insertion-ordered
    :class:`ExecutionReport` — so the aggregated verdict table is
    byte-identical no matter how many workers ran the campaign or in which
    order they finished.

The ``process`` backend requires every factory in the jobs to be picklable
(module-level callables); the ``thread``, ``serial`` and ``async`` backends
accept any callable.  The ``async`` backend is the odd one out in worker
economics: it runs every job on *one* worker, but each job's instrument I/O
is awaitable (:meth:`~repro.instruments.Instrument.aexecute` /
:meth:`~repro.teststand.interpreter.TestStandInterpreter.arun`), so one
event loop multiplexes up to ``concurrency`` slow stands — wall clock on
latency-simulated stands stays roughly flat with stand count while the
serial backend scales linearly (benchmark A4).
"""

from __future__ import annotations

import asyncio
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..core.errors import ReproError
from ..core.script import TestScript
from ..core.signals import SignalSet
from .interpreter import TestStandInterpreter
from .report import format_table
from .verdict import TestResult, Verdict

__all__ = [
    "EXECUTION_BACKENDS",
    "DEFAULT_ASYNC_CONCURRENCY",
    "Job",
    "JobResult",
    "ExecutionReport",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "AsyncExecutor",
    "make_executor",
    "execute_job",
    "aexecute_job",
    "expand_jobs",
    "run_jobs",
    "run_across_stands",
]

#: Names of the supported execution backends.
EXECUTION_BACKENDS = ("serial", "thread", "process", "async")

#: Async multiplex width used when neither ``concurrency`` nor a ``jobs``
#: count larger than one is requested.
DEFAULT_ASYNC_CONCURRENCY = 8


# ---------------------------------------------------------------------------
# Job model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Job:
    """One independent unit of campaign work: run one script once.

    A job owns *factories*, not instances: every execution builds a fresh
    stand, harness and DUT, so jobs never share mutable state and can run
    on any worker in any order.  ``group`` tags which campaign axis the job
    belongs to (e.g. the fault-model name, or ``"baseline"``), and
    ``index`` fixes the job's place in the deterministic aggregate.
    """

    index: int
    script: TestScript
    signals: SignalSet
    stand_factory: Callable[[], object]
    harness_factory: Callable[[object], object]
    ecu_factory: Callable[[], object]
    policy: str = "first_fit"
    stop_on_error: bool = False
    group: str = ""
    stand_label: str = ""

    @property
    def job_id(self) -> str:
        label = self.group or "-"
        if self.stand_label:
            label = f"{label}@{self.stand_label}"
        return f"{label}/{self.script.name}#{self.index}"


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job: the test result, or a terminal execution error."""

    job: Job
    result: TestResult | None
    attempts: int = 1
    error: str = ""
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def verdict(self) -> Verdict:
        return self.result.verdict if self.result is not None else Verdict.ERROR


def _interpreter_for(job: Job) -> TestStandInterpreter:
    """Build a fresh (ECU, harness, stand) interpreter for one job execution."""
    ecu = job.ecu_factory()
    harness = job.harness_factory(ecu)
    stand = job.stand_factory()
    return TestStandInterpreter(
        stand, harness, job.signals,
        policy=job.policy, stop_on_error=job.stop_on_error,
    )


def execute_job(job: Job) -> TestResult:
    """Build a fresh (ECU, harness, stand, interpreter) and run the job once.

    Instrument I/O is synchronous (each call blocks for the instrument's
    ``io_delay``); the serial / thread / process backends use this path.
    """
    return _interpreter_for(job).run(job.script)


async def aexecute_job(job: Job) -> TestResult:
    """Build a fresh (ECU, harness, stand, interpreter) and await the job once.

    The awaitable twin of :func:`execute_job`: instrument I/O goes through
    :meth:`~repro.teststand.interpreter.TestStandInterpreter.arun`, so the
    calling event loop can interleave other jobs while this job's stand is
    waiting on (simulated) instrument latency.
    """
    return await _interpreter_for(job).arun(job.script)


def _execute_with_retries(job: Job, max_attempts: int) -> JobResult:
    """Run *job*, retrying transient errors (raised exceptions) a few times.

    Verdicts — including FAIL and ERROR action results — are never retried;
    they are deterministic observations about the DUT.  Only a *raised*
    exception (an allocation race on a shared stand, a worker hiccup) counts
    as transient and is retried up to *max_attempts* total attempts.
    """
    start = time.perf_counter()
    attempts = max(1, int(max_attempts))
    last_error = ""
    for attempt in range(1, attempts + 1):
        try:
            result = execute_job(job)
        except Exception as exc:  # noqa: BLE001 - reported in the JobResult
            last_error = f"{type(exc).__name__}: {exc}"
            continue
        return JobResult(job, result, attempts=attempt,
                         wall_time=time.perf_counter() - start)
    return JobResult(job, None, attempts=attempts, error=last_error,
                     wall_time=time.perf_counter() - start)


async def _aexecute_with_retries(job: Job, max_attempts: int) -> JobResult:
    """Awaitable twin of :func:`_execute_with_retries` (same retry policy).

    ``asyncio.CancelledError`` derives from ``BaseException`` and therefore
    propagates: a cancelled job is abandoned, not retried and not recorded
    as a transient error.
    """
    start = time.perf_counter()
    attempts = max(1, int(max_attempts))
    last_error = ""
    for attempt in range(1, attempts + 1):
        try:
            result = await aexecute_job(job)
        except Exception as exc:  # noqa: BLE001 - reported in the JobResult
            last_error = f"{type(exc).__name__}: {exc}"
            continue
        return JobResult(job, result, attempts=attempt,
                         wall_time=time.perf_counter() - start)
    return JobResult(job, None, attempts=attempts, error=last_error,
                     wall_time=time.perf_counter() - start)


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

class Executor:
    """One interface over the interchangeable execution backends.

    ``map_jobs`` applies ``fn(job, *extra)`` to every job and yields
    ``(position, JobResult)`` pairs as they complete — possibly out of
    order; callers that need determinism re-order by position (which
    :func:`run_jobs` does).

    ``is_async`` tells :func:`run_jobs` which job function the backend
    expects: ``False`` (the default) gets the synchronous retry wrapper,
    ``True`` gets its awaitable twin.
    """

    name = "?"
    is_async = False

    @property
    def workers(self) -> int:
        return 1

    def map_jobs(
        self, fn: Callable[..., JobResult], jobs: Sequence[Job], *extra
    ) -> Iterator[tuple[int, JobResult]]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """Runs every job in the calling thread, in submission order."""

    name = "serial"

    def map_jobs(self, fn, jobs, *extra):
        for position, job in enumerate(jobs):
            yield position, fn(job, *extra)


class ThreadExecutor(Executor):
    """Runs jobs on a thread pool (shared memory, any callables allowed)."""

    name = "thread"

    def __init__(self, max_workers: int = 4):
        self.max_workers = max(1, int(max_workers))

    @property
    def workers(self) -> int:
        return self.max_workers

    def map_jobs(self, fn, jobs, *extra):
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {
                pool.submit(fn, job, *extra): position
                for position, job in enumerate(jobs)
            }
            for future in as_completed(futures):
                yield futures[future], future.result()


class ProcessExecutor(Executor):
    """Runs jobs on a process pool (true parallelism, picklable jobs only)."""

    name = "process"

    def __init__(self, max_workers: int = 4):
        self.max_workers = max(1, int(max_workers))

    @property
    def workers(self) -> int:
        return self.max_workers

    def map_jobs(self, fn, jobs, *extra):
        try:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = {
                    pool.submit(fn, job, *extra): position
                    for position, job in enumerate(jobs)
                }
                for future in as_completed(futures):
                    yield futures[future], future.result()
        except (pickle.PicklingError, TypeError, AttributeError, ImportError) as exc:
            raise ReproError(
                "the process backend requires picklable jobs "
                "(module-level factories); use the thread backend for "
                f"closures ({exc})"
            ) from exc


class AsyncExecutor(Executor):
    """Runs jobs concurrently on one worker's asyncio event loop.

    Where the thread and process backends buy wall clock with more workers,
    the async backend buys it with *waiting better*: every job awaits its
    instrument I/O (:func:`aexecute_job`), so while one latency-simulated
    stand's command round-trip is in flight the loop advances other jobs.
    ``concurrency`` bounds how many jobs may be in flight at once — the
    number of slow stands one worker is allowed to keep busy; it is a
    multiplex width, not a worker count (:attr:`workers` stays ``1``).

    The whole batch runs to completion inside one ``asyncio.run`` call,
    then streams out in completion order; the backend therefore cannot be
    used from code that is already inside a running event loop.
    """

    name = "async"
    is_async = True

    def __init__(self, concurrency: int = DEFAULT_ASYNC_CONCURRENCY):
        self.concurrency = max(1, int(concurrency))

    @property
    def workers(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"AsyncExecutor(concurrency={self.concurrency})"

    def map_jobs(self, fn, jobs, *extra):
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            raise ReproError(
                "the async backend manages its own event loop; run_jobs must "
                "be called from synchronous code (or await aexecute_job "
                "directly inside your own loop)"
            )
        yield from asyncio.run(self._drain(fn, tuple(jobs), extra))

    async def _drain(
        self, fn: Callable[..., "asyncio.Future[JobResult]"], jobs: Sequence[Job], extra
    ) -> list[tuple[int, JobResult]]:
        semaphore = asyncio.Semaphore(self.concurrency)
        completed: list[tuple[int, JobResult]] = []

        async def _one(position: int, job: Job) -> None:
            async with semaphore:
                completed.append((position, await fn(job, *extra)))

        await asyncio.gather(*(_one(p, j) for p, j in enumerate(jobs)))
        return completed


def make_executor(backend: str = "auto", jobs: int = 1, *,
                  concurrency: int = 0) -> Executor:
    """Build the executor for a ``--jobs N --backend NAME`` style request.

    ``auto`` picks serial for one worker and threads otherwise — the safe
    default, because threads accept arbitrary (closure) factories.

    ``concurrency`` only concerns the ``async`` backend: it is the multiplex
    width of the single async worker.  When it is left at ``0`` the async
    backend falls back to ``jobs`` (so ``--backend async --jobs 4`` behaves
    as one would guess) and, when that is one too, to
    :data:`DEFAULT_ASYNC_CONCURRENCY`.  Other backends ignore it; negative
    values are rejected for every backend.
    """
    concurrency = int(concurrency)
    if concurrency < 0:
        raise ReproError(
            f"concurrency must be non-negative, got {concurrency}"
        )
    jobs = max(1, int(jobs))
    backend = (backend or "auto").lower()
    if backend == "auto":
        backend = "serial" if jobs == 1 else "thread"
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(max_workers=jobs)
    if backend == "process":
        return ProcessExecutor(max_workers=jobs)
    if backend == "async":
        width = concurrency or (jobs if jobs > 1 else DEFAULT_ASYNC_CONCURRENCY)
        return AsyncExecutor(concurrency=width)
    raise ReproError(
        f"unknown execution backend {backend!r}; choose one of {EXECUTION_BACKENDS}"
    )


# ---------------------------------------------------------------------------
# Expansion and aggregation
# ---------------------------------------------------------------------------

def expand_jobs(
    scripts: Sequence[TestScript],
    signals: SignalSet,
    stands: Mapping[str, Callable[[], object]],
    harness_factory: Callable[[object], object],
    ecus: Mapping[str, Callable[[], object]],
    *,
    policy: str = "first_fit",
    stop_on_error: bool = False,
) -> tuple[Job, ...]:
    """Expand (ECU groups x stands x scripts) into an ordered job list.

    The iteration order — ECU group outermost, then stand, then script —
    defines the deterministic aggregate order, mirroring how a serial
    campaign would have walked the same cross product.
    """
    expanded: list[Job] = []
    for group, ecu_factory in ecus.items():
        for stand_label, stand_factory in stands.items():
            for script in scripts:
                expanded.append(Job(
                    index=len(expanded),
                    script=script,
                    signals=signals,
                    stand_factory=stand_factory,
                    harness_factory=harness_factory,
                    ecu_factory=ecu_factory,
                    policy=policy,
                    stop_on_error=stop_on_error,
                    group=group,
                    stand_label=stand_label,
                ))
    return tuple(expanded)


class ExecutionReport:
    """Insertion-ordered aggregate of a finished job batch."""

    def __init__(
        self,
        results: Sequence[JobResult],
        *,
        backend: str = "serial",
        workers: int = 1,
        wall_time: float = 0.0,
    ):
        self.results = tuple(results)
        self.backend = backend
        self.workers = workers
        self.wall_time = float(wall_time)

    def __iter__(self) -> Iterator[JobResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        """Whether every job produced a test result (verdicts may still fail)."""
        return all(job_result.ok for job_result in self.results)

    @property
    def failed_jobs(self) -> tuple[JobResult, ...]:
        """Jobs that never produced a result despite retries."""
        return tuple(jr for jr in self.results if not jr.ok)

    @property
    def job_seconds(self) -> float:
        """Sum of per-job wall times: the cost a serial run would have paid."""
        return sum(jr.wall_time for jr in self.results)

    @property
    def speedup(self) -> float:
        """Ratio of summed job time to elapsed wall time (1.0 when serial)."""
        if self.wall_time <= 0.0:
            return 1.0
        return self.job_seconds / self.wall_time

    def by_group(self) -> dict[str, tuple[JobResult, ...]]:
        """Results bucketed by job group, both levels in insertion order."""
        grouped: dict[str, list[JobResult]] = {}
        for job_result in self.results:
            grouped.setdefault(job_result.job.group, []).append(job_result)
        return {group: tuple(items) for group, items in grouped.items()}

    def test_results(self) -> tuple[TestResult, ...]:
        """All successful test results, in insertion order.

        Raises :class:`ReproError` when a job failed terminally, because a
        partial verdict table would silently under-report the campaign.
        """
        failed = self.failed_jobs
        if failed:
            details = "; ".join(
                f"{jr.job.job_id}: {jr.error}" for jr in failed[:3]
            )
            raise ReproError(
                f"{len(failed)} job(s) failed after retries ({details})"
            )
        return tuple(jr.result for jr in self.results)

    def verdict_table(self) -> str:
        """Deterministic verdict table: identical for any backend/worker count."""
        header = ("job", "script", "stand", "verdict", "steps", "pass", "fail", "error")
        rows = []
        for job_result in self.results:
            result = job_result.result
            if result is None:
                rows.append((job_result.job.job_id, job_result.job.script.name,
                             "-", "ERROR", "-", "-", "-", job_result.error))
                continue
            counts = result.counts()
            rows.append((
                job_result.job.job_id,
                result.script.name,
                result.stand,
                str(result.verdict),
                str(len(result.steps)),
                str(counts["pass"]),
                str(counts["fail"]),
                str(counts["error"]),
            ))
        return format_table(header, rows)

    def summary(self) -> str:
        verdicts = {jr.verdict for jr in self.results}
        worst = Verdict.combine(jr.verdict for jr in self.results)
        retried = sum(1 for jr in self.results if jr.attempts > 1)
        parts = [
            f"{len(self.results)} job(s) on {self.backend} backend "
            f"({self.workers} worker(s))",
            f"worst verdict {worst}",
            f"wall {self.wall_time:.3f} s (jobs {self.job_seconds:.3f} s, "
            f"speedup {self.speedup:.2f}x)",
        ]
        if retried:
            parts.append(f"{retried} job(s) needed retries")
        if len(verdicts) == 1:
            parts.append(f"all {next(iter(verdicts))}")
        return "; ".join(parts)


def run_jobs(
    jobs: Iterable[Job],
    executor: Executor | None = None,
    *,
    max_attempts: int = 2,
    on_result: Callable[[JobResult], None] | None = None,
) -> ExecutionReport:
    """Execute *jobs* on *executor* and aggregate deterministically.

    Results stream into *on_result* in completion order (for live progress)
    but are slotted into the report by submission position, so the final
    aggregate — and everything derived from it, like the verdict table —
    does not depend on scheduling.  (The async backend drains its whole
    batch before streaming, so there *on_result* fires only after the last
    job finished — still in completion order.)
    """
    job_list = tuple(jobs)
    executor = executor or SerialExecutor()
    start = time.perf_counter()
    slots: list[JobResult | None] = [None] * len(job_list)
    job_fn = _aexecute_with_retries if executor.is_async else _execute_with_retries
    for position, job_result in executor.map_jobs(
        job_fn, job_list, max_attempts
    ):
        slots[position] = job_result
        if on_result is not None:
            on_result(job_result)
    missing = [job_list[i].job_id for i, slot in enumerate(slots) if slot is None]
    if missing:
        raise ReproError(f"executor returned no result for job(s) {missing}")
    return ExecutionReport(
        [slot for slot in slots if slot is not None],
        backend=executor.name,
        workers=executor.workers,
        wall_time=time.perf_counter() - start,
    )


def run_across_stands(
    scripts: TestScript | Sequence[TestScript],
    signals: SignalSet,
    stands: Mapping[str, Callable[[], object]],
    harness_factory: Callable[[object], object],
    ecu_factory: Callable[[], object],
    *,
    policy: str = "first_fit",
    executor: Executor | None = None,
    max_attempts: int = 2,
) -> ExecutionReport:
    """Portability run: the same script(s) on every stand of *stands*.

    This is the paper's E1 experiment phrased as an executor batch: the
    portability analyses and benchmarks are thin layers over this call.
    """
    if isinstance(scripts, TestScript):
        scripts = (scripts,)
    jobs = expand_jobs(
        tuple(scripts), signals, stands, harness_factory,
        {"portability": ecu_factory}, policy=policy,
    )
    return run_jobs(jobs, executor, max_attempts=max_attempts)
