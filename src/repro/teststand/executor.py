"""Job-based campaign execution: backends, retries, deterministic aggregation.

Because every compiled test script is stand-independent and every run uses a
fresh DUT, harness and stand, the cross product

    (test scripts) x (test stands) x (fault models)

decomposes into *independent jobs* — the natural unit of parallelism for
large campaigns (the compositional-testing literature makes the same
observation for FSM component runs).  This module turns that observation
into an execution engine:

:class:`Job`
    one (script, stand factory, harness factory, ECU factory) work item,
:func:`expand_jobs`
    the ordered cross-product expansion,
:class:`Executor` / :func:`make_executor`
    one interface over four interchangeable backends
    (``serial``, ``thread``, ``process``, ``async``),
:func:`run_jobs`
    drives any backend, retries transient errors, streams results to an
    optional callback and collects them into an insertion-ordered
    :class:`ExecutionReport` — so the aggregated verdict table is
    byte-identical no matter how many workers ran the campaign or in which
    order they finished.
:class:`ResiliencePolicy`
    how the batch survives infrastructure trouble: classified retries
    (only :func:`~repro.core.errors.is_transient` errors retry) with
    deterministic seeded exponential backoff, per-job wall-clock deadlines,
    a per-stand quarantine circuit breaker, and an optional
    :class:`~repro.chaos.ChaosPolicy` injecting faults to prove all of the
    above works.  ``run_jobs(..., completed=...)`` additionally skips jobs
    whose results a previous (checkpointed) run already produced — the
    executor half of campaign resume.

The ``process`` backend requires every factory in the jobs to be picklable
(module-level callables); the ``thread``, ``serial`` and ``async`` backends
accept any callable.  The ``async`` backend is the odd one out in worker
economics: it runs every job on *one* worker, but each job's instrument I/O
is awaitable (:meth:`~repro.instruments.Instrument.aexecute` /
:meth:`~repro.teststand.interpreter.TestStandInterpreter.arun`), so one
event loop multiplexes up to ``concurrency`` slow stands — wall clock on
latency-simulated stands stays roughly flat with stand count while the
serial backend scales linearly (benchmark A4).
"""

from __future__ import annotations

import asyncio
import contextvars
import math
import pickle
import random
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, replace as _dc_replace
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from .. import chaos as chaos_mod
from ..core.errors import (
    ConfigurationError,
    JobTimeoutError,
    ReproError,
    is_transient,
)
from ..core.script import TestScript
from ..core.signals import SignalSet
from .interpreter import TestStandInterpreter
from .plan import GLOBAL_PLAN_CACHE
from .profiling import PROFILER
from .report import format_table
from .stands import TestStand
from .verdict import TestResult, Verdict

__all__ = [
    "EXECUTION_BACKENDS",
    "DEFAULT_ASYNC_CONCURRENCY",
    "Job",
    "JobResult",
    "ResiliencePolicy",
    "ExecutionReport",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "AsyncExecutor",
    "make_executor",
    "execute_job",
    "aexecute_job",
    "expand_jobs",
    "run_jobs",
    "run_across_stands",
]

#: Names of the supported execution backends.
EXECUTION_BACKENDS = ("serial", "thread", "process", "async")

#: Async multiplex width used when neither ``concurrency`` nor a ``jobs``
#: count larger than one is requested.
DEFAULT_ASYNC_CONCURRENCY = 8


# ---------------------------------------------------------------------------
# Job model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Job:
    """One independent unit of campaign work: run one script once.

    A job owns *factories*, not instances: every execution builds a fresh
    harness and DUT, so jobs never share mutable state and can run on any
    worker in any order.  ``group`` tags which campaign axis the job
    belongs to (e.g. the fault-model name, or ``"baseline"``), and
    ``index`` fixes the job's place in the deterministic aggregate.

    Three fast-path switches ride along (all on by default, none ever
    changes a verdict): ``reuse_stands`` lets the executing worker lease
    the stand from its per-worker pool (one stand per distinct
    ``stand_factory``, :meth:`~repro.teststand.stands.TestStand.reset`
    between jobs) instead of rebuilding it, ``use_plans`` lets the
    interpreter replay the cached
    :class:`~repro.teststand.plan.ExecutionPlan` for the (script x stand x
    policy) combination instead of searching resources per action, and
    ``use_vm`` (requires ``use_plans``) executes the plan's compiled
    bytecode program (:mod:`repro.teststand.vm`) instead of walking the
    actions at all.
    """

    index: int
    script: TestScript
    signals: SignalSet
    stand_factory: Callable[[], object]
    harness_factory: Callable[[object], object]
    ecu_factory: Callable[[], object]
    policy: str = "first_fit"
    stop_on_error: bool = False
    group: str = ""
    stand_label: str = ""
    use_plans: bool = True
    reuse_stands: bool = True
    use_vm: bool = True

    @property
    def job_id(self) -> str:
        label = self.group or "-"
        if self.stand_label:
            label = f"{label}@{self.stand_label}"
        return f"{label}/{self.script.name}#{self.index}"


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job: the test result, or a terminal execution error."""

    job: Job
    result: TestResult | None
    attempts: int = 1
    error: str = ""
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def verdict(self) -> Verdict:
        return self.result.verdict if self.result is not None else Verdict.ERROR


@dataclass(frozen=True)
class ResiliencePolicy:
    """How a job batch survives infrastructure trouble.

    One frozen, picklable value threaded through every backend (it rides
    to process-pool workers alongside the job chunks):

    * **Classified retries** — a raised exception is retried only when
      :func:`~repro.core.errors.is_transient` says a fresh attempt has a
      chance (permanent errors like ``ConfigurationError`` or
      ``CapabilityGapError`` fail fast on attempt one).
    * **Deterministic backoff** — attempt *n* sleeps
      ``min(backoff_max, backoff_base * backoff_factor**(n-1))`` scaled by
      ``1 ± jitter`` drawn from ``random.Random(f"{seed}:{job_id}:...")``,
      so the exact same schedule replays on every backend.
    * **Deadline** — a per-job wall-clock budget shared across the job's
      attempts; blowing it raises :class:`~repro.core.errors.JobTimeoutError`
      (permanent: a job that blew its budget once would blow it again).
    * **Quarantine** — after ``quarantine_after`` *consecutive*
      infrastructure failures on one stand, further jobs for that stand are
      reported ERROR with a structured ``StandQuarantinedError`` reason
      instead of being executed (0 disables the breaker).
    * **Chaos** — an optional :class:`~repro.chaos.ChaosPolicy` injecting
      seeded faults; ``None`` (the default) keeps every hook a single
      pointer check.
    """

    max_attempts: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    deadline: float | None = None
    quarantine_after: int = 0
    chaos: chaos_mod.ChaosPolicy | None = None

    def __post_init__(self):
        if int(self.max_attempts) < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.deadline is not None and not self.deadline > 0.0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline}"
            )
        if int(self.quarantine_after) < 0:
            raise ConfigurationError(
                f"quarantine_after must be >= 0 (0 disables), "
                f"got {self.quarantine_after}"
            )

    def without_worker_kill(self) -> "ResiliencePolicy":
        """Copy with chaos worker kills disabled (for redelivered chunks)."""
        if self.chaos is None:
            return self
        return _dc_replace(self, chaos=self.chaos.without_worker_kill())


def _coerce_policy(policy: "ResiliencePolicy | int") -> ResiliencePolicy:
    """Accept the legacy bare ``max_attempts`` int in the policy slot."""
    if isinstance(policy, ResiliencePolicy):
        return policy
    return ResiliencePolicy(max_attempts=max(1, int(policy)))


# ---------------------------------------------------------------------------
# Per-worker stand reuse
# ---------------------------------------------------------------------------

#: Per-thread stand pools: {stand_factory -> [idle stands]}.  Thread-local
#: storage gives every worker thread (and every worker process' main thread)
#: its own pools, so pooled stands are never shared between OS threads; the
#: async backend's interleaved jobs run on one thread and simply pop
#: distinct stands from the same pool.  Bounded: the least recently used
#: factories are dropped so long-lived sessions spanning many campaigns do
#: not accumulate stands forever.
_WORKER_STANDS = threading.local()

#: How many distinct stand factories one worker keeps pools for.
_STAND_POOL_FACTORIES = 16


def _lease_stand(job: Job) -> tuple[TestStand, bool]:
    """A stand for *job*: pooled (and reset) when reuse is on, else fresh."""
    if not job.reuse_stands:
        return job.stand_factory(), False
    pools: OrderedDict = getattr(_WORKER_STANDS, "pools", None)
    if pools is None:
        pools = _WORKER_STANDS.pools = OrderedDict()
    pool = pools.get(job.stand_factory)
    if pool is None:
        pool = pools[job.stand_factory] = []
        while len(pools) > _STAND_POOL_FACTORIES:
            pools.popitem(last=False)
    else:
        pools.move_to_end(job.stand_factory)
    if pool:
        stand = pool.pop()
        # Reset on lease, not on return: a run that died mid-job still
        # hands its successor a clean stand.
        stand.reset()
        return stand, True
    return job.stand_factory(), True


def _return_stand(job: Job, stand: TestStand, pooled: bool) -> None:
    if not pooled:
        return
    pools = getattr(_WORKER_STANDS, "pools", None)
    if pools is None:
        return
    pool = pools.get(job.stand_factory)
    if pool is not None:
        pool.append(stand)


def _interpreter_for(job: Job, stand: TestStand) -> TestStandInterpreter:
    """Build a fresh (ECU, harness) interpreter for one execution on *stand*."""
    ecu = job.ecu_factory()
    harness = job.harness_factory(ecu)
    return TestStandInterpreter(
        stand, harness, job.signals,
        policy=job.policy, stop_on_error=job.stop_on_error,
        plan_cache=GLOBAL_PLAN_CACHE if job.use_plans else None,
        use_vm=job.use_vm,
    )


def execute_job(job: Job) -> TestResult:
    """Build a fresh (ECU, harness) interpreter, lease a stand, run once.

    Instrument I/O is synchronous (each call blocks for the instrument's
    ``io_delay``); the serial / thread / process backends use this path.
    The stand comes from the worker's reuse pool when the job allows it
    (fresh allocator and harness per run keep the verdicts identical) and
    is returned to the pool afterwards.
    """
    stand, pooled = _lease_stand(job)
    try:
        return _interpreter_for(job, stand).run(job.script)
    finally:
        _return_stand(job, stand, pooled)


async def aexecute_job(job: Job) -> TestResult:
    """Build a fresh (ECU, harness) interpreter, lease a stand, await once.

    The awaitable twin of :func:`execute_job`: instrument I/O goes through
    :meth:`~repro.teststand.interpreter.TestStandInterpreter.arun`, so the
    calling event loop can interleave other jobs while this job's stand is
    waiting on (simulated) instrument latency.  Interleaved jobs lease
    *distinct* stands from the single async worker's pool.
    """
    stand, pooled = _lease_stand(job)
    try:
        return await _interpreter_for(job, stand).arun(job.script)
    finally:
        _return_stand(job, stand, pooled)


# ---------------------------------------------------------------------------
# Resilience machinery: quarantine, deadlines, backoff, classified retries
# ---------------------------------------------------------------------------

#: Per-process stand quarantine book: {stand key -> consecutive infra
#: failures}.  Cleared at the start of every ``run_jobs`` batch; process
#: workers keep their own book (a worker that sees a stand fail repeatedly
#: stops feeding it jobs, which is exactly the circuit-breaker intent).
_QUARANTINE_LOCK = threading.Lock()
_QUARANTINE: dict[str, int] = {}


def _stand_key(job: Job) -> str:
    """Identity of the (virtual) stand a job runs on, for the quarantine book."""
    if job.stand_label:
        return job.stand_label
    factory = job.stand_factory
    return getattr(factory, "__qualname__", "") or repr(factory)


def _quarantine_reason(job: Job, policy: ResiliencePolicy) -> str:
    """Non-empty structured error when the job's stand is quarantined."""
    if policy.quarantine_after <= 0:
        return ""
    key = _stand_key(job)
    with _QUARANTINE_LOCK:
        failures = _QUARANTINE.get(key, 0)
    if failures >= policy.quarantine_after:
        return (
            f"StandQuarantinedError: stand {key!r} quarantined after "
            f"{failures} consecutive infrastructure failures"
        )
    return ""


def _note_stand_outcome(job: Job, policy: ResiliencePolicy, *, failed: bool) -> None:
    """Count a terminal infra failure against the stand; success resets it."""
    if policy.quarantine_after <= 0:
        return
    key = _stand_key(job)
    with _QUARANTINE_LOCK:
        _QUARANTINE[key] = _QUARANTINE.get(key, 0) + 1 if failed else 0


def _clear_quarantine() -> None:
    with _QUARANTINE_LOCK:
        _QUARANTINE.clear()


def _backoff_seconds(policy: ResiliencePolicy, job_id: str, attempt: int) -> float:
    """Deterministic jittered exponential backoff before attempt+1."""
    delay = min(
        policy.backoff_max,
        policy.backoff_base * policy.backoff_factor ** (attempt - 1),
    )
    if policy.jitter > 0.0:
        rng = random.Random(f"{policy.seed}:{job_id}:backoff:{attempt}")
        delay *= 1.0 + policy.jitter * (2.0 * rng.random() - 1.0)
    return max(0.0, delay)


def _deadline_error(deadline: float) -> JobTimeoutError:
    return JobTimeoutError(
        f"job exceeded its {deadline:g} s wall-clock deadline",
        deadline=deadline,
    )


def _run_with_deadline(job: Job, remaining: float, deadline: float) -> TestResult:
    """Run :func:`execute_job` with a wall-clock budget.

    The job runs on a daemon helper thread (with the caller's context, so
    an active chaos schedule follows it); when the budget lapses the thread
    is *abandoned* — Python cannot safely kill it — and
    :class:`JobTimeoutError` is raised.  The helper has its own empty stand
    pool, so an abandoned run can never corrupt a stand a future job would
    lease.
    """
    outcome: list[tuple[str, object]] = []
    ctx = contextvars.copy_context()

    def _target() -> None:
        try:
            outcome.append(("ok", execute_job(job)))
        except BaseException as exc:  # noqa: BLE001 - re-raised in the caller
            outcome.append(("err", exc))

    worker = threading.Thread(
        target=ctx.run, args=(_target,),
        name=f"deadline-{job.index}", daemon=True,
    )
    worker.start()
    worker.join(remaining)
    if not outcome:
        raise _deadline_error(deadline)
    kind, value = outcome[0]
    if kind == "err":
        raise value  # type: ignore[misc]
    return value  # type: ignore[return-value]


def _execute_with_retries(job: Job, policy: "ResiliencePolicy | int" = 2) -> JobResult:
    """Run *job* under *policy*: classified retries, backoff, deadline, chaos.

    Verdicts — including FAIL and ERROR action results — are never retried;
    they are deterministic observations about the DUT.  Only a *raised*
    exception counts, and only when :func:`is_transient` classifies it as
    worth another attempt; permanent errors (bad configuration, capability
    gaps, blown deadlines) fail fast and report their first error.
    """
    policy = _coerce_policy(policy)
    start = time.perf_counter()
    reason = _quarantine_reason(job, policy)
    if reason:
        return JobResult(job, None, attempts=0, error=reason,
                         wall_time=time.perf_counter() - start)
    attempts = max(1, int(policy.max_attempts))
    for attempt in range(1, attempts + 1):
        token = None
        if policy.chaos is not None:
            token = chaos_mod.begin_job(policy.chaos, job.job_id, attempt)
        try:
            if policy.deadline is not None:
                remaining = policy.deadline - (time.perf_counter() - start)
                if remaining <= 0.0:
                    raise _deadline_error(policy.deadline)
                result = _run_with_deadline(job, remaining, policy.deadline)
            else:
                result = execute_job(job)
        except Exception as exc:  # noqa: BLE001 - reported in the JobResult
            if is_transient(exc) and attempt < attempts:
                time.sleep(_backoff_seconds(policy, job.job_id, attempt))
                continue
            _note_stand_outcome(job, policy, failed=True)
            return JobResult(job, None, attempts=attempt,
                             error=f"{type(exc).__name__}: {exc}",
                             wall_time=time.perf_counter() - start)
        finally:
            if token is not None:
                chaos_mod.end_job(token)
        _note_stand_outcome(job, policy, failed=False)
        return JobResult(job, result, attempts=attempt,
                         wall_time=time.perf_counter() - start)
    raise AssertionError("unreachable")  # pragma: no cover


async def _aexecute_with_retries(
    job: Job, policy: "ResiliencePolicy | int" = 2
) -> JobResult:
    """Awaitable twin of :func:`_execute_with_retries` (same retry policy).

    ``asyncio.CancelledError`` derives from ``BaseException`` and therefore
    propagates: a cancelled job is abandoned, not retried and not recorded
    as a transient error.  Deadlines use ``asyncio.wait_for``, which (unlike
    the sync path's abandoned helper thread) actually cancels the job.
    """
    policy = _coerce_policy(policy)
    start = time.perf_counter()
    reason = _quarantine_reason(job, policy)
    if reason:
        return JobResult(job, None, attempts=0, error=reason,
                         wall_time=time.perf_counter() - start)
    attempts = max(1, int(policy.max_attempts))
    for attempt in range(1, attempts + 1):
        token = None
        if policy.chaos is not None:
            token = chaos_mod.begin_job(policy.chaos, job.job_id, attempt)
        try:
            if policy.deadline is not None:
                remaining = policy.deadline - (time.perf_counter() - start)
                if remaining <= 0.0:
                    raise _deadline_error(policy.deadline)
                try:
                    result = await asyncio.wait_for(
                        aexecute_job(job), timeout=remaining
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    # asyncio.TimeoutError only merged into the builtin
                    # on Python 3.11; catch both for 3.10.
                    raise _deadline_error(policy.deadline) from None
            else:
                result = await aexecute_job(job)
        except Exception as exc:  # noqa: BLE001 - reported in the JobResult
            if is_transient(exc) and attempt < attempts:
                await asyncio.sleep(_backoff_seconds(policy, job.job_id, attempt))
                continue
            _note_stand_outcome(job, policy, failed=True)
            return JobResult(job, None, attempts=attempt,
                             error=f"{type(exc).__name__}: {exc}",
                             wall_time=time.perf_counter() - start)
        finally:
            if token is not None:
                chaos_mod.end_job(token)
        _note_stand_outcome(job, policy, failed=False)
        return JobResult(job, result, attempts=attempt,
                         wall_time=time.perf_counter() - start)
    raise AssertionError("unreachable")  # pragma: no cover


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

class Executor:
    """One interface over the interchangeable execution backends.

    ``map_jobs`` applies ``fn(job, *extra)`` to every job and yields
    ``(position, JobResult)`` pairs as they complete — possibly out of
    order; callers that need determinism re-order by position (which
    :func:`run_jobs` does).

    ``is_async`` tells :func:`run_jobs` which job function the backend
    expects: ``False`` (the default) gets the synchronous retry wrapper,
    ``True`` gets its awaitable twin.
    """

    name = "?"
    is_async = False

    @property
    def workers(self) -> int:
        return 1

    def map_jobs(
        self, fn: Callable[..., JobResult], jobs: Sequence[Job], *extra
    ) -> Iterator[tuple[int, JobResult]]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """Runs every job in the calling thread, in submission order."""

    name = "serial"

    def map_jobs(self, fn, jobs, *extra):
        for position, job in enumerate(jobs):
            yield position, fn(job, *extra)


class ThreadExecutor(Executor):
    """Runs jobs on a thread pool (shared memory, any callables allowed)."""

    name = "thread"

    def __init__(self, max_workers: int = 4):
        self.max_workers = max(1, int(max_workers))

    @property
    def workers(self) -> int:
        return self.max_workers

    def map_jobs(self, fn, jobs, *extra):
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {
                pool.submit(fn, job, *extra): position
                for position, job in enumerate(jobs)
            }
            for future in as_completed(futures):
                yield futures[future], future.result()


def _run_job_chunk(
    fn: Callable[..., JobResult],
    chunk: Sequence[tuple[int, Job]],
    extra: tuple,
    profile: bool = False,
    redelivered: bool = False,
) -> tuple[list[tuple[int, JobResult]], dict | None, dict | None]:
    """Worker-side chunk runner: execute every job of *chunk* in order.

    With ``profile`` the worker's process-global profiler and plan-cache
    statistics are measured across the chunk and the *deltas* ship back
    with the results - workers are reused across chunks, so absolute
    counters would double-count - for the parent to merge.  Without it
    both extra slots are ``None`` and nothing is measured.

    ``redelivered`` marks a chunk resubmitted after the pool died mid-batch;
    any chaos policy riding in *extra* has its worker kills stripped, so a
    deterministic kill schedule cannot starve the batch by killing the
    respawned worker at the same call forever.
    """
    if redelivered:
        extra = tuple(
            arg.without_worker_kill() if isinstance(arg, ResiliencePolicy) else arg
            for arg in extra
        )
    if not profile:
        return [(position, fn(job, *extra)) for position, job in chunk], None, None
    PROFILER.enable()
    PROFILER.reset()
    stats_before = GLOBAL_PLAN_CACHE.stats.snapshot()
    results = [(position, fn(job, *extra)) for position, job in chunk]
    stats_after = GLOBAL_PLAN_CACHE.stats.snapshot()
    stats_delta = {
        name: stats_after[name] - stats_before.get(name, 0)
        for name in stats_after
        if name != "hit_rate"  # derived, not additive
    }
    return results, PROFILER.snapshot(), stats_delta


class ProcessExecutor(Executor):
    """Runs jobs on a process pool (true parallelism, picklable jobs only).

    Jobs are dispatched in *chunks* rather than one future per job: a whole
    chunk is pickled as one payload, and because campaign expansion shares
    the script / signal-set objects across its jobs, pickle's per-dump memo
    serialises each distinct script and signal set **once per chunk**
    instead of once per job - the same dedup applies to the returned chunk
    of results (whose ``TestResult``\\ s reference the scripts again).  On
    campaign workloads this cuts IPC volume by roughly the chunk size.
    Chunking also lets each worker's plan cache and stand pool serve every
    job of the chunk after warming up on its first.

    ``chunk_size=None`` (the default) picks ``ceil(n / (workers * 4))``
    capped at 32 - large enough to amortise the IPC, small enough to keep
    all workers busy and completion streaming reasonably live.
    """

    name = "process"

    def __init__(self, max_workers: int = 4, *, chunk_size: int | None = None):
        self.max_workers = max(1, int(max_workers))
        if chunk_size is not None and int(chunk_size) < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1 (or None for automatic), got {chunk_size}"
            )
        self.chunk_size = int(chunk_size) if chunk_size is not None else None

    @property
    def workers(self) -> int:
        return self.max_workers

    def _chunked(self, jobs: Sequence[Job]) -> list[list[tuple[int, Job]]]:
        size = self.chunk_size
        if size is None:
            size = max(1, min(32, math.ceil(len(jobs) / (self.max_workers * 4))))
        indexed = list(enumerate(jobs))
        return [indexed[start:start + size] for start in range(0, len(indexed), size)]

    #: Pool deaths tolerated per batch before giving up: a worker killed
    #: mid-chunk (chaos, OOM, segfault) gets its unfinished chunks
    #: redelivered to a fresh pool this many times.
    MAX_RESPAWNS = 3

    def map_jobs(self, fn, jobs, *extra):
        profile = PROFILER.enabled
        remaining = list(enumerate(self._chunked(tuple(jobs))))
        redelivery = False
        respawns = self.MAX_RESPAWNS
        while remaining:
            finished: set[int] = set()
            try:
                with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                    futures = {
                        pool.submit(_run_job_chunk, fn, chunk, extra,
                                    profile, redelivery): chunk_id
                        for chunk_id, chunk in remaining
                    }
                    for future in as_completed(futures):
                        results, phases, stats_delta = future.result()
                        # Fold the worker-side phase times and plan-cache
                        # counters in so --profile sees through the pool.
                        if phases:
                            PROFILER.merge(phases)
                        if stats_delta:
                            GLOBAL_PLAN_CACHE.merge_stats(stats_delta)
                        finished.add(futures[future])
                        yield from results
                remaining = []
            except BrokenExecutor as exc:
                # A worker process died mid-batch.  Respawn the pool and
                # redeliver only the chunks that never completed; results
                # already yielded stay yielded, so the aggregate is intact.
                respawns -= 1
                if respawns < 0:
                    raise ReproError(
                        "the process pool kept dying; gave up after "
                        f"{self.MAX_RESPAWNS} respawns ({exc})"
                    ) from exc
                remaining = [
                    (chunk_id, chunk) for chunk_id, chunk in remaining
                    if chunk_id not in finished
                ]
                redelivery = True
            except (pickle.PicklingError, TypeError, AttributeError,
                    ImportError) as exc:
                raise ReproError(
                    "the process backend requires picklable jobs "
                    "(module-level factories); use the thread backend for "
                    f"closures ({exc})"
                ) from exc


class AsyncExecutor(Executor):
    """Runs jobs concurrently on one worker's asyncio event loop.

    Where the thread and process backends buy wall clock with more workers,
    the async backend buys it with *waiting better*: every job awaits its
    instrument I/O (:func:`aexecute_job`), so while one latency-simulated
    stand's command round-trip is in flight the loop advances other jobs.
    ``concurrency`` bounds how many jobs may be in flight at once — the
    number of slow stands one worker is allowed to keep busy; it is a
    multiplex width, not a worker count (:attr:`workers` stays ``1``).

    The whole batch runs to completion inside one ``asyncio.run`` call,
    then streams out in completion order; the backend therefore cannot be
    used from code that is already inside a running event loop.
    """

    name = "async"
    is_async = True

    def __init__(self, concurrency: int = DEFAULT_ASYNC_CONCURRENCY):
        self.concurrency = max(1, int(concurrency))

    @property
    def workers(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"AsyncExecutor(concurrency={self.concurrency})"

    def map_jobs(self, fn, jobs, *extra):
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            raise ReproError(
                "the async backend manages its own event loop; run_jobs must "
                "be called from synchronous code (or await aexecute_job "
                "directly inside your own loop)"
            )
        yield from asyncio.run(self._drain(fn, tuple(jobs), extra))

    async def _drain(
        self, fn: Callable[..., "asyncio.Future[JobResult]"], jobs: Sequence[Job], extra
    ) -> list[tuple[int, JobResult]]:
        semaphore = asyncio.Semaphore(self.concurrency)
        completed: list[tuple[int, JobResult]] = []

        async def _one(position: int, job: Job) -> None:
            async with semaphore:
                completed.append((position, await fn(job, *extra)))

        await asyncio.gather(*(_one(p, j) for p, j in enumerate(jobs)))
        return completed


def make_executor(backend: str = "auto", jobs: int = 1, *,
                  concurrency: int = 0) -> Executor:
    """Build the executor for a ``--jobs N --backend NAME`` style request.

    ``auto`` picks serial for one worker and threads otherwise — the safe
    default, because threads accept arbitrary (closure) factories.

    ``concurrency`` only concerns the ``async`` backend: it is the multiplex
    width of the single async worker.  When it is left at ``0`` the async
    backend falls back to ``jobs`` (so ``--backend async --jobs 4`` behaves
    as one would guess) and, when that is one too, to
    :data:`DEFAULT_ASYNC_CONCURRENCY`.  Other backends ignore it.

    Invalid knobs raise :class:`~repro.core.errors.ConfigurationError` (a
    ``ValueError``): ``jobs`` below one and negative ``concurrency`` used to
    be clamped silently, which hid typos like ``--jobs 0``.  ``concurrency
    == 0`` stays legal — it is the documented "pick for me" value.
    """
    concurrency = int(concurrency)
    if concurrency < 0:
        raise ConfigurationError(
            f"concurrency must be non-negative (0 = automatic), got {concurrency}"
        )
    jobs = int(jobs)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    backend = (backend or "auto").lower()
    if backend == "auto":
        backend = "serial" if jobs == 1 else "thread"
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(max_workers=jobs)
    if backend == "process":
        return ProcessExecutor(max_workers=jobs)
    if backend == "async":
        width = concurrency or (jobs if jobs > 1 else DEFAULT_ASYNC_CONCURRENCY)
        return AsyncExecutor(concurrency=width)
    raise ReproError(
        f"unknown execution backend {backend!r}; choose one of {EXECUTION_BACKENDS}"
    )


# ---------------------------------------------------------------------------
# Expansion and aggregation
# ---------------------------------------------------------------------------

def expand_jobs(
    scripts: Sequence[TestScript],
    signals: SignalSet,
    stands: Mapping[str, Callable[[], object]],
    harness_factory: Callable[[object], object],
    ecus: Mapping[str, Callable[[], object]],
    *,
    policy: str = "first_fit",
    stop_on_error: bool = False,
    use_plans: bool = True,
    reuse_stands: bool = True,
    use_vm: bool = True,
) -> tuple[Job, ...]:
    """Expand (ECU groups x stands x scripts) into an ordered job list.

    The iteration order — ECU group outermost, then stand, then script —
    defines the deterministic aggregate order, mirroring how a serial
    campaign would have walked the same cross product.  ``use_plans`` /
    ``reuse_stands`` / ``use_vm`` forward to every job (see :class:`Job`);
    leaving them on is always safe, turning them off exists for A/B
    measurements.
    """
    expanded: list[Job] = []
    for group, ecu_factory in ecus.items():
        for stand_label, stand_factory in stands.items():
            for script in scripts:
                expanded.append(Job(
                    index=len(expanded),
                    script=script,
                    signals=signals,
                    stand_factory=stand_factory,
                    harness_factory=harness_factory,
                    ecu_factory=ecu_factory,
                    policy=policy,
                    stop_on_error=stop_on_error,
                    group=group,
                    stand_label=stand_label,
                    use_plans=use_plans,
                    reuse_stands=reuse_stands,
                    use_vm=use_vm,
                ))
    return tuple(expanded)


class ExecutionReport:
    """Insertion-ordered aggregate of a finished job batch."""

    def __init__(
        self,
        results: Sequence[JobResult],
        *,
        backend: str = "serial",
        workers: int = 1,
        wall_time: float = 0.0,
    ):
        self.results = tuple(results)
        self.backend = backend
        self.workers = workers
        self.wall_time = float(wall_time)

    def __iter__(self) -> Iterator[JobResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        """Whether every job produced a test result (verdicts may still fail)."""
        return all(job_result.ok for job_result in self.results)

    @property
    def failed_jobs(self) -> tuple[JobResult, ...]:
        """Jobs that never produced a result despite retries."""
        return tuple(jr for jr in self.results if not jr.ok)

    @property
    def job_seconds(self) -> float:
        """Sum of per-job wall times: the cost a serial run would have paid."""
        return sum(jr.wall_time for jr in self.results)

    @property
    def speedup(self) -> float:
        """Ratio of summed job time to elapsed wall time (1.0 when serial)."""
        if self.wall_time <= 0.0:
            return 1.0
        return self.job_seconds / self.wall_time

    def by_group(self) -> dict[str, tuple[JobResult, ...]]:
        """Results bucketed by job group, both levels in insertion order."""
        grouped: dict[str, list[JobResult]] = {}
        for job_result in self.results:
            grouped.setdefault(job_result.job.group, []).append(job_result)
        return {group: tuple(items) for group, items in grouped.items()}

    def test_results(self) -> tuple[TestResult, ...]:
        """All successful test results, in insertion order.

        Raises :class:`ReproError` when a job failed terminally, because a
        partial verdict table would silently under-report the campaign.
        """
        failed = self.failed_jobs
        if failed:
            details = "; ".join(
                f"{jr.job.job_id}: {jr.error}" for jr in failed[:3]
            )
            raise ReproError(
                f"{len(failed)} job(s) failed after retries ({details})"
            )
        return tuple(jr.result for jr in self.results)

    def verdict_table(self) -> str:
        """Deterministic verdict table: identical for any backend/worker count."""
        header = ("job", "script", "stand", "verdict", "steps", "pass", "fail", "error")
        rows = []
        for job_result in self.results:
            result = job_result.result
            if result is None:
                rows.append((job_result.job.job_id, job_result.job.script.name,
                             "-", "ERROR", "-", "-", "-", job_result.error))
                continue
            counts = result.counts()
            rows.append((
                job_result.job.job_id,
                result.script.name,
                result.stand,
                str(result.verdict),
                str(len(result.steps)),
                str(counts["pass"]),
                str(counts["fail"]),
                str(counts["error"]),
            ))
        return format_table(header, rows)

    def summary(self) -> str:
        verdicts = {jr.verdict for jr in self.results}
        worst = Verdict.combine(jr.verdict for jr in self.results)
        retried = sum(1 for jr in self.results if jr.attempts > 1)
        parts = [
            f"{len(self.results)} job(s) on {self.backend} backend "
            f"({self.workers} worker(s))",
            f"worst verdict {worst}",
            f"wall {self.wall_time:.3f} s (jobs {self.job_seconds:.3f} s, "
            f"speedup {self.speedup:.2f}x)",
        ]
        if retried:
            parts.append(f"{retried} job(s) needed retries")
        if len(verdicts) == 1:
            parts.append(f"all {next(iter(verdicts))}")
        return "; ".join(parts)

    def to_dict(self) -> dict:
        """Durable dict representation (see :mod:`repro.teststand.serialize`).

        JSON-safe, stable key order, stamped with a schema version;
        scripts are deduplicated by content.  The result store
        (:mod:`repro.store`), the campaign service API and ``repro-campaign
        --format json`` all persist exactly this document.
        """
        from .serialize import report_to_dict
        return report_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExecutionReport":
        """Rebuild a report from :meth:`to_dict` output.

        The restored report renders byte-identically (``verdict_table()``,
        ``summary()``, ``by_group()``) but is a record, not a runnable
        batch: its jobs carry placeholder factories that raise when called.
        """
        from .serialize import report_from_dict
        return report_from_dict(data)


def run_jobs(
    jobs: Iterable[Job],
    executor: Executor | None = None,
    *,
    max_attempts: int = 2,
    on_result: Callable[[JobResult], None] | None = None,
    resilience: ResiliencePolicy | None = None,
    completed: Mapping[str, JobResult] | None = None,
) -> ExecutionReport:
    """Execute *jobs* on *executor* and aggregate deterministically.

    Results stream into *on_result* in completion order (for live progress
    or checkpointing) but are slotted into the report by submission
    position, so the final aggregate — and everything derived from it, like
    the verdict table — does not depend on scheduling.  (The async backend
    drains its whole batch before streaming, so there *on_result* fires
    only after the last job finished — still in completion order.)

    *resilience* carries the full :class:`ResiliencePolicy` (retries,
    backoff, deadline, quarantine, chaos); when omitted, a default policy
    with the given *max_attempts* is used.  *completed* maps ``job_id`` to
    a previously produced :class:`JobResult` (a resumed campaign's
    checkpoints): matching jobs are not dispatched — their restored results
    slot straight into the report, and *on_result* is **not** called for
    them (they are already persisted).

    When the policy carries a chaos policy it is installed for the
    duration of the batch (and inside every pool worker) and uninstalled
    afterwards, so store writes performed from *on_result* see injected
    commit faults too.
    """
    job_list = tuple(jobs)
    executor = executor or SerialExecutor()
    policy = resilience if resilience is not None else ResiliencePolicy(
        max_attempts=max(1, int(max_attempts))
    )
    start = time.perf_counter()
    slots: list[JobResult | None] = [None] * len(job_list)
    pending: list[tuple[int, Job]] = []
    for position, job in enumerate(job_list):
        restored = completed.get(job.job_id) if completed else None
        if restored is not None:
            slots[position] = restored
        else:
            pending.append((position, job))
    if policy.quarantine_after > 0:
        _clear_quarantine()
    job_fn = _aexecute_with_retries if executor.is_async else _execute_with_retries
    installed = policy.chaos is not None
    if installed:
        chaos_mod.install(policy.chaos)
    try:
        for relative, job_result in executor.map_jobs(
            job_fn, [job for _, job in pending], policy
        ):
            slots[pending[relative][0]] = job_result
            if on_result is not None:
                on_result(job_result)
    finally:
        if installed:
            chaos_mod.uninstall()
    missing = [job_list[i].job_id for i, slot in enumerate(slots) if slot is None]
    if missing:
        raise ReproError(f"executor returned no result for job(s) {missing}")
    return ExecutionReport(
        [slot for slot in slots if slot is not None],
        backend=executor.name,
        workers=executor.workers,
        wall_time=time.perf_counter() - start,
    )


def run_across_stands(
    scripts: TestScript | Sequence[TestScript],
    signals: SignalSet,
    stands: Mapping[str, Callable[[], object]],
    harness_factory: Callable[[object], object],
    ecu_factory: Callable[[], object],
    *,
    policy: str = "first_fit",
    executor: Executor | None = None,
    max_attempts: int = 2,
) -> ExecutionReport:
    """Portability run: the same script(s) on every stand of *stands*.

    This is the paper's E1 experiment phrased as an executor batch: the
    portability analyses and benchmarks are thin layers over this call.
    """
    if isinstance(scripts, TestScript):
        scripts = (scripts,)
    jobs = expand_jobs(
        tuple(scripts), signals, stands, harness_factory,
        {"portability": ecu_factory}, policy=policy,
    )
    return run_jobs(jobs, executor, max_attempts=max_attempts)
