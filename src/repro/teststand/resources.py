"""Test stand resources: named instruments with their capability table.

A resource is the paper's unit of allocation: *"In our example there are
three resources, one DVM and two resistor decades, that can be connected to
the DUT."*  The resource table is the first of the two tables the test stand
needs about itself (the second being the connection matrix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.errors import AllocationError
from ..instruments.base import Capability, Instrument

__all__ = ["Resource", "ResourceTable"]


@dataclass(frozen=True)
class Resource:
    """One named resource of a test stand: an instrument behind a label."""

    name: str
    instrument: Instrument
    description: str = ""

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise AllocationError("resource needs a name")

    @property
    def key(self) -> str:
        return self.name.lower()

    @property
    def terminals(self) -> tuple[str, ...]:
        """Connection terminals of the underlying instrument."""
        return self.instrument.terminals

    @property
    def is_bus_interface(self) -> bool:
        return self.instrument.is_bus_interface

    def supports(self, method: str) -> bool:
        return self.instrument.supports(method)

    def capability_for(self, method: str) -> Capability:
        return self.instrument.capability_for(method)

    def capabilities(self) -> tuple[Capability, ...]:
        return self.instrument.capabilities()

    def rows(self) -> list[tuple[str, ...]]:
        """Rows of the paper's resource table contributed by this resource."""
        return [(self.name, *capability.as_row()) for capability in self.capabilities()]

    def __str__(self) -> str:
        return self.name


class ResourceTable:
    """Ordered, case-insensitive collection of a stand's resources."""

    #: Column titles matching the paper's resource table.
    COLUMNS = ("Ress.", "Method", "Attribut", "Min", "Max", "Unit")

    def __init__(self, resources: Iterable[Resource] = ()):
        self._resources: dict[str, Resource] = {}
        for resource in resources:
            self.add(resource)

    def add(self, resource: Resource) -> None:
        if resource.key in self._resources:
            raise AllocationError(f"duplicate resource name {resource.name!r}")
        self._resources[resource.key] = resource

    def get(self, name: str) -> Resource:
        try:
            return self._resources[str(name).lower()]
        except KeyError as exc:
            raise AllocationError(f"unknown resource {name!r}") from exc

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._resources

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._resources.values())

    def __len__(self) -> int:
        return len(self._resources)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(resource.name for resource in self._resources.values())

    def supporting(self, method: str) -> tuple[Resource, ...]:
        """All resources supporting *method*, in table order."""
        return tuple(resource for resource in self if resource.supports(method))

    def methods_supported(self) -> tuple[str, ...]:
        """All method names supported by at least one resource."""
        seen: dict[str, None] = {}
        for resource in self:
            for capability in resource.capabilities():
                seen.setdefault(capability.method.lower(), None)
        return tuple(seen)

    def rows(self) -> list[tuple[str, ...]]:
        """The complete resource table in the paper's column layout."""
        rendered: list[tuple[str, ...]] = []
        for resource in self:
            rendered.extend(resource.rows())
        return rendered

    def __repr__(self) -> str:
        return f"ResourceTable(resources={list(self.names)!r})"
