"""Test reports: turning execution results into human- and machine-readable form."""

from __future__ import annotations

import json
from typing import Iterable

from .verdict import TestResult, Verdict

__all__ = ["format_table", "text_report", "summary_line", "json_report", "campaign_summary"]


def format_table(header: Iterable[str], rows: Iterable[Iterable[str]]) -> str:
    """Render a simple aligned text table (used throughout reports and benches)."""
    header_cells = [str(cell) for cell in header]
    body = [[str(cell) for cell in row] for row in rows]
    widths = [len(cell) for cell in header_cells]
    for row in body:
        while len(widths) < len(row):
            widths.append(0)
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    widths = [max(width, len(cell)) for width, cell in
              zip(widths, header_cells + [""] * (len(widths) - len(header_cells)))]

    def render_row(cells: list[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    lines = [render_row(header_cells + [""] * (len(widths) - len(header_cells))), separator]
    lines.extend(render_row(row + [""] * (len(widths) - len(row))) for row in body)
    return "\n".join(lines)


def summary_line(result: TestResult) -> str:
    """One-line summary of a test run."""
    counts = result.counts()
    return (
        f"{result.script.name} on {result.stand}: {result.verdict} "
        f"({len(result.steps)} steps, {counts['pass']} pass / {counts['fail']} fail / "
        f"{counts['error']} error, {result.duration:g} s simulated, "
        f"{result.wall_time * 1e3:.1f} ms wall)"
    )


def text_report(result: TestResult, *, verbose: bool = True) -> str:
    """Full text report of one test run."""
    lines = [
        f"Test report: {result.script.name}",
        f"  DUT        : {result.script.dut}",
        f"  Test stand : {result.stand}",
        f"  Verdict    : {result.verdict}",
        f"  Steps      : {len(result.steps)}",
        f"  Simulated  : {result.duration:g} s",
        f"  Wall time  : {result.wall_time * 1e3:.1f} ms",
        f"  Resources  : {', '.join(result.resources_used()) or '-'}",
        "",
    ]
    if result.setup:
        lines.append("Setup:")
        for action in result.setup:
            lines.append(f"  {action.describe()}")
        lines.append("")
    header = ("step", "dt [s]", "verdict", "actions", "remark")
    rows = []
    for step in result.steps:
        rows.append((
            str(step.number),
            f"{step.duration:g}",
            str(step.verdict),
            str(len(step.actions)),
            step.remark,
        ))
    lines.append(format_table(header, rows))
    if verbose:
        lines.append("")
        for step in result.steps:
            lines.append(f"Step {step.number} ({step.verdict}):")
            for action in step.actions:
                lines.append(f"  {action.describe()}")
    return "\n".join(lines)


def json_report(result: TestResult) -> str:
    """Machine-readable JSON report of one test run."""
    payload = {
        "script": result.script.name,
        "dut": result.script.dut,
        "stand": result.stand,
        "verdict": result.verdict.value,
        "duration_s": result.duration,
        "wall_time_s": result.wall_time,
        "counts": result.counts(),
        "steps": [
            {
                "number": step.number,
                "dt": step.duration,
                "verdict": step.verdict.value,
                "remark": step.remark,
                "actions": [
                    {
                        "signal": action.signal,
                        "method": action.method,
                        "verdict": action.verdict.value,
                        "resource": action.resource,
                        "observed": action.outcome.observed if action.outcome else None,
                        "unit": action.outcome.unit if action.outcome else "",
                        "limits": (
                            [action.outcome.limits.low, action.outcome.limits.high]
                            if action.outcome and action.outcome.limits
                            else None
                        ),
                        "error": action.error,
                    }
                    for action in step.actions
                ],
            }
            for step in result.steps
        ],
    }
    return json.dumps(payload, indent=2)


def campaign_summary(results: Iterable[TestResult]) -> str:
    """Summary table over many runs (several scripts and/or several stands)."""
    header = ("script", "stand", "verdict", "steps", "pass", "fail", "error")
    rows = []
    for result in results:
        counts = result.counts()
        rows.append((
            result.script.name,
            result.stand,
            str(result.verdict),
            str(len(result.steps)),
            str(counts["pass"]),
            str(counts["fail"]),
            str(counts["error"]),
        ))
    return format_table(header, rows)
