"""Test-stand interpreter: executes XML test scripts on a (virtual) stand.

The interpreter is the component the paper requires *"for those test stands,
that are going to be used for component tests"*.  It only consumes

* the stand-independent test script,
* the stand's own resource table and connection matrix,
* the DUT adapter information (which signal sits on which pin),

which is precisely the boundary that makes the test definitions portable.
The execution convention per step is: apply all stimuli of the step, let the
step's Δt elapse, then evaluate all expectations.
"""

from __future__ import annotations

import time as _time
from typing import Mapping

from ..core.errors import AllocationError, ExecutionError, InstrumentError
from ..core.script import ScriptStep, SignalAction, TestScript
from ..core.signals import Signal, SignalSet
from ..dut.harness import TestHarness
from ..methods import MethodOutcome, MethodRegistry, default_registry
from .allocator import Allocator
from .stands import TestStand
from .verdict import ActionResult, StepResult, TestResult, Verdict

__all__ = ["TestStandInterpreter", "run_script"]


class TestStandInterpreter:
    """Executes :class:`~repro.core.script.TestScript` objects on a stand."""

    def __init__(
        self,
        stand: TestStand,
        harness: TestHarness,
        signals: SignalSet,
        *,
        policy: str = "first_fit",
        registry: MethodRegistry | None = None,
        stop_on_error: bool = False,
    ):
        self.stand = stand
        self.harness = harness
        self.signals = signals
        self.registry = registry or stand.registry or default_registry()
        self.policy = policy
        self.stop_on_error = stop_on_error
        self.allocator = Allocator(
            stand.resources, stand.connections, policy=policy, registry=self.registry
        )

    # -- public API --------------------------------------------------------------

    def run(self, script: TestScript) -> TestResult:
        """Execute *script* and return the collected verdicts."""
        wall_start = _time.perf_counter()
        self.allocator.release_all()
        self.harness.set_ubatt(self.stand.supply_voltage)
        variables = self._variables()

        missing = [name for name in script.variables if name not in variables]
        if missing:
            raise ExecutionError(
                f"test stand {self.stand.name!r} does not provide variables {missing}"
            )

        clock_start = self.harness.now
        setup_results: list[ActionResult] = []
        setup_failed = False
        for action in script.setup:
            result = self._perform_action(action, variables)
            setup_results.append(result)
            if self.stop_on_error and result.verdict is Verdict.ERROR:
                # A broken setup invalidates every step; abort the run but
                # keep the setup results so the report shows what happened.
                setup_failed = True
                break

        steps: list[StepResult] = []
        if not setup_failed:
            for step in script.steps:
                result = self._run_step(step, variables)
                steps.append(result)
                if self.stop_on_error and result.verdict is Verdict.ERROR:
                    break

        self.allocator.release_all()
        # Simulated duration is the harness clock delta, which also covers
        # `wait` actions and time spent during setup - not just the sum of
        # the step durations.
        return TestResult(
            script,
            self.stand.name,
            setup=tuple(setup_results),
            steps=steps,
            duration=self.harness.now - clock_start,
            wall_time=_time.perf_counter() - wall_start,
        )

    # -- internals -----------------------------------------------------------------

    def _variables(self) -> dict[str, float]:
        variables = dict(self.harness.variables())
        variables.update(self.stand.variables)
        variables["ubatt"] = self.stand.supply_voltage
        return variables

    def _signal_for(self, action: SignalAction) -> Signal:
        return self.signals.get(action.signal)

    def _is_measurement(self, action: SignalAction) -> bool:
        if action.method in self.registry:
            return self.registry.get(action.method).is_measurement
        return str(action.method).lower().startswith("get")

    def _run_step(self, step: ScriptStep, variables: Mapping[str, float]) -> StepResult:
        start_time = self.harness.now
        stimuli = [a for a in step.actions if not self._is_measurement(a)]
        expectations = [a for a in step.actions if self._is_measurement(a)]

        results: list[ActionResult] = []
        for action in stimuli:
            results.append(self._perform_action(action, variables))
        # Let the step duration elapse before the expectations are evaluated.
        self.harness.advance(step.duration)
        for action in expectations:
            results.append(self._perform_action(action, variables))

        return StepResult(
            number=step.number,
            duration=step.duration,
            actions=tuple(results),
            remark=step.remark,
            start_time=start_time,
        )

    def _perform_action(
        self, action: SignalAction, variables: Mapping[str, float]
    ) -> ActionResult:
        try:
            signal = self._signal_for(action)
        except Exception as exc:
            return ActionResult(action, Verdict.ERROR, error=f"unknown signal: {exc}")

        if action.method.lower() == "wait":
            duration = float(action.call.param("t", "0") or 0)
            self.harness.advance(duration)
            return ActionResult(action, Verdict.PASS)

        open_circuit = self._realise_open_circuit(action, signal, variables)
        if open_circuit is not None:
            return open_circuit

        try:
            allocation = self.allocator.allocate(signal, action.call, variables)
        except AllocationError as exc:
            return ActionResult(action, Verdict.ERROR, error=str(exc))

        resource = self.stand.resources.get(allocation.resource)
        try:
            outcome = resource.instrument.execute(
                action.call, signal, allocation.pins, self.harness, dict(variables)
            )
        except InstrumentError as exc:
            return ActionResult(action, Verdict.ERROR, allocation=allocation, error=str(exc))
        except Exception as exc:  # harness / model errors surface as execution errors
            return ActionResult(action, Verdict.ERROR, allocation=allocation, error=str(exc))

        verdict = Verdict.PASS if outcome.passed else Verdict.FAIL
        return ActionResult(action, verdict, outcome=outcome, allocation=allocation)

    def _realise_open_circuit(
        self, action: SignalAction, signal: Signal, variables: Mapping[str, float]
    ) -> ActionResult | None:
        """Realise ``put_r r="INF"`` by simply disconnecting the pin.

        A door in its "Closed" status is an open contact; the cheapest (and
        physically most faithful) realisation is to not connect any resource
        at all.  Doing so also frees the resistor decade for other door
        signals - exactly what a human test-stand operator would do.  The
        acceptance window still has to allow an open circuit (``r_max`` must
        be unbounded), otherwise the normal allocation path is used.
        """
        import math

        from ..methods import evaluate_parameter, limits_from_params

        if action.method.lower() != "put_r" or signal.is_bus:
            return None
        try:
            requested = evaluate_parameter(dict(action.call.params), "r", variables)
        except Exception:
            return None
        if requested is None or not math.isinf(requested):
            return None
        acceptance = limits_from_params(dict(action.call.params), "r", variables)
        if not math.isinf(acceptance.high):
            return None
        self.allocator.release(signal.key)
        for pin in signal.pins:
            self.harness.release_resistance(pin)
        outcome = MethodOutcome(
            method=action.method,
            passed=True,
            observed=math.inf,
            unit="Ohm",
            detail=f"realised as open circuit at {'/'.join(signal.pins)}",
        )
        return ActionResult(action, Verdict.PASS, outcome=outcome)


def run_script(
    script: TestScript,
    stand: TestStand,
    harness: TestHarness,
    signals: SignalSet,
    *,
    policy: str = "first_fit",
) -> TestResult:
    """Convenience wrapper: build an interpreter and run one script."""
    interpreter = TestStandInterpreter(stand, harness, signals, policy=policy)
    return interpreter.run(script)
