"""Test-stand interpreter: executes XML test scripts on a (virtual) stand.

The interpreter is the component the paper requires *"for those test stands,
that are going to be used for component tests"*.  It only consumes

* the stand-independent test script,
* the stand's own resource table and connection matrix,
* the DUT adapter information (which signal sits on which pin),

which is precisely the boundary that makes the test definitions portable.
The execution convention per step is: apply all stimuli of the step, let the
step's Δt elapse, then evaluate all expectations.

The interpreter offers two execution entry points over one shared core:
:meth:`TestStandInterpreter.run` performs every instrument call
synchronously (blocking for the instrument's ``io_delay``), while
:meth:`TestStandInterpreter.arun` awaits the same calls through
:meth:`~repro.instruments.Instrument.aexecute` - so an asyncio event loop
can interleave many script runs on latency-simulated stands.  Both paths
walk the identical setup/step/action sequence and produce the identical
:class:`~repro.teststand.verdict.TestResult`.
"""

from __future__ import annotations

import time as _time
from typing import Mapping

from ..core.errors import (
    AllocationError,
    ExecutionError,
    InstrumentError,
    TransientError,
)
from ..core.script import ScriptStep, SignalAction, TestScript
from ..core.signals import Signal, SignalSet
from ..dut.harness import TestHarness
from ..methods import MethodOutcome, MethodRegistry, default_registry
from .allocator import Allocator
from .plan import (
    GLOBAL_PLAN_CACHE,
    PlanCache,
    PlanCursor,
    action_is_measurement,
    open_circuit_outcome,
    open_circuit_requested,
    registry_fingerprint,
)
from .profiling import PROFILER
from .stands import TestStand
from .verdict import ActionResult, StepResult, TestResult, Verdict
from .vm import VmCursor

__all__ = ["TestStandInterpreter", "run_script"]


class TestStandInterpreter:
    """Executes :class:`~repro.core.script.TestScript` objects on a stand.

    ``plan_cache`` selects the compile-once-run-many fast path: on every
    run the interpreter looks the (script x stand-topology x policy x
    variables) combination up in the cache, compiles its
    :class:`~repro.teststand.plan.ExecutionPlan` on first use and replays
    the pre-resolved allocations on every later run, re-checking only the
    cheap variable-dependent capability window and the availability of the
    planned routes per action (full search on any mismatch - verdicts are
    byte-identical with plans on or off).  It defaults to the process-wide
    :data:`~repro.teststand.plan.GLOBAL_PLAN_CACHE`; pass ``None`` to force
    the pre-plan full search on every action.

    ``use_vm`` (default on, requires a plan cache) selects the bytecode
    fast path on top: when the cached plan carries a compiled
    :class:`~repro.teststand.vm.VmProgram`, each run binds it to the stand,
    self-checks it in a prologue and - if everything matches - executes the
    flat instruction stream instead of walking actions, with verdicts
    byte-identical to the classic path (see :mod:`repro.teststand.vm`).
    """

    def __init__(
        self,
        stand: TestStand,
        harness: TestHarness,
        signals: SignalSet,
        *,
        policy: str = "first_fit",
        registry: MethodRegistry | None = None,
        stop_on_error: bool = False,
        plan_cache: PlanCache | None = GLOBAL_PLAN_CACHE,
        use_vm: bool = True,
    ):
        self.stand = stand
        self.harness = harness
        self.signals = signals
        self.registry = registry or stand.registry or default_registry()
        self.policy = policy
        self.stop_on_error = stop_on_error
        self.plan_cache = plan_cache
        self.use_vm = bool(use_vm) and plan_cache is not None
        self._plan_cursor: PlanCursor | None = None
        self._vm_cursor: VmCursor | None = None
        self.allocator = Allocator(
            stand.resources, stand.connections, policy=policy, registry=self.registry
        )

    # -- public API --------------------------------------------------------------

    def run(self, script: TestScript) -> TestResult:
        """Execute *script* synchronously and return the collected verdicts.

        Each instrument call blocks for the instrument's ``io_delay`` - the
        path the serial / thread / process backends use.  When the cached
        plan carries a compiled VM program and its run prologue validates,
        the whole measurement loop executes as the flat instruction stream;
        otherwise (or on any prologue mismatch) the classic per-action walk
        below runs, producing identical verdicts.
        """
        wall_start, variables, clock_start = self._begin(script)

        cursor = self._vm_cursor
        if cursor is not None:
            t0 = _time.perf_counter() if PROFILER.enabled else None
            setup_results, steps = cursor.execute(variables)
            if t0 is not None:
                PROFILER.add("vm_execute", _time.perf_counter() - t0)
            return self._collect(
                script, setup_results, steps, clock_start, wall_start)

        setup_results: list[ActionResult] = []
        setup_failed = False
        for action in script.setup:
            result = self._perform_action(action, variables)
            setup_results.append(result)
            if self.stop_on_error and result.verdict is Verdict.ERROR:
                # A broken setup invalidates every step; abort the run but
                # keep the setup results so the report shows what happened.
                setup_failed = True
                break

        steps: list[StepResult] = []
        if not setup_failed:
            for step in script.steps:
                result = self._run_step(step, variables)
                steps.append(result)
                if self.stop_on_error and result.verdict is Verdict.ERROR:
                    break

        return self._collect(script, setup_results, steps, clock_start, wall_start)

    async def arun(self, script: TestScript) -> TestResult:
        """Execute *script*, awaiting every instrument call.

        The awaitable twin of :meth:`run`: the same setup/step/action walk
        with the same stop-on-error semantics, but instrument I/O goes
        through :meth:`~repro.instruments.Instrument.aexecute` so the event
        loop can run other scripts while this stand's (simulated) I/O is in
        flight.  Aborting a run - a setup error under ``stop_on_error``, or
        the surrounding task being cancelled - therefore never blocks the
        loop on instrument latency that no longer matters.
        """
        wall_start, variables, clock_start = self._begin(script)

        cursor = self._vm_cursor
        if cursor is not None:
            t0 = _time.perf_counter() if PROFILER.enabled else None
            setup_results, steps = await cursor.aexecute(variables)
            if t0 is not None:
                PROFILER.add("vm_execute", _time.perf_counter() - t0)
            return self._collect(
                script, setup_results, steps, clock_start, wall_start)

        setup_results: list[ActionResult] = []
        setup_failed = False
        for action in script.setup:
            result = await self._aperform_action(action, variables)
            setup_results.append(result)
            if self.stop_on_error and result.verdict is Verdict.ERROR:
                setup_failed = True
                break

        steps: list[StepResult] = []
        if not setup_failed:
            for step in script.steps:
                result = await self._arun_step(step, variables)
                steps.append(result)
                if self.stop_on_error and result.verdict is Verdict.ERROR:
                    break

        return self._collect(script, setup_results, steps, clock_start, wall_start)

    # -- internals -----------------------------------------------------------------

    def _begin(self, script: TestScript) -> tuple[float, dict[str, float], float]:
        """Shared run prologue: reset allocations, check stand variables."""
        wall_start = _time.perf_counter()
        self.allocator.release_all()
        self.harness.set_ubatt(self.stand.supply_voltage)
        variables = self._variables()
        missing = [name for name in script.variables if name not in variables]
        if missing:
            raise ExecutionError(
                f"test stand {self.stand.name!r} does not provide variables {missing}"
            )
        self._plan_cursor = None
        self._vm_cursor = None
        if self.plan_cache is not None:
            # One cache lookup per run; the first run of a combination pays
            # the compile, every later run replays.  Plan trouble of any
            # kind silently degrades to the full per-action search.
            try:
                plan = self.plan_cache.plan_for(
                    script, self.signals, self.stand,
                    policy=self.policy, registry=self.registry,
                    variables=variables,
                )
                self._plan_cursor = plan.cursor()
            except Exception:
                plan = None
                self._plan_cursor = None
            if self.use_vm and plan is not None and plan.program is not None:
                # VM fast path: bind the program to this stand and run its
                # prologue self-check.  Any mismatch - a live signal pinned
                # differently than compiled, a variable-dependent window
                # that no longer fits - degrades this whole run to the
                # classic walk before anything has executed.
                cursor = VmCursor(
                    plan.program, self.stand,
                    signals=self.signals, allocator=self.allocator,
                    harness=self.harness, stop_on_error=self.stop_on_error,
                )
                if cursor.validate(variables):
                    self._vm_cursor = cursor
                else:
                    self.plan_cache.note_vm_degrade()
        return wall_start, variables, self.harness.now

    def _collect(
        self,
        script: TestScript,
        setup_results: list[ActionResult],
        steps: list[StepResult],
        clock_start: float,
        wall_start: float,
    ) -> TestResult:
        """Shared run epilogue: release resources, assemble the result."""
        self.allocator.release_all()
        cursor = self._plan_cursor
        if cursor is not None:
            if self.plan_cache is not None:
                if self._vm_cursor is not None:
                    # The VM executed the run; the untouched plan cursor
                    # carries no action counters worth folding in.
                    self.plan_cache.note_vm_run()
                else:
                    self.plan_cache.note_run(cursor.hits, cursor.misses)
            self._plan_cursor = None
        self._vm_cursor = None
        # Simulated duration is the harness clock delta, which also covers
        # `wait` actions and time spent during setup - not just the sum of
        # the step durations.
        return TestResult(
            script,
            self.stand.name,
            setup=tuple(setup_results),
            steps=steps,
            duration=self.harness.now - clock_start,
            wall_time=_time.perf_counter() - wall_start,
        )

    def _variables(self) -> dict[str, float]:
        variables = dict(self.harness.variables())
        variables.update(self.stand.variables)
        variables["ubatt"] = self.stand.supply_voltage
        return variables

    def _signal_for(self, action: SignalAction) -> Signal:
        return self.signals.get(action.signal)

    def _is_measurement(self, action: SignalAction) -> bool:
        # Shared with the plan compiler: both must split steps identically.
        return action_is_measurement(self.registry, action.method)

    def _split_step(
        self, step: ScriptStep
    ) -> tuple[float, tuple[SignalAction, ...], tuple[SignalAction, ...]]:
        """Step prologue shared by both paths: stimuli before expectations.

        The split depends only on (step, registry), so it is memoised on
        the step object - campaign runs walk the same steps thousands of
        times with the same registry.
        """
        start_time = self.harness.now
        # Keyed by registry *content*: every stand carries its own
        # default_registry() instance, so an identity key would thrash
        # across workers - and the fingerprint (unlike a registry) adds
        # nothing noticeable to a pickled step.
        registry_key = registry_fingerprint(self.registry)
        cached = step.__dict__.get("_split_memo")
        if cached is not None and cached[0] == registry_key:
            return start_time, cached[1], cached[2]
        stimuli = tuple(a for a in step.actions if not self._is_measurement(a))
        expectations = tuple(a for a in step.actions if self._is_measurement(a))
        step.__dict__["_split_memo"] = (registry_key, stimuli, expectations)
        return start_time, stimuli, expectations

    def _step_result(
        self, step: ScriptStep, results: list[ActionResult], start_time: float
    ) -> StepResult:
        return StepResult(
            number=step.number,
            duration=step.duration,
            actions=tuple(results),
            remark=step.remark,
            start_time=start_time,
        )

    def _run_step(self, step: ScriptStep, variables: Mapping[str, float]) -> StepResult:
        start_time, stimuli, expectations = self._split_step(step)
        results: list[ActionResult] = []
        for action in stimuli:
            results.append(self._perform_action(action, variables))
        # Let the step duration elapse before the expectations are evaluated.
        self.harness.advance(step.duration)
        for action in expectations:
            results.append(self._perform_action(action, variables))
        return self._step_result(step, results, start_time)

    async def _arun_step(
        self, step: ScriptStep, variables: Mapping[str, float]
    ) -> StepResult:
        start_time, stimuli, expectations = self._split_step(step)
        results: list[ActionResult] = []
        for action in stimuli:
            results.append(await self._aperform_action(action, variables))
        # The step duration is *simulated* time: advancing the harness clock
        # costs no wall time and therefore needs no await.
        self.harness.advance(step.duration)
        for action in expectations:
            results.append(await self._aperform_action(action, variables))
        return self._step_result(step, results, start_time)

    def _prepare_action(
        self, action: SignalAction, variables: Mapping[str, float]
    ):
        """Everything before the instrument call: signal lookup, ``wait``
        handling, open-circuit realisation and resource allocation.

        Returns a terminal :class:`ActionResult` when the action is already
        decided, else the ``(resource, allocation, signal)`` triple the
        sync/async executors hand to the instrument.
        """
        try:
            signal = self._signal_for(action)
        except Exception as exc:
            return ActionResult(action, Verdict.ERROR, error=f"unknown signal: {exc}")

        if action.method.lower() == "wait":
            duration = float(action.call.param("t", "0") or 0)
            self.harness.advance(duration)
            return ActionResult(action, Verdict.PASS)

        allocation = None
        cursor = self._plan_cursor
        if cursor is not None:
            # Plan fast path: the next planned entry must describe exactly
            # this action (the cursor verifies signal and method, and the
            # replay re-checks window and route availability) - any
            # mismatch falls through to the full slow path below.
            entry = cursor.take(signal.key, action.method)
            if entry is not None:
                if entry.kind == "open":
                    cursor.hits += 1
                    return self._apply_open_circuit(action, signal, entry.outcome)
                allocation = self.allocator.replay(
                    signal, action.call, entry.allocation, variables,
                    window=entry.window,
                )
                if allocation is not None:
                    cursor.hits += 1
                else:
                    cursor.reject()

        if allocation is None:
            open_circuit = self._realise_open_circuit(action, signal, variables)
            if open_circuit is not None:
                return open_circuit
            t0 = _time.perf_counter() if PROFILER.enabled else None
            try:
                allocation = self.allocator.allocate(signal, action.call, variables)
            except AllocationError as exc:
                if t0 is not None:
                    PROFILER.add("allocation", _time.perf_counter() - t0)
                return ActionResult(action, Verdict.ERROR, error=str(exc))
            if t0 is not None:
                PROFILER.add("allocation", _time.perf_counter() - t0)

        resource = self.stand.resources.get(allocation.resource)
        return resource, allocation, signal

    def _perform_action(
        self, action: SignalAction, variables: Mapping[str, float]
    ) -> ActionResult:
        prepared = self._prepare_action(action, variables)
        if isinstance(prepared, ActionResult):
            return prepared
        resource, allocation, signal = prepared
        t0 = _time.perf_counter() if PROFILER.enabled else None
        try:
            outcome = resource.instrument.execute(
                action.call, signal, allocation.pins, self.harness, dict(variables)
            )
        # Transient infrastructure failures (flaky instrument I/O, chaos
        # injections) must reach the executor's retry layer, not become an
        # ERROR verdict: a retried job's verdicts then match a clean run.
        except TransientError:
            raise
        except InstrumentError as exc:
            return ActionResult(action, Verdict.ERROR, allocation=allocation, error=str(exc))
        except Exception as exc:  # harness / model errors surface as execution errors
            return ActionResult(action, Verdict.ERROR, allocation=allocation, error=str(exc))
        finally:
            if t0 is not None:
                PROFILER.add("instrument_io", _time.perf_counter() - t0)
        verdict = Verdict.PASS if outcome.passed else Verdict.FAIL
        return ActionResult(action, verdict, outcome=outcome, allocation=allocation)

    async def _aperform_action(
        self, action: SignalAction, variables: Mapping[str, float]
    ) -> ActionResult:
        prepared = self._prepare_action(action, variables)
        if isinstance(prepared, ActionResult):
            return prepared
        resource, allocation, signal = prepared
        t0 = _time.perf_counter() if PROFILER.enabled else None
        try:
            outcome = await resource.instrument.aexecute(
                action.call, signal, allocation.pins, self.harness, dict(variables)
            )
        except TransientError:  # propagate to the retry layer (see _perform_action)
            raise
        except InstrumentError as exc:
            return ActionResult(action, Verdict.ERROR, allocation=allocation, error=str(exc))
        # asyncio.CancelledError derives from BaseException, so task
        # cancellation propagates instead of being recorded as a verdict.
        except Exception as exc:
            return ActionResult(action, Verdict.ERROR, allocation=allocation, error=str(exc))
        finally:
            if t0 is not None:
                PROFILER.add("instrument_io", _time.perf_counter() - t0)
        verdict = Verdict.PASS if outcome.passed else Verdict.FAIL
        return ActionResult(action, verdict, outcome=outcome, allocation=allocation)

    def _realise_open_circuit(
        self, action: SignalAction, signal: Signal, variables: Mapping[str, float]
    ) -> ActionResult | None:
        """Realise ``put_r r="INF"`` by simply disconnecting the pin.

        A door in its "Closed" status is an open contact; the cheapest (and
        physically most faithful) realisation is to not connect any resource
        at all.  Doing so also frees the resistor decade for other door
        signals - exactly what a human test-stand operator would do.  The
        acceptance window still has to allow an open circuit (``r_max`` must
        be unbounded), otherwise the normal allocation path is used.  The
        decision itself is shared with the plan compiler
        (:func:`~repro.teststand.plan.open_circuit_requested`), which must
        apply the same release to stay in lock-step.
        """
        if not open_circuit_requested(action, signal, variables):
            return None
        return self._apply_open_circuit(
            action, signal, open_circuit_outcome(action, signal)
        )

    def _apply_open_circuit(
        self, action: SignalAction, signal: Signal, outcome: MethodOutcome
    ) -> ActionResult:
        """Disconnect the signal's pins and record the ready-made outcome.

        Shared by the slow path (which just decided the action is an open
        circuit) and the plan fast path (which decided at compile time and
        carries the identical immutable outcome in its entry).
        """
        self.allocator.release(signal.key)
        for pin in signal.pins:
            self.harness.release_resistance(pin)
        return ActionResult(action, Verdict.PASS, outcome=outcome)


def run_script(
    script: TestScript,
    stand: TestStand,
    harness: TestHarness,
    signals: SignalSet,
    *,
    policy: str = "first_fit",
) -> TestResult:
    """Convenience wrapper: build an interpreter and run one script."""
    interpreter = TestStandInterpreter(stand, harness, signals, policy=policy)
    return interpreter.run(script)
