"""Lightweight phase profiling for campaign execution (``--profile``).

When enabled, the interpreter attributes wall-clock time to the two
interesting phases of the hot path - resource **allocation** (plan replay or
full search) and **instrument I/O** (the virtual instrument call including
its simulated latency) - and ``repro-campaign --profile`` combines them with
the phases it times itself (job expansion, execution, aggregation) plus the
plan-cache statistics into a per-phase breakdown on stderr.

The profiler is a process-global accumulator guarded by a lock; the serial,
thread and async backends all report into the parent process' instance.
Jobs dispatched to worker *processes* accumulate into the workers' own
instances, which each chunk ships back with its results so the parent can
:meth:`~PhaseProfiler.merge` them - ``--profile`` therefore shows the
allocation / instrument / VM phases under ``--backend process`` too (summed
across workers, so they can exceed the parent's wall clock).

Cost when disabled: one attribute check per action, no locking.
"""

from __future__ import annotations

import threading

__all__ = ["PhaseProfiler", "PROFILER"]


class PhaseProfiler:
    """Accumulates (seconds, call count) per named phase, thread-safely."""

    __slots__ = ("enabled", "_lock", "_seconds", "_calls")

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._seconds.clear()
            self._calls.clear()

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Attribute *seconds* (and *calls* invocations) to *phase*."""
        with self._lock:
            self._seconds[phase] = self._seconds.get(phase, 0.0) + float(seconds)
            self._calls[phase] = self._calls.get(phase, 0) + int(calls)

    def snapshot(self) -> dict[str, tuple[float, int]]:
        """Phase -> (total seconds, call count), at this instant."""
        with self._lock:
            return {
                phase: (self._seconds[phase], self._calls.get(phase, 0))
                for phase in self._seconds
            }

    def merge(self, snapshot: dict[str, tuple[float, int]]) -> None:
        """Fold another profiler's snapshot (e.g. a worker process's) in."""
        with self._lock:
            for phase, (seconds, calls) in snapshot.items():
                self._seconds[phase] = self._seconds.get(phase, 0.0) + float(seconds)
                self._calls[phase] = self._calls.get(phase, 0) + int(calls)


#: Process-global profiler instance the interpreter reports into.
PROFILER = PhaseProfiler()
