"""Compiled execution plans: allocate once, run many.

The paper's interpreter *"searches an appropriate resource that can be
connected to the signal pin"* for **each method to be carried out** - and a
naive reproduction repeats that search for every action of every run, even
though the search result depends only on

* the script (which signals/methods it exercises, in which order),
* the stand topology (resource table + connection matrix),
* the allocation policy, and
* the stand variables the limit expressions reference (``ubatt`` ...),

none of which change between the runs of a campaign.  An
:class:`ExecutionPlan` therefore pre-resolves the whole allocation sequence
of one (script x stand-topology x policy x variables) combination exactly
once - the *variable-independent* part of allocation - and the interpreter
replays it on every subsequent run, re-checking only the cheap
variable-dependent capability window plus route availability per action
(:meth:`~repro.teststand.allocator.Allocator.replay`).  Any discrepancy
(topology drift, a route unexpectedly held, a capability window that no
longer fits) falls back to the full search for that action, so the verdict
table is byte-identical with plans on or off.

Plans live in a :class:`PlanCache` keyed by content fingerprints, never by
object identity: two stands built by the same factory share one plan, and a
stand whose topology differs in any observable way (an added resource, a
rewired route, another supply voltage) misses the cache and gets its own
plan.  :data:`GLOBAL_PLAN_CACHE` is the process-wide default the executor
backends use; worker processes each grow their own copy.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Mapping

from ..core.errors import AllocationError
from ..core.script import SignalAction, TestScript
from ..core.signals import Signal, SignalSet
from ..methods import (
    MethodOutcome,
    MethodRegistry,
    evaluate_call_parameter,
    limits_for_call,
)
from .allocator import Allocation, Allocator
from .stands import TestStand
from . import vm

__all__ = [
    "PlanEntry",
    "ExecutionPlan",
    "PlanCursor",
    "PlanCacheStats",
    "PlanCache",
    "GLOBAL_PLAN_CACHE",
    "compile_plan",
    "action_is_measurement",
    "open_circuit_requested",
    "open_circuit_outcome",
    "script_fingerprint",
    "stand_fingerprint",
    "registry_fingerprint",
]


# ---------------------------------------------------------------------------
# Shared action semantics (single source for interpreter and plan compiler)
# ---------------------------------------------------------------------------

def action_is_measurement(registry: MethodRegistry, method: str) -> bool:
    """Whether *method* is an expectation (evaluated after the step's dt).

    The registry decides where it can; unknown methods fall back to the
    ``get_*`` naming convention, mirroring what the interpreter has always
    done.  Plan compilation and the interpreter's step split must agree on
    this, otherwise a replayed allocation sequence would drift.
    """
    if method in registry:
        return registry.get(method).is_measurement
    return str(method).lower().startswith("get")


def open_circuit_requested(
    action: SignalAction, signal: Signal, variables: Mapping[str, float]
) -> bool:
    """Whether the interpreter will realise this action as an open circuit.

    ``put_r r="INF"`` with an unbounded acceptance window never reaches the
    allocator - the pin is simply disconnected.  The plan compiler must make
    the same call (and apply the same release) to keep its simulated
    allocator state in lock-step with the real run.
    """
    if action.method.lower() != "put_r" or signal.is_bus:
        return False
    try:
        requested = evaluate_call_parameter(action.call, "r", variables)
    except Exception:
        return False
    if requested is None or not math.isinf(requested):
        return False
    acceptance = limits_for_call(action.call, "r", variables)
    return math.isinf(acceptance.high)


def open_circuit_outcome(action: SignalAction, signal: Signal) -> MethodOutcome:
    """The PASS outcome of an open-circuit realisation.

    Single source for the plan compiler and the interpreter's slow path:
    replayed and freshly-decided open circuits must render byte-identically
    in reports, so the literal lives in exactly one place.
    """
    return MethodOutcome(
        method=action.method,
        passed=True,
        observed=math.inf,
        unit="Ohm",
        detail=f"realised as open circuit at {'/'.join(signal.pins)}",
    )


def allocation_sequence(
    script: TestScript, registry: MethodRegistry
) -> Iterator[SignalAction]:
    """Actions in the exact order the interpreter performs them.

    Setup actions first, then per step all stimuli followed by all
    expectations - the paper's execution convention.  ``stop_on_error``
    truncation only ever cuts a suffix off this sequence, so a plan compiled
    over the full sequence stays aligned with any aborted run.
    """
    yield from script.setup
    for step in script.steps:
        expectations = []
        for action in step.actions:
            if action_is_measurement(registry, action.method):
                expectations.append(action)
            else:
                yield action
        yield from expectations


# ---------------------------------------------------------------------------
# Fingerprints (content identity, never object identity)
# ---------------------------------------------------------------------------

class _HashedKey:
    """A fingerprint tuple with its hash computed once.

    The fingerprints below are deeply nested tuples; hashing one from
    scratch on every cache lookup (that is: every run) would cost more
    than the lookup saves.  Wrapping the tuple freezes the hash at
    construction while equality still compares full content, so hash
    collisions can never alias two different fingerprints.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: tuple):
        self.value = value
        self._hash = hash(value)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _HashedKey):
            return self._hash == other._hash and self.value == other.value
        return NotImplemented

    def __reduce__(self):
        # String hashes are salted per process (PYTHONHASHSEED): a key
        # pickled into a worker (e.g. riding a script's fingerprint memo)
        # must recompute its hash there, or equal-content keys from the
        # parent and the worker would never compare equal.
        return (type(self), (self.value,))

    def __repr__(self) -> str:
        return f"_HashedKey({self.value!r})"


def script_fingerprint(script: TestScript, signals: SignalSet) -> "_HashedKey":
    """Execution-relevant content identity of (script, resolved signals).

    Covers every action (order, signal, method, parameters) plus the pin /
    bus resolution of every signal the script touches - everything the
    allocation sequence depends on - plus the step skeleton (number,
    settle duration, remark).  The skeleton was irrelevant while plans
    stopped at allocation, but the cached plan now carries the compiled VM
    program of the *whole measurement loop*, whose ``WAIT`` / ``END_STEP``
    operands bake in exactly those step fields.  The result is
    memoised on the script object, guarded by the step/setup counts (the
    only way a ``TestScript`` can grow) *and* by the signal-set object:
    the same script run against a differently-pinned set must fingerprint
    afresh, or it would alias the other set's plan.  (The memo keeps a
    strong reference to the set, so an ``is`` guard cannot be fooled by
    id reuse.)
    """
    guard = (len(script.setup), len(script.steps))
    cached = script.__dict__.get("_allocation_fingerprint")
    if cached is not None and cached[0] == guard and cached[1] is signals:
        return cached[2]

    actions: list[tuple] = []
    used: dict[str, None] = {}

    def _record(action: SignalAction, marker: str) -> None:
        used.setdefault(str(action.signal).lower(), None)
        actions.append((
            marker,
            str(action.signal).lower(),
            action.method.lower(),
            tuple(sorted(action.call.params.items())),
        ))

    for action in script.setup:
        _record(action, "s")
    for step in script.steps:
        for action in step.actions:
            _record(action, str(step.number))

    resolved: list[tuple] = []
    for key in used:
        try:
            signal = signals.get(key)
        except Exception:
            resolved.append((key, None))
            continue
        resolved.append((
            key,
            tuple(p.lower() for p in signal.pins),
            bool(signal.is_bus),
            str(signal.message).lower() if signal.message else None,
        ))

    steps_meta = tuple(
        (step.number, float(step.duration), step.remark)
        for step in script.steps
    )
    fingerprint = _HashedKey(
        (script.name, script.dut.lower(), tuple(actions), tuple(resolved),
         steps_meta)
    )
    script.__dict__["_allocation_fingerprint"] = (guard, signals, fingerprint)
    return fingerprint


def stand_fingerprint(stand: TestStand) -> "_HashedKey":
    """Topology identity of a test stand: resources, routes, supply, variables.

    Two stands built by the same factory fingerprint identically and share
    one plan; any observable topology difference - another instrument, a
    different capability range, a rewired or re-labelled route, another
    supply voltage or stand variable - changes the fingerprint and therefore
    invalidates (that is: bypasses) every cached plan.  Memoised on the
    stand object; stands are treated as topologically immutable once they
    have executed a script, which every bundled builder guarantees.  The
    resource/route counts guard the memo anyway, so the common in-place
    mutations (adding a resource or wiring a new route between runs) are
    caught rather than silently replaying a stale plan.
    """
    guard = (len(stand.resources), len(stand.connections))
    cached = stand.__dict__.get("_topology_fingerprint")
    if cached is not None and cached[0] == guard:
        return cached[1]

    resources: list[tuple] = []
    # Table order is part of the topology: first_fit takes candidates in
    # exactly this order, so re-ordered resources must not share a plan.
    for resource in stand.resources:
        instrument = resource.instrument
        resources.append((
            resource.key,
            type(instrument).__name__,
            tuple(instrument.terminals),
            bool(instrument.is_bus_interface),
            tuple(
                (c.method.lower(), c.attribute, c.minimum, c.maximum, c.unit)
                for c in instrument.capabilities()
            ),
        ))

    # Route order is deliberately normalised away (sorted below): a
    # (resource, terminal, pin) triple is unique within a matrix -
    # ConnectionMatrix.add rejects duplicates regardless of connector - so
    # route_between() cannot depend on table order and two stands that
    # differ only in route insertion order genuinely behave identically.
    routes: list[tuple] = []
    for route in stand.connections:
        connector = route.connector
        routes.append((
            route.resource_key,
            route.terminal,
            route.pin_key,
            type(connector).__name__,
            connector.label,
            getattr(connector, "mux", None),
            getattr(connector, "channel", None),
        ))

    fingerprint = _HashedKey((
        stand.name,
        float(stand.supply_voltage),
        tuple(sorted(stand.variables.items())),
        tuple(resources),
        tuple(sorted(routes)),
    ))
    stand.__dict__["_topology_fingerprint"] = (guard, fingerprint)
    return fingerprint


def registry_fingerprint(registry: MethodRegistry) -> "_HashedKey":
    """Identity of the method vocabulary the split/persistence logic reads.

    Memoised on the registry object, guarded by the registry's mutation
    revision - ``register(..., replace=True)`` changes a spec without
    changing the length, so counting entries would not be enough.
    Registries predating the revision counter degrade to recomputing.
    """
    revision = getattr(registry, "_revision", None)
    cached = registry.__dict__.get("_plan_fingerprint")
    if cached is not None and revision is not None and cached[0] == revision:
        return cached[1]
    fingerprint = _HashedKey(tuple(
        (spec.key, bool(spec.is_measurement), bool(spec.is_stimulus))
        for spec in registry
    ))
    if revision is not None:
        registry.__dict__["_plan_fingerprint"] = (revision, fingerprint)
    return fingerprint


# ---------------------------------------------------------------------------
# The plan itself
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlanEntry:
    """One pre-resolved action of the allocation sequence.

    ``kind`` says how the action resolves:

    ``"alloc"``
        a successful allocation - ``allocation`` carries the resource and
        routes, ``window`` the pre-evaluated capability window of the
        planned resource (``(capability, nominal, acceptance)`` as produced
        by :meth:`~repro.teststand.allocator.Allocator.capability_window`,
        or ``None`` when the call carries nothing to range-check).  The
        replay re-checks ``capability.can_serve`` against it per action;
        the endpoint evaluation itself happened at compile time, which is
        sound because the variables it depends on are part of the
        plan-cache key.
    ``"open"``
        a ``put_r r="INF"`` realised as an open circuit - ``outcome`` is
        the ready-made (immutable) PASS outcome, so the run skips the
        per-action limit evaluation entirely.
    ``"fail"``
        the search failed at compile time; the run takes the full search
        and reports the identical allocation ERROR.  The entry still
        occupies its slot so the cursor stays aligned with the run.
    """

    signal_key: str
    method_key: str
    kind: str = "alloc"
    allocation: Allocation | None = None
    window: tuple | None = None
    outcome: object | None = None


class ExecutionPlan:
    """The pre-resolved execution of one (script x stand x policy).

    ``entries`` is the allocation sequence the classic interpreter replays
    per action; ``program`` is the compiled VM instruction stream of the
    whole measurement loop (see :mod:`repro.teststand.vm`), or ``None``
    when the combination is not VM-expressible - ``vm_reason`` then names
    the failing op and why (surfaced by the ``X-UNCOMPILABLE-SCRIPT`` lint
    rule).  Both are compiled from the same inputs under the same cache
    key, so a plan hit serves allocation *and* the full fast path.
    """

    __slots__ = ("entries", "key", "program", "vm_reason")

    def __init__(self, entries: tuple[PlanEntry, ...], key: tuple = (), *,
                 program=None, vm_reason: str = ""):
        self.entries = tuple(entries)
        self.key = key
        self.program = program
        self.vm_reason = vm_reason

    def cursor(self) -> "PlanCursor":
        """A fresh replay cursor for one run."""
        return PlanCursor(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        vm = "vm" if self.program is not None else "no-vm"
        return f"ExecutionPlan(entries={len(self.entries)}, {vm})"


class PlanCursor:
    """Walks one plan along one run, detecting divergence.

    Every allocator visit of the run calls :meth:`take`; the cursor hands
    out the next planned entry when the visit matches it and degrades to
    full-search misses - for the rest of the run - as soon as the sequence
    diverges.  ``hits`` / ``misses`` feed the plan-cache statistics.
    """

    __slots__ = ("_entries", "_index", "_diverged", "hits", "misses")

    def __init__(self, entries: tuple[PlanEntry, ...]):
        self._entries = entries
        self._index = 0
        self._diverged = False
        self.hits = 0
        self.misses = 0

    def take(self, signal_key: str, method: str) -> PlanEntry | None:
        """Next planned entry for this visit, or ``None`` for the slow path."""
        if self._diverged or self._index >= len(self._entries):
            self.misses += 1
            return None
        entry = self._entries[self._index]
        if entry.signal_key != signal_key or entry.method_key != str(method).lower():
            # The run visits its actions in a different order than the
            # plan predicted - stop trusting the remaining entries.
            self._diverged = True
            self.misses += 1
            return None
        self._index += 1
        if entry.kind == "fail":
            self.misses += 1
            return None
        return entry

    def reject(self) -> None:
        """The taken entry could not be replayed: count the miss, diverge.

        A failed replay means the live allocator state differs from the
        compile-time simulation, so subsequent entries are unreliable too.
        """
        self._diverged = True
        self.misses += 1


def compile_plan(
    script: TestScript,
    signals: SignalSet,
    stand: TestStand,
    *,
    policy: str,
    registry: MethodRegistry,
    variables: Mapping[str, float],
    key: tuple = (),
) -> ExecutionPlan:
    """Resolve the whole allocation sequence of *script* on *stand* once.

    Runs the interpreter's exact allocator visit order against a scratch
    :class:`~repro.teststand.allocator.Allocator` (same policy, same
    registry, same variables) and records each resulting
    :class:`~repro.teststand.allocator.Allocation`.  Failed searches are
    recorded as unplannable slots; open-circuit realisations apply the same
    release they apply at run time so the simulated hold state stays in
    lock-step.

    The recorded entries then feed the VM compiler
    (:func:`repro.teststand.vm.compile_program`): when the whole
    measurement loop is expressible as a flat instruction stream, the plan
    carries the compiled ``program``; otherwise ``vm_reason`` records the
    failing op and every run of the combination takes the classic path.
    """
    allocator = Allocator(
        stand.resources, stand.connections, policy=policy, registry=registry
    )
    entries: list[PlanEntry] = []
    for action in allocation_sequence(script, registry):
        try:
            signal = signals.get(action.signal)
        except Exception:
            continue  # the run errors before reaching the allocator
        method_key = action.method.lower()
        if method_key == "wait":
            continue  # served by the interpreter without a resource
        if open_circuit_requested(action, signal, variables):
            allocator.release(signal.key)
            entries.append(PlanEntry(
                signal.key, method_key, kind="open",
                outcome=open_circuit_outcome(action, signal),
            ))
            continue
        try:
            allocation = allocator.allocate(signal, action.call, variables)
        except AllocationError:
            entries.append(PlanEntry(signal.key, method_key, kind="fail"))
            continue
        resource = stand.resources.get(allocation.resource)
        window = allocator.capability_window(resource, action.call, variables)
        entries.append(PlanEntry(
            signal.key, method_key, kind="alloc",
            allocation=allocation, window=window,
        ))

    program = None
    vm_reason = ""
    try:
        program = vm.compile_program(
            script, signals, stand,
            registry=registry, variables=variables,
            entries=entries, key=key,
        )
    except vm.VmCompileError as exc:
        vm_reason = f"{exc.op}: {exc.reason}"
    except Exception as exc:  # noqa: BLE001 - never fail the plan for the VM
        vm_reason = f"compiler error: {exc}"
    return ExecutionPlan(tuple(entries), key, program=program,
                         vm_reason=vm_reason)


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

class PlanCacheStats:
    """Counters describing how well the plan cache is working.

    ``plan_hits`` / ``plan_misses`` count run-level lookups (a miss
    compiles); ``action_replays`` / ``action_fallbacks`` count individual
    allocator visits served from a plan vs. falling back to full search.
    ``vm_runs`` / ``alloc_only_runs`` split the runs a plan served into
    full-VM executions and classic runs that replayed allocations only;
    ``vm_degraded`` counts runs whose program existed but failed the
    bind/prologue self-check and degraded to the classic path.
    """

    __slots__ = (
        "plans_compiled", "plan_hits", "plan_misses",
        "action_replays", "action_fallbacks",
        "vm_runs", "vm_degraded", "alloc_only_runs",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.plans_compiled = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.action_replays = 0
        self.action_fallbacks = 0
        self.vm_runs = 0
        self.vm_degraded = 0
        self.alloc_only_runs = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of allocator visits served by replay (1.0 when all)."""
        total = self.action_replays + self.action_fallbacks
        if total == 0:
            return 0.0
        return self.action_replays / total

    def merge(self, snapshot: Mapping[str, float]) -> None:
        """Fold another stats snapshot (e.g. a worker process's) into this.

        ``hit_rate`` is derived, so only the raw counters accumulate.
        """
        for name in self.__slots__:
            value = snapshot.get(name)
            if value is not None:
                setattr(self, name, getattr(self, name) + int(value))

    def snapshot(self) -> dict[str, float]:
        return {
            "plans_compiled": self.plans_compiled,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "action_replays": self.action_replays,
            "action_fallbacks": self.action_fallbacks,
            "vm_runs": self.vm_runs,
            "vm_degraded": self.vm_degraded,
            "alloc_only_runs": self.alloc_only_runs,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """Thread-safe LRU cache of compiled execution plans.

    Keys are content fingerprints of (script, resolved signals, stand
    topology, policy, variables, method registry) - see the module
    docstring for why identity would be wrong on both sides.  The cache is
    shared by every worker thread of a process (the async backend's
    interleaved jobs included); worker *processes* each hold their own.
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = max(1, int(maxsize))
        self._plans: OrderedDict[tuple, ExecutionPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        """Drop every cached plan and reset the statistics."""
        with self._lock:
            self._plans.clear()
            self.stats.reset()

    def note_run(self, hits: int, misses: int) -> None:
        """Fold one finished classic run's cursor counters into the stats."""
        with self._lock:
            self.stats.alloc_only_runs += 1
            self.stats.action_replays += int(hits)
            self.stats.action_fallbacks += int(misses)

    def note_vm_run(self) -> None:
        """Count one run executed end-to-end by the VM fast path."""
        with self._lock:
            self.stats.vm_runs += 1

    def note_vm_degrade(self) -> None:
        """Count one run whose program failed its self-check pre-flight."""
        with self._lock:
            self.stats.vm_degraded += 1

    def merge_stats(self, snapshot: Mapping[str, float]) -> None:
        """Fold a worker process's stats delta into this cache's counters."""
        with self._lock:
            self.stats.merge(snapshot)

    def plan_for(
        self,
        script: TestScript,
        signals: SignalSet,
        stand: TestStand,
        *,
        policy: str,
        registry: MethodRegistry,
        variables: Mapping[str, float],
    ) -> ExecutionPlan:
        """The cached plan for this combination, compiling it on first use.

        A compile failure of any kind caches an *empty* plan: every visit
        of such a run misses and takes the full search, which is exactly
        the pre-plan behaviour.
        """
        key = (
            script_fingerprint(script, signals),
            stand_fingerprint(stand),
            str(policy),
            tuple(sorted((str(k).lower(), float(v)) for k, v in variables.items())),
            registry_fingerprint(registry),
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.stats.plan_hits += 1
                return plan
            self.stats.plan_misses += 1

        # Compile outside the lock: a compile is a full allocation pass,
        # and holding the cache-wide lock for it would serialise every
        # other worker's lookups during campaign warm-up.  Two workers
        # racing on the same key compile identical plans (the inputs are
        # the key); the first insert wins, the loser's work is discarded.
        try:
            plan = compile_plan(
                script, signals, stand,
                policy=policy, registry=registry, variables=variables, key=key,
            )
            compiled = True
        except Exception:
            plan = ExecutionPlan((), key)
            compiled = False

        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                self._plans.move_to_end(key)
                return existing
            if compiled:
                self.stats.plans_compiled += 1
            self._plans[key] = plan
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
            return plan


#: Process-wide default cache used by the interpreter and executor backends.
GLOBAL_PLAN_CACHE = PlanCache()
