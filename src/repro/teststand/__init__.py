"""Test-stand side of the tool chain: resources, routing, allocation, execution.

Single runs go through :class:`TestStandInterpreter`; whole campaigns go
through the job-based engine in :mod:`repro.teststand.executor`, which fans
(scripts x stands x fault models) out over serial / thread / process /
async backends and aggregates deterministically.  The async backend drives
many latency-simulated stands from one worker by awaiting instrument I/O
(:meth:`TestStandInterpreter.arun` / :func:`aexecute_job`).

Execution is compile-once-run-many: :mod:`repro.teststand.plan` caches the
pre-resolved allocation sequence per (script x stand-topology x policy x
variables) in :data:`GLOBAL_PLAN_CACHE` - and, since the plan carries a
compiled :class:`~repro.teststand.vm.VmProgram`, the whole measurement
loop executes as a flat bytecode stream (:mod:`repro.teststand.vm`) -
workers reuse pooled stands between jobs, and the process backend
dispatches jobs in chunks - all verdict-neutral fast paths (see
``docs/performance.md`` and ``docs/execution-vm.md``).
"""

from .allocator import ALLOCATION_POLICIES, Allocation, Allocator
from .connection import (
    ConnectionMatrix,
    Connector,
    DirectWire,
    MuxChannel,
    Route,
    Switch,
)
from .executor import (
    DEFAULT_ASYNC_CONCURRENCY,
    EXECUTION_BACKENDS,
    AsyncExecutor,
    ExecutionReport,
    Executor,
    Job,
    JobResult,
    ProcessExecutor,
    ResiliencePolicy,
    SerialExecutor,
    ThreadExecutor,
    aexecute_job,
    execute_job,
    expand_jobs,
    make_executor,
    run_across_stands,
    run_jobs,
)
from .interpreter import TestStandInterpreter, run_script
from .plan import (
    GLOBAL_PLAN_CACHE,
    ExecutionPlan,
    PlanCache,
    PlanCacheStats,
    compile_plan,
)
from .profiling import PROFILER, PhaseProfiler
from .vm import VmCompileError, VmCursor, VmProgram, compile_program
from .report import campaign_summary, format_table, json_report, summary_line, text_report
from .resources import Resource, ResourceTable
from .serialize import (
    REPORT_SCHEMA,
    report_from_dict,
    report_to_dict,
    result_from_dict,
    result_to_dict,
    script_from_dict,
    script_to_dict,
)
from .stands import (
    PAPER_PINS,
    TestStand,
    build_big_rack,
    build_minimal_bench,
    build_paper_stand,
    full_crossbar,
)
from .verdict import ActionResult, StepResult, TestResult, Verdict

__all__ = [
    "Resource",
    "ResourceTable",
    "Connector",
    "Switch",
    "MuxChannel",
    "DirectWire",
    "Route",
    "ConnectionMatrix",
    "Allocation",
    "Allocator",
    "ALLOCATION_POLICIES",
    "TestStand",
    "build_paper_stand",
    "build_big_rack",
    "build_minimal_bench",
    "full_crossbar",
    "PAPER_PINS",
    "TestStandInterpreter",
    "run_script",
    "ExecutionPlan",
    "PlanCache",
    "PlanCacheStats",
    "GLOBAL_PLAN_CACHE",
    "compile_plan",
    "VmProgram",
    "VmCursor",
    "VmCompileError",
    "compile_program",
    "PROFILER",
    "PhaseProfiler",
    "EXECUTION_BACKENDS",
    "DEFAULT_ASYNC_CONCURRENCY",
    "Job",
    "JobResult",
    "ResiliencePolicy",
    "ExecutionReport",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "AsyncExecutor",
    "make_executor",
    "execute_job",
    "aexecute_job",
    "expand_jobs",
    "run_jobs",
    "run_across_stands",
    "Verdict",
    "ActionResult",
    "StepResult",
    "TestResult",
    "format_table",
    "text_report",
    "json_report",
    "summary_line",
    "campaign_summary",
    "REPORT_SCHEMA",
    "report_to_dict",
    "report_from_dict",
    "result_to_dict",
    "result_from_dict",
    "script_to_dict",
    "script_from_dict",
]
