"""Dict round-trip serialization of execution reports.

An :class:`~repro.teststand.executor.ExecutionReport` dies with the process
unless it can leave it - the persistent result store (:mod:`repro.store`),
the campaign service API (:mod:`repro.service`) and ``repro-campaign
--format json`` all need the same durable representation.  This module is
that representation: plain dicts of JSON-safe values, built in a **stable
key order** (the order documented in ``docs/result-store.md``) and stamped
with a ``schema`` version so stored documents stay readable across
releases.

The contract is *byte-identical rendering*: for any report ``r``,

    ExecutionReport.from_dict(r.to_dict()).verdict_table() ==
        r.verdict_table()

and ``to_dict`` is idempotent across the round trip
(``from_dict(d).to_dict() == d``).  Scripts are deduplicated by content -
campaign expansion shares one script across many jobs, and the dict (like
the SQL store built on it) keeps a single copy per distinct script.

Two things are deliberately **not** round-tripped, because rendering does
not need them and re-execution is out of scope for a restored report:

* job *factories* (stand / harness / ECU) - restored jobs carry
  placeholder factories that raise :class:`~repro.core.errors.ReproError`
  when called;
* allocation *routes* - only the serving resource name (what reports
  show) survives; the pin-level route detail does not.
"""

from __future__ import annotations

import json
from typing import Mapping

from ..core.errors import ReproError
from ..core.script import MethodCall, ScriptStep, SignalAction, TestScript
from ..core.signals import SignalSet
from ..core.values import Interval
from ..methods import MethodOutcome
from .allocator import Allocation
from .verdict import ActionResult, StepResult, TestResult, Verdict

__all__ = [
    "REPORT_SCHEMA",
    "script_to_dict",
    "script_from_dict",
    "result_to_dict",
    "result_from_dict",
    "report_to_dict",
    "report_from_dict",
]

#: Version of the report dict schema.  Bump on any key change and keep
#: :func:`report_from_dict` accepting every version ever written.
REPORT_SCHEMA = 1


# ---------------------------------------------------------------------------
# Scripts
# ---------------------------------------------------------------------------

def _action_to_dict(action: SignalAction) -> dict:
    return {
        "signal": action.signal,
        "method": action.call.method,
        "params": dict(action.call.params),
    }


def _action_from_dict(data: Mapping) -> SignalAction:
    return SignalAction(
        signal=data["signal"],
        call=MethodCall(method=data["method"], params=dict(data["params"])),
    )


def script_to_dict(script: TestScript) -> dict:
    """JSON-safe dict of one compiled test script (full content)."""
    return {
        "name": script.name,
        "dut": script.dut,
        "description": script.description,
        "setup": [_action_to_dict(action) for action in script.setup],
        "steps": [
            {
                "number": step.number,
                "duration": step.duration,
                "remark": step.remark,
                "requirement": step.requirement,
                "actions": [_action_to_dict(action) for action in step.actions],
            }
            for step in script.steps
        ],
        "variables": list(script.variables),
        "metadata": dict(script.metadata),
    }


def script_from_dict(data: Mapping) -> TestScript:
    """Rebuild a :class:`TestScript` from :func:`script_to_dict` output."""
    return TestScript(
        name=data["name"],
        dut=data["dut"],
        steps=[
            ScriptStep(
                number=step["number"],
                duration=step["duration"],
                actions=tuple(
                    _action_from_dict(action) for action in step["actions"]
                ),
                remark=step.get("remark", ""),
                requirement=step.get("requirement"),
            )
            for step in data["steps"]
        ],
        setup=tuple(_action_from_dict(action) for action in data["setup"]),
        variables=tuple(data.get("variables", ())),
        metadata=dict(data.get("metadata", {})),
        description=data.get("description", ""),
    )


def script_key(script: TestScript) -> str:
    """Content key of a script: scripts with equal keys render identically.

    The key is the canonical JSON of :func:`script_to_dict` - the same
    content fingerprint the result store uses to deduplicate the
    ``scripts`` table across runs.
    """
    return json.dumps(script_to_dict(script), sort_keys=True,
                      separators=(",", ":"))


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

def _outcome_to_dict(outcome: MethodOutcome | None) -> dict | None:
    if outcome is None:
        return None
    return {
        "method": outcome.method,
        "passed": outcome.passed,
        "observed": outcome.observed,
        "limits": (
            [outcome.limits.low, outcome.limits.high]
            if outcome.limits is not None else None
        ),
        "unit": outcome.unit,
        "detail": outcome.detail,
    }


def _outcome_from_dict(data: Mapping | None) -> MethodOutcome | None:
    if data is None:
        return None
    limits = data.get("limits")
    return MethodOutcome(
        method=data["method"],
        passed=data["passed"],
        observed=data.get("observed"),
        limits=Interval(limits[0], limits[1]) if limits is not None else None,
        unit=data.get("unit", ""),
        detail=data.get("detail", ""),
    )


def _action_result_to_dict(result: ActionResult) -> dict:
    return {
        "action": _action_to_dict(result.action),
        "verdict": result.verdict.value,
        "outcome": _outcome_to_dict(result.outcome),
        # Routes are not persisted: reports only ever show the resource.
        "resource": result.allocation.resource if result.allocation else None,
        "persistent": (
            result.allocation.persistent if result.allocation else False
        ),
        "error": result.error,
    }


def _action_result_from_dict(data: Mapping) -> ActionResult:
    action = _action_from_dict(data["action"])
    resource = data.get("resource")
    allocation = None
    if resource is not None:
        allocation = Allocation(
            signal=action.signal,
            method=action.method,
            resource=resource,
            routes=(),
            persistent=bool(data.get("persistent", False)),
        )
    return ActionResult(
        action=action,
        verdict=Verdict(data["verdict"]),
        outcome=_outcome_from_dict(data.get("outcome")),
        allocation=allocation,
        error=data.get("error", ""),
    )


def _step_result_to_dict(step: StepResult) -> dict:
    return {
        "number": step.number,
        "duration": step.duration,
        "start_time": step.start_time,
        "remark": step.remark,
        "actions": [_action_result_to_dict(action) for action in step.actions],
    }


def _step_result_from_dict(data: Mapping) -> StepResult:
    return StepResult(
        number=data["number"],
        duration=data["duration"],
        actions=tuple(
            _action_result_from_dict(action) for action in data["actions"]
        ),
        remark=data.get("remark", ""),
        start_time=data.get("start_time", 0.0),
    )


def result_to_dict(result: TestResult) -> dict:
    """JSON-safe dict of one test result, **without** its script.

    The script travels separately (deduplicated) in the report document;
    :func:`result_from_dict` reunites the two.
    """
    return {
        "stand": result.stand,
        "duration": result.duration,
        "wall_time": result.wall_time,
        "setup": [_action_result_to_dict(action) for action in result.setup],
        "steps": [_step_result_to_dict(step) for step in result.steps],
    }


def result_from_dict(data: Mapping, script: TestScript) -> TestResult:
    """Rebuild a :class:`TestResult` around its (separately stored) script."""
    return TestResult(
        script,
        data["stand"],
        setup=tuple(
            _action_result_from_dict(action) for action in data["setup"]
        ),
        steps=tuple(_step_result_from_dict(step) for step in data["steps"]),
        duration=data["duration"],
        wall_time=data["wall_time"],
    )


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

def restored_factory(*_args, **_kwargs):
    """Placeholder factory carried by jobs of a restored report.

    A report read back from a dict (or from the result store) is a durable
    *record* of an execution, not a re-executable campaign: the original
    stand / harness / ECU factories cannot be serialised.  Calling this
    placeholder therefore fails loudly instead of silently running the
    wrong thing.
    """
    raise ReproError(
        "this job was restored from a serialized report and cannot be "
        "re-executed; build a fresh campaign through repro.targets instead"
    )


def report_to_dict(report) -> dict:
    """The durable dict representation of an :class:`ExecutionReport`.

    Key order is part of the schema (stable across processes and releases
    within one ``schema`` version): ``schema``, ``kind``, ``backend``,
    ``workers``, ``wall_time``, ``scripts``, ``jobs``.  Scripts are listed
    once each in first-use order; jobs reference them by list index.
    """
    scripts: list[dict] = []
    index_by_key: dict[str, int] = {}
    jobs: list[dict] = []
    for job_result in report.results:
        job = job_result.job
        key = script_key(job.script)
        script_index = index_by_key.get(key)
        if script_index is None:
            script_index = index_by_key[key] = len(scripts)
            scripts.append(script_to_dict(job.script))
        jobs.append({
            "index": job.index,
            "script": script_index,
            "group": job.group,
            "stand_label": job.stand_label,
            "policy": job.policy,
            "stop_on_error": job.stop_on_error,
            "use_plans": job.use_plans,
            "reuse_stands": job.reuse_stands,
            "attempts": job_result.attempts,
            "error": job_result.error,
            "wall_time": job_result.wall_time,
            "result": (
                result_to_dict(job_result.result)
                if job_result.result is not None else None
            ),
        })
    return {
        "schema": REPORT_SCHEMA,
        "kind": "execution-report",
        "backend": report.backend,
        "workers": report.workers,
        "wall_time": report.wall_time,
        "scripts": scripts,
        "jobs": jobs,
    }


def report_from_dict(data: Mapping):
    """Rebuild an :class:`ExecutionReport` from :func:`report_to_dict` output.

    The restored report renders byte-identically (``verdict_table()``,
    ``summary()``, ``by_group()`` ...) but its jobs carry
    :func:`restored_factory` placeholders and an empty signal set - it is a
    record, not a runnable batch.
    """
    from .executor import ExecutionReport, Job, JobResult

    schema = data.get("schema")
    if schema != REPORT_SCHEMA:
        raise ReproError(
            f"unsupported report schema {schema!r} "
            f"(this release reads schema {REPORT_SCHEMA})"
        )
    kind = data.get("kind")
    if kind != "execution-report":
        raise ReproError(f"not an execution report document (kind={kind!r})")
    scripts = [script_from_dict(entry) for entry in data["scripts"]]
    results: list[JobResult] = []
    for entry in data["jobs"]:
        script = scripts[entry["script"]]
        job = Job(
            index=entry["index"],
            script=script,
            signals=SignalSet(dut=script.dut),
            stand_factory=restored_factory,
            harness_factory=restored_factory,
            ecu_factory=restored_factory,
            policy=entry.get("policy", "first_fit"),
            stop_on_error=entry.get("stop_on_error", False),
            group=entry["group"],
            stand_label=entry.get("stand_label", ""),
            use_plans=entry.get("use_plans", True),
            reuse_stands=entry.get("reuse_stands", True),
        )
        result_data = entry.get("result")
        results.append(JobResult(
            job=job,
            result=(
                result_from_dict(result_data, script)
                if result_data is not None else None
            ),
            attempts=entry.get("attempts", 1),
            error=entry.get("error", ""),
            wall_time=entry.get("wall_time", 0.0),
        ))
    return ExecutionReport(
        results,
        backend=data["backend"],
        workers=data["workers"],
        wall_time=data["wall_time"],
    )
