"""Resource allocation: finding an instrument and a route for every method call.

This is the heart of the test-stand interpreter the paper describes: *"For
each method to be carried out, the test stand searches an appropriate
resource, that can be connected to the signal pin.  If this is not possible
an error message is generated."*

Allocation has to respect three constraints:

1. **Capability** - the resource must support the method and the requested
   value / acceptance window must fit its valid range (T3 in the paper).
2. **Routing** - every pin of the signal must be reachable from a distinct
   terminal of the *same* resource through the connection matrix (T4).
3. **Exclusivity** - stimuli persist between steps (a resistor decade keeps
   emulating the door contact until the status changes), so a terminal held
   for one signal cannot simultaneously serve another, and channels of the
   same multiplexer group are mutually exclusive.

Three allocation policies are provided; comparing them is the A1 ablation
benchmark:

``first_fit``
    take the first suitable resource in table order (what a simple
    interpreter would do),
``best_fit``
    prefer the suitable resource with the *smallest* capability span, keeping
    wide-range instruments free for demanding later requests,
``least_used``
    prefer the resource with the fewest allocations so far (load balancing,
    relevant for parallelised stands).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.errors import AllocationError, CapabilityError, RoutingError
from ..core.script import MethodCall
from ..core.signals import Signal
from ..core.values import Interval
from ..methods import MethodRegistry, default_registry, evaluate_call_parameter, limits_for_call
from .connection import ConnectionMatrix, MuxChannel, Route
from .resources import Resource, ResourceTable

__all__ = ["Allocation", "Allocator", "ALLOCATION_POLICIES"]

#: Names of the supported allocation policies.
ALLOCATION_POLICIES = ("first_fit", "best_fit", "least_used")

#: Sentinel: :meth:`Allocator.replay` should evaluate the window itself.
_WINDOW_UNSET = object()


@dataclass(frozen=True)
class Allocation:
    """Result of one successful allocation."""

    signal: str
    method: str
    resource: str
    routes: tuple[Route, ...] = ()
    persistent: bool = False

    @property
    def pins(self) -> tuple[str, ...]:
        """Pins the resource has been routed to, in terminal order."""
        return tuple(route.pin for route in self.routes)

    def __str__(self) -> str:
        where = ", ".join(str(route) for route in self.routes) or "<bus>"
        return f"{self.signal}/{self.method} -> {self.resource} ({where})"


class Allocator:
    """Searches (resource, route) pairs for method calls and tracks holds."""

    def __init__(
        self,
        resources: ResourceTable,
        connections: ConnectionMatrix,
        *,
        policy: str = "first_fit",
        registry: MethodRegistry | None = None,
    ):
        if policy not in ALLOCATION_POLICIES:
            raise AllocationError(
                f"unknown allocation policy {policy!r}; choose one of {ALLOCATION_POLICIES}"
            )
        self.resources = resources
        self.connections = connections
        self.policy = policy
        self.registry = registry or default_registry()
        # (resource key, terminal) -> signal key currently holding it.
        self._held_terminals: dict[tuple[str, str], str] = {}
        # mux group -> (channel label, signal key) currently selected.
        self._mux_selection: dict[str, tuple[str, str]] = {}
        # statistics
        self._allocation_counts: dict[str, int] = {}
        self.attempts = 0
        self.failures = 0

    # -- public API -----------------------------------------------------------------

    def allocate(
        self,
        signal: Signal,
        call: MethodCall,
        variables: Mapping[str, float] | None = None,
    ) -> Allocation:
        """Find a resource and routing for *call* on *signal* or raise.

        Raises :class:`CapabilityError` when no resource supports the request
        at all and :class:`RoutingError` when capable resources exist but
        none can be connected to the signal's pins right now.
        """
        self.attempts += 1
        variables = dict(variables or {})
        persistent = self._is_persistent(call.method)

        candidates = [
            resource
            for resource in self.resources.supporting(call.method)
            if self._capability_fits(resource, call, variables)
        ]
        if not candidates:
            self.failures += 1
            supported = self.resources.supporting(call.method)
            if supported:
                raise CapabilityError(
                    "no resource can serve the requested parameter range",
                    signal=signal.name,
                    method=call.method,
                )
            raise CapabilityError(
                "no resource of this test stand supports the method",
                signal=signal.name,
                method=call.method,
            )

        candidates = self._order_candidates(candidates, call)

        routing_failures: list[str] = []
        for resource in candidates:
            if signal.is_bus:
                if not resource.is_bus_interface:
                    routing_failures.append(f"{resource.name}: not a bus interface")
                    continue
                return self._commit(signal, call, resource, (), persistent)
            routes = self._find_routes(signal, resource)
            if routes is None:
                routing_failures.append(f"{resource.name}: no free route to {signal.pins}")
                continue
            return self._commit(signal, call, resource, routes, persistent)

        self.failures += 1
        raise RoutingError(
            "no suitable resource can be connected to the signal pins "
            f"({'; '.join(routing_failures)})",
            signal=signal.name,
            method=call.method,
        )

    def replay(
        self,
        signal: Signal,
        call: MethodCall,
        planned: Allocation,
        variables: Mapping[str, float] | None = None,
        *,
        window: tuple | None | object = _WINDOW_UNSET,
    ) -> Allocation | None:
        """Re-commit a pre-resolved allocation if it still fits, else ``None``.

        This is the execution-plan fast path: the expensive parts of
        :meth:`allocate` - filtering every resource's capabilities and
        searching the connection matrix for free routes - were done once at
        plan-compile time; here only the *variable-dependent* capability
        window and the availability of the exact planned routes are
        re-checked.  Any mismatch (the window moved, a terminal or mux
        channel is held for another signal, the signal's pins changed)
        returns ``None`` and the caller falls back to the full search, so a
        replayed run can never produce a different allocation than a fresh
        one.

        *window* is the pre-evaluated :meth:`capability_window` the plan
        stored for this entry (``None`` = nothing to range-check); when not
        given it is evaluated from *variables* here.
        """
        try:
            resource = self.resources.get(planned.resource)
        except AllocationError:
            return None
        # The cheap variable-dependent re-check: does the requested nominal /
        # acceptance window still fit this resource's capability range?
        if window is _WINDOW_UNSET:
            if not self._capability_fits(resource, call, dict(variables or {})):
                return None
        elif window is not None:
            capability, nominal, acceptance = window
            if not capability.can_serve(nominal, acceptance):
                return None
        if signal.is_bus:
            if not resource.is_bus_interface or planned.routes:
                return None
        else:
            planned_pins = tuple(route.pin.lower() for route in planned.routes)
            if planned_pins != tuple(pin.lower() for pin in signal.pins):
                return None
            signal_key = signal.key
            for route in planned.routes:
                holder = self._held_terminals.get((resource.key, route.terminal))
                if holder is not None and holder != signal_key:
                    return None
                if isinstance(route.connector, MuxChannel):
                    selection = self._mux_selection.get(route.connector.mux)
                    if selection is not None and selection != (
                        route.connector.label, signal_key,
                    ):
                        return None
        self.attempts += 1
        self._register(signal.key, resource, planned.routes, planned.persistent)
        return planned

    def release(self, signal: str) -> None:
        """Release every terminal and mux selection held for *signal*."""
        key = str(signal).lower()
        self._held_terminals = {
            slot: holder for slot, holder in self._held_terminals.items() if holder != key
        }
        self._mux_selection = {
            mux: selection
            for mux, selection in self._mux_selection.items()
            if selection[1] != key
        }

    def release_all(self) -> None:
        """Release every hold (end of a test run)."""
        self._held_terminals.clear()
        self._mux_selection.clear()

    @property
    def held_terminals(self) -> dict[tuple[str, str], str]:
        """Snapshot of the currently held (resource, terminal) -> signal map."""
        return dict(self._held_terminals)

    @property
    def allocation_counts(self) -> dict[str, int]:
        """Number of successful allocations per resource."""
        return dict(self._allocation_counts)

    # -- internals ---------------------------------------------------------------------

    def _is_persistent(self, method: str) -> bool:
        if method in self.registry:
            return self.registry.get(method).is_stimulus
        return str(method).lower().startswith("put")

    def capability_window(
        self, resource: Resource, call: MethodCall, variables: Mapping[str, float]
    ) -> tuple | None:
        """The evaluated range-check inputs of *call* against *resource*.

        Returns ``(capability, nominal, acceptance)`` - the resource's
        capability row plus the call's evaluated nominal value and
        acceptance interval - or ``None`` when there is nothing to
        range-check (e.g. ``put_can`` payloads: supporting the method is
        enough).  This is the *variable-dependent* half of a capability
        check; execution plans store it per entry so replays only pay the
        float comparisons of :meth:`Capability.can_serve`.
        """
        capability = resource.capability_for(call.method)
        attribute = capability.attribute
        nominal = None
        try:
            nominal = evaluate_call_parameter(call, attribute, variables)
        except Exception:
            nominal = None
        acceptance: Interval | None
        try:
            acceptance = limits_for_call(call, attribute, variables)
            if math.isinf(acceptance.low) and math.isinf(acceptance.high):
                acceptance = None
        except Exception:
            acceptance = None
        if nominal is None and acceptance is None:
            return None
        return (capability, nominal, acceptance)

    def _capability_fits(
        self, resource: Resource, call: MethodCall, variables: Mapping[str, float]
    ) -> bool:
        window = self.capability_window(resource, call, variables)
        if window is None:
            return True
        capability, nominal, acceptance = window
        return capability.can_serve(nominal, acceptance)

    def _order_candidates(
        self, candidates: list[Resource], call: MethodCall
    ) -> list[Resource]:
        if self.policy == "best_fit":
            return sorted(
                candidates, key=lambda resource: resource.capability_for(call.method).span
            )
        if self.policy == "least_used":
            return sorted(
                candidates,
                key=lambda resource: self._allocation_counts.get(resource.key, 0),
            )
        return candidates

    def _find_routes(self, signal: Signal, resource: Resource) -> tuple[Route, ...] | None:
        """Map every pin of the signal to a distinct free terminal of *resource*."""
        chosen: list[Route] = []
        used_terminals: set[str] = set()
        signal_key = signal.key
        for pin in signal.pins:
            route = self._route_for_pin(resource, pin, signal_key, used_terminals)
            if route is None:
                return None
            chosen.append(route)
            used_terminals.add(route.terminal)
        return tuple(chosen)

    def _route_for_pin(
        self,
        resource: Resource,
        pin: str,
        signal_key: str,
        used_terminals: set[str],
    ) -> Route | None:
        for terminal in resource.terminals:
            if terminal in used_terminals:
                continue
            route = self.connections.route_between(resource.name, terminal, pin)
            if route is None:
                continue
            holder = self._held_terminals.get((resource.key, terminal))
            if holder is not None and holder != signal_key:
                continue
            if isinstance(route.connector, MuxChannel):
                selection = self._mux_selection.get(route.connector.mux)
                if selection is not None and selection != (route.connector.label, signal_key):
                    continue
            return route
        return None

    def register_planned(
        self,
        signal_key: str,
        resource_key: str,
        routes: tuple[Route, ...],
        persistent: bool,
    ) -> None:
        """Book one pre-validated planned allocation without any search.

        The VM fast path (:mod:`repro.teststand.vm`) validates a whole
        run's allocations up front and then executes the compiled stream;
        this keeps the allocator's hold/statistics bookkeeping in
        lock-step per instruction - the same state transitions
        :meth:`replay` applies, minus the per-action re-checks the run
        prologue already performed.
        """
        self.attempts += 1
        if persistent:
            for route in routes:
                self._held_terminals[(resource_key, route.terminal)] = signal_key
                if isinstance(route.connector, MuxChannel):
                    self._mux_selection[route.connector.mux] = (
                        route.connector.label,
                        signal_key,
                    )
        self._allocation_counts[resource_key] = (
            self._allocation_counts.get(resource_key, 0) + 1
        )

    def _register(
        self,
        signal_key: str,
        resource: Resource,
        routes: tuple[Route, ...],
        persistent: bool,
    ) -> None:
        """Book the holds and statistics of one successful allocation."""
        if persistent:
            for route in routes:
                self._held_terminals[(resource.key, route.terminal)] = signal_key
                if isinstance(route.connector, MuxChannel):
                    self._mux_selection[route.connector.mux] = (
                        route.connector.label,
                        signal_key,
                    )
        self._allocation_counts[resource.key] = self._allocation_counts.get(resource.key, 0) + 1

    def _commit(
        self,
        signal: Signal,
        call: MethodCall,
        resource: Resource,
        routes: tuple[Route, ...],
        persistent: bool,
    ) -> Allocation:
        self._register(signal.key, resource, routes, persistent)
        return Allocation(
            signal=signal.name,
            method=call.method,
            resource=resource.name,
            routes=routes,
            persistent=persistent,
        )
