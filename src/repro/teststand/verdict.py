"""Verdicts and results of test execution."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..core.script import SignalAction, TestScript
from ..methods import MethodOutcome
from .allocator import Allocation

__all__ = ["Verdict", "ActionResult", "StepResult", "TestResult"]


class Verdict(enum.Enum):
    """Outcome classification of an action, a step or a whole test."""

    PASS = "pass"
    FAIL = "fail"
    ERROR = "error"      #: could not be executed (allocation / instrument error)
    SKIPPED = "skipped"

    @property
    def ok(self) -> bool:
        return self is Verdict.PASS

    def __str__(self) -> str:
        return self.value.upper()

    @staticmethod
    def combine(verdicts: Iterable["Verdict"]) -> "Verdict":
        """Worst-of combination: ERROR > FAIL > PASS; empty input passes."""
        worst = Verdict.PASS
        for verdict in verdicts:
            if verdict is Verdict.ERROR:
                return Verdict.ERROR
            if verdict is Verdict.FAIL:
                worst = Verdict.FAIL
            elif verdict is Verdict.SKIPPED and worst is Verdict.PASS:
                worst = Verdict.PASS
        return worst


@dataclass(frozen=True)
class ActionResult:
    """Result of one signal action (one method call) of a step."""

    action: SignalAction
    verdict: Verdict
    outcome: MethodOutcome | None = None
    allocation: Allocation | None = None
    error: str = ""

    @property
    def signal(self) -> str:
        return self.action.signal

    @property
    def method(self) -> str:
        return self.action.method

    @property
    def resource(self) -> str:
        return self.allocation.resource if self.allocation else ""

    def describe(self) -> str:
        """One-line description for reports."""
        parts = [f"{self.signal}:{self.method}", str(self.verdict)]
        if self.resource:
            parts.append(f"via {self.resource}")
        if self.outcome is not None and self.outcome.observed is not None:
            parts.append(f"observed={self.outcome.observed:g}{self.outcome.unit}")
        if self.outcome is not None and self.outcome.limits is not None:
            parts.append(f"limits={self.outcome.limits}")
        if self.error:
            parts.append(self.error)
        return " ".join(parts)


@dataclass(frozen=True)
class StepResult:
    """Result of one script step."""

    number: int
    duration: float
    actions: tuple[ActionResult, ...] = ()
    remark: str = ""
    start_time: float = 0.0

    @property
    def verdict(self) -> Verdict:
        return Verdict.combine(result.verdict for result in self.actions)

    @property
    def passed(self) -> bool:
        return self.verdict.ok

    def failures(self) -> tuple[ActionResult, ...]:
        """All actions that did not pass."""
        return tuple(result for result in self.actions if not result.verdict.ok)

    def __iter__(self) -> Iterator[ActionResult]:
        return iter(self.actions)


class TestResult:
    """Result of executing one test script on one test stand."""

    def __init__(
        self,
        script: TestScript,
        stand: str,
        *,
        setup: tuple[ActionResult, ...] = (),
        steps: Iterable[StepResult] = (),
        duration: float = 0.0,
        wall_time: float = 0.0,
    ):
        self.script = script
        self.stand = stand
        self.setup = tuple(setup)
        self.steps = tuple(steps)
        #: Simulated seconds the DUT experienced (harness clock delta).
        self.duration = float(duration)
        #: Real seconds the interpreter needed to execute the run.
        self.wall_time = float(wall_time)

    @property
    def verdict(self) -> Verdict:
        verdicts = [result.verdict for result in self.setup]
        verdicts.extend(step.verdict for step in self.steps)
        return Verdict.combine(verdicts)

    @property
    def passed(self) -> bool:
        return self.verdict.ok

    @property
    def action_results(self) -> tuple[ActionResult, ...]:
        """All action results (setup + steps), flattened."""
        flattened: list[ActionResult] = list(self.setup)
        for step in self.steps:
            flattened.extend(step.actions)
        return tuple(flattened)

    def counts(self) -> dict[str, int]:
        """Counts of action verdicts (pass / fail / error / skipped)."""
        tally = {verdict.value: 0 for verdict in Verdict}
        for result in self.action_results:
            tally[result.verdict.value] += 1
        return tally

    def failed_steps(self) -> tuple[StepResult, ...]:
        """All steps whose verdict is not PASS."""
        return tuple(step for step in self.steps if not step.verdict.ok)

    def resources_used(self) -> tuple[str, ...]:
        """All resource names that served at least one action."""
        seen: dict[str, None] = {}
        for result in self.action_results:
            if result.resource:
                seen.setdefault(result.resource, None)
        return tuple(seen)

    def __repr__(self) -> str:
        return (
            f"TestResult(script={self.script.name!r}, stand={self.stand!r}, "
            f"verdict={self.verdict}, steps={len(self.steps)})"
        )
