"""Connection matrix: how resources can be routed to DUT pins.

The second table the paper's test stand needs about itself describes *"in
which way these resources can be connected to the DUT"*: each entry names
the switching element (a simple switch ``Sw1.1`` or a multiplexer channel
``Mx1.2``) that, when closed, connects one resource terminal to one DUT pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..core.errors import RoutingError

__all__ = ["Connector", "Switch", "MuxChannel", "DirectWire", "Route", "ConnectionMatrix"]


@dataclass(frozen=True)
class Connector:
    """A switching element that can connect a resource terminal to a pin."""

    label: str

    def __post_init__(self) -> None:
        if not str(self.label).strip():
            raise RoutingError("connector needs a label")

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class Switch(Connector):
    """An independently closable switch (the paper's ``Sw1.1`` / ``Sw1.2``)."""


@dataclass(frozen=True)
class MuxChannel(Connector):
    """One channel of a multiplexer (the paper's ``Mx1.1`` ... ``Mx4.2``).

    Channels of the same multiplexer group are mutually exclusive: closing
    one opens the others.  The group is identified by :attr:`mux`.
    """

    mux: str = ""
    channel: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not str(self.mux).strip():
            raise RoutingError(f"mux channel {self.label!r} needs a mux group name")


@dataclass(frozen=True)
class DirectWire(Connector):
    """A permanent wire (no switching element) between resource and pin."""


@dataclass(frozen=True)
class Route:
    """One possible connection: resource terminal -> DUT pin via a connector."""

    resource: str
    terminal: str
    pin: str
    connector: Connector

    def __post_init__(self) -> None:
        for field_name in ("resource", "terminal", "pin"):
            if not str(getattr(self, field_name)).strip():
                raise RoutingError(f"route needs a {field_name}")

    @property
    def resource_key(self) -> str:
        return self.resource.lower()

    @property
    def pin_key(self) -> str:
        return self.pin.lower()

    def __str__(self) -> str:
        return f"{self.resource}.{self.terminal} --{self.connector}--> {self.pin}"


class ConnectionMatrix:
    """All routes of a test stand, with the paper's tabular rendering."""

    def __init__(self, routes: Iterable[Route] = ()):
        self._routes: list[Route] = []
        for route in routes:
            self.add(route)

    def add(self, route: Route) -> None:
        for existing in self._routes:
            if (
                existing.resource_key == route.resource_key
                and existing.terminal == route.terminal
                and existing.pin_key == route.pin_key
            ):
                raise RoutingError(
                    f"duplicate route {route.resource}.{route.terminal} -> {route.pin}"
                )
        self._routes.append(route)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes)

    def __len__(self) -> int:
        return len(self._routes)

    # -- queries --------------------------------------------------------------

    def routes_for_pin(self, pin: str) -> tuple[Route, ...]:
        """All routes that can reach *pin*."""
        wanted = str(pin).lower()
        return tuple(route for route in self._routes if route.pin_key == wanted)

    def routes_for_resource(self, resource: str) -> tuple[Route, ...]:
        """All routes available to *resource*."""
        wanted = str(resource).lower()
        return tuple(route for route in self._routes if route.resource_key == wanted)

    def route_between(self, resource: str, terminal: str, pin: str) -> Route | None:
        """The route connecting a specific terminal to a specific pin, if any."""
        for route in self._routes:
            if (
                route.resource_key == str(resource).lower()
                and route.terminal == terminal
                and route.pin_key == str(pin).lower()
            ):
                return route
        return None

    @property
    def pins(self) -> tuple[str, ...]:
        """All DUT pins reachable by any resource, in first-seen order."""
        seen: dict[str, None] = {}
        for route in self._routes:
            seen.setdefault(route.pin, None)
        return tuple(seen)

    @property
    def resources(self) -> tuple[str, ...]:
        """All resource names appearing in the matrix, in first-seen order."""
        seen: dict[str, None] = {}
        for route in self._routes:
            seen.setdefault(route.resource, None)
        return tuple(seen)

    # -- rendering --------------------------------------------------------------

    def matrix_rows(self, pins: Sequence[str] | None = None) -> list[tuple[str, ...]]:
        """The paper's connection-matrix table.

        One row per resource, one column per pin; each cell names the
        connector (or stays empty when the resource cannot reach the pin).
        """
        pin_order = list(pins) if pins is not None else list(self.pins)
        rows: list[tuple[str, ...]] = []
        for resource in self.resources:
            cells = [resource]
            for pin in pin_order:
                route = None
                for candidate in self.routes_for_resource(resource):
                    if candidate.pin_key == str(pin).lower():
                        route = candidate
                        break
                cells.append(route.connector.label if route else "")
            rows.append(tuple(cells))
        return rows

    def header(self, pins: Sequence[str] | None = None) -> tuple[str, ...]:
        """Column headers matching :meth:`matrix_rows`."""
        pin_order = list(pins) if pins is not None else list(self.pins)
        return ("", *pin_order)

    def __repr__(self) -> str:
        return f"ConnectionMatrix(routes={len(self._routes)})"
