"""Concrete (virtual) test stands.

A :class:`TestStand` bundles what the paper says a stand must know about
itself: its resources (instruments with capability ranges), its connection
matrix, and its supply voltage (the ``UBATT`` variable the relative limits
refer to).  Three ready-made stands are provided:

``build_paper_stand``
    exactly the stand of the paper's Section 4: one DVM reachable over
    ``Sw1.1`` / ``Sw1.2`` and two resistor decades reachable over the
    ``Mx1..Mx4`` multiplexers, plus the CAN interface that the paper's
    example implicitly needs for ``put_can``.
``build_big_rack``
    a generously equipped rack (several DVMs, four decades, PSU, generator,
    current probe, digital I/O, CAN) with a full crossbar to every DUT pin.
``build_minimal_bench``
    a small bench with just enough equipment to run the paper's suite -
    different wiring, different instrument ranges, same verdicts.  Together
    with the other two it demonstrates the test-stand independence claim
    (benchmark E1).

All three builders accept an ``io_delay`` keyword that is forwarded to every
instrument: ``build_paper_stand(io_delay=0.005)`` is the paper stand with a
5 ms command round-trip per instrument call - a *latency-simulated* stand,
the workload the ``async`` execution backend multiplexes (benchmark A4).
The default of ``0`` keeps the purely virtual stands fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.errors import AllocationError
from ..instruments import (
    CanInterface,
    CurrentProbe,
    DigitalIo,
    Dvm,
    Instrument,
    OhmMeter,
    PowerSupply,
    ResistorDecade,
    SignalGenerator,
)
from ..methods import MethodRegistry, default_registry
from .connection import ConnectionMatrix, DirectWire, MuxChannel, Route, Switch
from .resources import Resource, ResourceTable

__all__ = [
    "TestStand",
    "full_crossbar",
    "build_paper_stand",
    "build_big_rack",
    "build_minimal_bench",
    "PAPER_PINS",
]

#: DUT pins appearing in the paper's connection matrix, in the paper's order.
PAPER_PINS = ("INT_ILL_F", "INT_ILL_R", "DS_FL", "DS_FR", "DS_RL", "DS_RR")


@dataclass
class TestStand:
    """One test stand: resources, connection matrix, supply and variables."""

    name: str
    resources: ResourceTable
    connections: ConnectionMatrix
    supply_voltage: float = 12.0
    variables: dict[str, float] = field(default_factory=dict)
    registry: MethodRegistry | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise AllocationError("test stand needs a name")
        if self.supply_voltage < 0:
            raise AllocationError("supply voltage must be non-negative")
        if self.registry is None:
            self.registry = default_registry()

    def reset(self) -> None:
        """Restore the stand to its between-jobs idle state.

        Called by the executor's per-worker stand pool before a pooled
        stand serves its next job: every instrument gets its
        :meth:`~repro.instruments.Instrument.reset` hook invoked so that
        stateful instruments (none of the bundled ones are, but plugins may
        be) drop anything a previous - possibly aborted - run left behind.
        Allocation holds and mux selections live in the per-run
        :class:`~repro.teststand.allocator.Allocator` and applied stimuli in
        the per-run :class:`~repro.dut.harness.TestHarness`, so a reset
        stand plus a fresh allocator/harness is indistinguishable from a
        freshly built stand - the invariant the stand-reuse fast path (and
        its byte-identical-verdict guarantee) rests on.
        """
        for resource in self.resources:
            resource.instrument.reset()

    def resource_rows(self) -> list[tuple[str, ...]]:
        """The stand's resource table (paper T3 layout)."""
        return self.resources.rows()

    def connection_rows(self, pins: Sequence[str] | None = None) -> list[tuple[str, ...]]:
        """The stand's connection matrix (paper T4 layout)."""
        return self.connections.matrix_rows(pins)

    def methods_supported(self) -> tuple[str, ...]:
        return self.resources.methods_supported()

    def __repr__(self) -> str:
        return (
            f"TestStand(name={self.name!r}, resources={len(self.resources)}, "
            f"routes={len(self.connections)}, ubatt={self.supply_voltage} V)"
        )


def full_crossbar(
    resources: Iterable[Resource],
    pins: Sequence[str],
    *,
    bus_resources: Iterable[str] = (),
) -> ConnectionMatrix:
    """Build a connection matrix where every resource reaches every pin.

    Each (resource, terminal, pin) combination gets its own relay label
    ``K<resource>.<terminal>.<pin>``.  Bus-interface resources are skipped -
    they do not connect to discrete pins.
    """
    matrix = ConnectionMatrix()
    skip = {str(name).lower() for name in bus_resources}
    for resource in resources:
        if resource.key in skip or resource.is_bus_interface:
            continue
        for terminal in resource.terminals:
            for pin in pins:
                label = f"K{resource.name}.{terminal}.{pin}"
                matrix.add(Route(resource.name, terminal, pin, Switch(label)))
    return matrix


def build_paper_stand(*, supply_voltage: float = 12.0,
                      io_delay: float = 0.0) -> TestStand:
    """The test stand of the paper's Section 4.

    Resources (paper's resource table):

    ======  ==================  ========  =========  =========  ====
    Ress.   Method              Attribut  Min        Max        Unit
    ======  ==================  ========  =========  =========  ====
    Ress1   get_u               u         -60        60         V
    Ress2   put_r               r         0          1.00E+06   Ohm
    Ress3   put_r               r         0          2.00E+05   Ohm
    ======  ==================  ========  =========  =========  ====

    (The paper's table prints the decade method as ``get_r``; applying a
    resistance is a stimulus, so - consistently with the status table that
    binds ``Open``/``Closed`` to ``put_r`` - the decades support ``put_r``
    here.  ``Ress4``, the CAN interface, does not appear in the paper's
    table but is required by the ``put_can`` statuses of the very same
    example and is therefore part of this stand.)

    Connections (paper's connection matrix): the DVM reaches the two lamp
    pins through the switches ``Sw1.1`` / ``Sw1.2``; each resistor decade
    reaches each door-switch pin through one channel of the per-pin
    multiplexers ``Mx1`` .. ``Mx4``.
    """
    resources = ResourceTable((
        Resource("Ress1", Dvm("dvm1", u_min=-60.0, u_max=60.0, io_delay=io_delay),
                 "digital volt meter"),
        Resource("Ress2", ResistorDecade("decade1", max_ohms=1.0e6, io_delay=io_delay),
                 "resistor decade 1 MOhm"),
        Resource("Ress3", ResistorDecade("decade2", max_ohms=2.0e5, io_delay=io_delay),
                 "resistor decade 200 kOhm"),
        Resource("Ress4", CanInterface("can1", io_delay=io_delay), "CAN interface"),
    ))

    connections = ConnectionMatrix()
    connections.add(Route("Ress1", "hi", "INT_ILL_F", Switch("Sw1.1")))
    connections.add(Route("Ress1", "lo", "INT_ILL_R", Switch("Sw1.2")))
    door_pins = ("DS_FL", "DS_FR", "DS_RL", "DS_RR")
    for index, pin in enumerate(door_pins, start=1):
        connections.add(Route("Ress3", "a", pin, MuxChannel(f"Mx{index}.1", mux=f"Mx{index}", channel=1)))
        connections.add(Route("Ress2", "a", pin, MuxChannel(f"Mx{index}.2", mux=f"Mx{index}", channel=2)))

    return TestStand(
        name="paper_stand",
        resources=resources,
        connections=connections,
        supply_voltage=supply_voltage,
        description="Test circuit of Brinkmeyer (DATE 2005), Section 4",
    )


def build_big_rack(
    pins: Sequence[str] = PAPER_PINS, *, supply_voltage: float = 13.5,
    io_delay: float = 0.0,
) -> TestStand:
    """A generously equipped HIL rack with a full crossbar to every pin."""
    resources = ResourceTable((
        Resource("DVM_A", Dvm("dvm_a", u_min=-100.0, u_max=100.0, io_delay=io_delay),
                 "precision DVM"),
        Resource("DVM_B", Dvm("dvm_b", u_min=-60.0, u_max=60.0, io_delay=io_delay),
                 "second DVM"),
        Resource("DEC_A", ResistorDecade("dec_a", max_ohms=1.0e6, io_delay=io_delay),
                 "decade 1 MOhm"),
        Resource("DEC_B", ResistorDecade("dec_b", max_ohms=1.0e6, io_delay=io_delay),
                 "decade 1 MOhm"),
        Resource("DEC_C", ResistorDecade("dec_c", max_ohms=1.0e5, io_delay=io_delay),
                 "decade 100 kOhm"),
        Resource("DEC_D", ResistorDecade("dec_d", max_ohms=1.0e4, io_delay=io_delay),
                 "decade 10 kOhm"),
        Resource("PSU_1", PowerSupply("psu1", u_max=30.0, io_delay=io_delay),
                 "programmable supply"),
        Resource("GEN_1", SignalGenerator("gen1", io_delay=io_delay), "signal generator"),
        Resource("AMP_1", CurrentProbe("probe1", i_max=30.0, io_delay=io_delay),
                 "current probe"),
        Resource("OHM_1", OhmMeter("ohm1", io_delay=io_delay), "ohm meter"),
        Resource("DIO_1", DigitalIo("dio1", channels=16, io_delay=io_delay),
                 "digital I/O card"),
        Resource("CAN_1", CanInterface("can_rack", io_delay=io_delay), "CAN interface"),
    ))
    connections = full_crossbar(resources, pins)
    return TestStand(
        name="big_rack",
        resources=resources,
        connections=connections,
        supply_voltage=supply_voltage,
        description="Fully equipped HIL rack with crossbar switching",
    )


def build_minimal_bench(
    pins: Sequence[str] = PAPER_PINS, *, supply_voltage: float = 12.5,
    io_delay: float = 0.0,
) -> TestStand:
    """A small laboratory bench: one DVM, two small decades, one CAN dongle,
    one clamp ammeter.

    The decades are deliberately smaller (50 kOhm) than the paper stand's and
    everything is hard-wired through direct plugs instead of a switching
    matrix - a very different stand that must nevertheless produce the same
    verdicts from the same XML script.  The clamp ammeter closes the bench's
    former ``get_i`` capability gap: without it the family's
    current-measurement sheets (the ones that catch the ``fast_relay_weak``
    and ``drl_dim`` knowledge-gap faults) could not run here and the bench
    would no longer produce the same verdicts as the big rack.
    """
    resources = ResourceTable((
        Resource("BENCH_DVM", Dvm("bench_dvm", u_min=-20.0, u_max=20.0,
                                  io_delay=io_delay), "handheld DVM"),
        Resource("BENCH_DEC1", ResistorDecade("bench_dec1", max_ohms=5.0e4,
                                              io_delay=io_delay), "decade 50 kOhm"),
        Resource("BENCH_DEC2", ResistorDecade("bench_dec2", max_ohms=5.0e4,
                                              io_delay=io_delay), "decade 50 kOhm"),
        Resource("BENCH_CAN", CanInterface("bench_can", io_delay=io_delay),
                 "USB CAN dongle"),
        Resource("BENCH_CLAMP", CurrentProbe("bench_clamp", i_max=20.0,
                                             io_delay=io_delay),
                 "handheld clamp ammeter"),
    ))
    connections = ConnectionMatrix()
    if "INT_ILL_F" in pins:
        connections.add(Route("BENCH_DVM", "hi", "INT_ILL_F", DirectWire("P1")))
    if "INT_ILL_R" in pins:
        connections.add(Route("BENCH_DVM", "lo", "INT_ILL_R", DirectWire("P2")))
    plug = 3
    for pin in pins:
        if pin in ("INT_ILL_F", "INT_ILL_R"):
            continue
        connections.add(Route("BENCH_DEC1", "a", pin, DirectWire(f"P{plug}")))
        connections.add(Route("BENCH_DEC2", "a", pin, DirectWire(f"P{plug + 1}")))
        plug += 2
    # The handheld DVM's probe can touch any adapter plug, so every non-lamp
    # pin also gets a single-ended (against ground) measuring wire.  This is
    # what makes the bench usable for DUT adapters beyond the paper pinning
    # (motor and lamp outputs measured pin-to-ground).
    for pin in pins:
        if pin in ("INT_ILL_F", "INT_ILL_R"):
            continue
        connections.add(Route("BENCH_DVM", "hi", pin, DirectWire(f"P{plug}")))
        plug += 1
    # The clamp ammeter closes around any adapter wire, so every pin gets a
    # clamp position (separate C-numbered labels: clamping a wire is not a
    # plug connection).
    for index, pin in enumerate(pins, start=1):
        connections.add(Route("BENCH_CLAMP", "clamp", pin, DirectWire(f"C{index}")))
    return TestStand(
        name="minimal_bench",
        resources=resources,
        connections=connections,
        supply_voltage=supply_voltage,
        description="Minimal laboratory bench with hard-wired adapters",
    )
