"""Script bytecode VM: the whole run compiled to a flat instruction stream.

The execution plans of :mod:`repro.teststand.plan` stop at resource
allocation - every run still walks ``Action`` objects through the
interpreter's prepare/perform dispatch.  This module extends the compiled
path over the *measurement loop itself*: one (script x stand-topology x
registry x variables) combination compiles - once - into a flat stream of
instructions

========================  ====================================================
op                        meaning
========================  ====================================================
``SET``                   one stimulus instrument call with pre-resolved
                          signal, routes and instrument (``put_*``)
``GET``                   one measurement instrument call, same operands
                          (``get_*``)
``WAIT``                  advance the harness clock (a ``wait`` action
                          and/or a step's settle dt); emits one PASS
                          result per merged ``wait`` action
``CHECK_WINDOW``          guard: the pre-evaluated capability window of the
                          following call must still fit (pure float
                          comparisons, checked when the program is bound
                          to a stand)
``EVAL_LIMIT``            guard: the window references stand variables, so
                          its pre-compiled limit expressions are
                          re-evaluated against the live run variables in
                          the run prologue
``OPEN_CIRCUIT``          realise ``put_r r="INF"`` by disconnecting the
                          signal's pins (pre-decided PASS outcome)
``END_STEP``              close the current step: build its
                          :class:`~repro.teststand.verdict.StepResult`
========================  ====================================================

followed by a peephole pass (:data:`PEEPHOLE_PASSES`):

* **guard fusion** - a ``CHECK_WINDOW`` / ``EVAL_LIMIT`` immediately before
  its ``SET`` / ``GET`` folds into that op's operand slot,
* **settle merge** - adjacent ``WAIT`` ops (a trailing ``wait`` action and
  the step's settle, never across ``END_STEP``) merge into one clock
  advance that still emits every original action's PASS result,
* **I/O batching** - consecutive ``SET`` / ``GET`` ops on the *same
  resource* merge into one op carrying an item tuple, paying the
  instrument's ``io_delay`` once per batch (the round trip of one chained
  command list) instead of once per call.

Execution is deliberately paranoid in the same way the allocation-plan
cursor is: a program **binds** to a concrete stand instance (resolving
resource keys to live instruments and re-checking every constant capability
window against *that* stand's capability rows), and every run starts with a
prologue that re-checks the live signal pinning and the
variable-dependent ``EVAL_LIMIT`` guards.  Any mismatch at any of those
points degrades **the whole run** to the classic interpreter before a
single instruction has touched the harness - so verdict tables are
byte-identical with the VM on or off.  Scripts the compiler cannot express
(an allocation that fails at compile time, a non-numeric ``wait`` duration,
an unknown signal) raise :class:`VmCompileError`; the plan then carries no
program and every run of the combination takes the classic path, which the
``X-UNCOMPILABLE-SCRIPT`` lint rule surfaces pre-flight.

One deliberate contract makes the fast path fast: the VM hands every
``_perform`` call one shared per-run variables dict instead of a fresh copy
per call.  Instruments must not mutate their ``variables`` argument - which
:meth:`~repro.instruments.Instrument._perform` has always documented.
"""

from __future__ import annotations

import asyncio
import inspect
import time as _time
from collections import OrderedDict
from typing import Mapping, Sequence

from .. import chaos as _chaos
from ..core.errors import AllocationError, TransientError
from ..core.script import ScriptStep, SignalAction, TestScript
from ..core.signals import Signal, SignalSet
from ..methods import MethodRegistry, evaluate_call_parameter, limits_for_call
from .allocator import Allocator
from .stands import TestStand
from .verdict import ActionResult, StepResult, Verdict

__all__ = [
    "VM_OPS",
    "VmOp",
    "VmIoItem",
    "VmProgram",
    "VmCompileError",
    "VmCursor",
    "compile_program",
    "peephole",
    "fuse_guards",
    "merge_waits",
    "batch_io",
    "PEEPHOLE_PASSES",
]

#: The instruction set, in documentation order.
VM_OPS = (
    "SET", "GET", "WAIT", "CHECK_WINDOW", "OPEN_CIRCUIT", "EVAL_LIMIT",
    "END_STEP",
)

#: How many (program x stand) bindings one stand instance memoises.
_BINDING_CACHE_SIZE = 8


class VmCompileError(Exception):
    """A (script x stand) combination the VM compiler cannot express.

    ``op`` names the instruction that could not be generated (e.g.
    ``"SET door_fl:put_r"``); ``reason`` says why.  Both feed the
    ``X-UNCOMPILABLE-SCRIPT`` lint rule and the plan's ``vm_reason``.
    """

    def __init__(self, op: str, reason: str):
        self.op = op
        self.reason = reason
        super().__init__(f"{op}: {reason}")


class VmIoItem:
    """One pre-resolved instrument call inside a ``SET`` / ``GET`` op."""

    __slots__ = ("action", "signal", "allocation", "window", "dynamic",
                 "attribute")

    def __init__(self, action: SignalAction, signal: Signal, allocation,
                 attribute: str | None = None):
        self.action = action
        self.signal = signal
        self.allocation = allocation
        #: Pre-evaluated capability window (``(capability, nominal,
        #: acceptance)``) fused from the preceding guard op, or ``None``.
        self.window = None
        #: ``True`` when the window references stand variables and must be
        #: re-evaluated per run (the ``EVAL_LIMIT`` guard).
        self.dynamic = False
        #: The method's principal attribute (``"u"``, ``"r"``, ...) from
        #: the registry, used to pre-evaluate the call's nominal value and
        #: acceptance limits per run; ``None`` when the registry does not
        #: know the method (the instrument then evaluates on its own).
        self.attribute = attribute

    def __repr__(self) -> str:
        return f"VmIoItem({self.signal.key}:{self.action.method})"


class VmOp:
    """One instruction of a :class:`VmProgram` (operands vary by ``code``)."""

    __slots__ = (
        "code", "items", "resource_key", "duration", "emits",
        "action", "signal", "outcome", "window", "dynamic",
        "number", "remark",
    )

    def __init__(self, code: str, **operands):
        self.code = code
        self.items: tuple[VmIoItem, ...] = operands.get("items", ())
        self.resource_key: str = operands.get("resource_key", "")
        self.duration: float = operands.get("duration", 0.0)
        self.emits: tuple[SignalAction, ...] = operands.get("emits", ())
        self.action = operands.get("action")
        self.signal = operands.get("signal")
        self.outcome = operands.get("outcome")
        self.window = operands.get("window")
        self.dynamic: bool = operands.get("dynamic", False)
        self.number: int = operands.get("number", 0)
        self.remark: str = operands.get("remark", "")

    def __repr__(self) -> str:
        if self.code in ("SET", "GET"):
            calls = ",".join(f"{i.signal.key}:{i.action.method}" for i in self.items)
            return f"VmOp({self.code} {self.resource_key} [{calls}])"
        if self.code == "WAIT":
            return f"VmOp(WAIT {self.duration:g}s emits={len(self.emits)})"
        if self.code == "END_STEP":
            return f"VmOp(END_STEP {self.number})"
        return f"VmOp({self.code})"


class VmProgram:
    """The compiled instruction stream of one plan, shared across stands.

    ``ops`` is the (peephole-optimised) flat stream; ``setup_size`` many
    leading instructions belong to the script's setup segment, the rest are
    step segments each closed by an ``END_STEP``.  ``raw_op_count`` keeps
    the pre-peephole instruction count for statistics and tests.  Programs
    hold only content-safe operands (signals, calls, allocations, windows)
    - live instruments are resolved per stand instance by the binding step.
    """

    __slots__ = ("ops", "setup_size", "key", "raw_op_count")

    def __init__(self, ops: tuple[VmOp, ...], setup_size: int, *,
                 key: tuple = (), raw_op_count: int = 0):
        self.ops = tuple(ops)
        self.setup_size = int(setup_size)
        self.key = key
        self.raw_op_count = int(raw_op_count) or len(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return (f"VmProgram({len(self.ops)} ops, "
                f"{self.raw_op_count} before peephole)")


# ---------------------------------------------------------------------------
# Peephole pass
# ---------------------------------------------------------------------------

def fuse_guards(ops: list[VmOp]) -> list[VmOp]:
    """Fold each ``CHECK_WINDOW`` / ``EVAL_LIMIT`` into the following I/O op.

    The guard becomes the item's ``window`` / ``dynamic`` operand; the
    binding (constant windows) and the run prologue (dynamic windows)
    evaluate it from there.  A guard not followed by a single-item I/O op
    is kept standalone - the executor then treats it as a pure prologue
    check.
    """
    out: list[VmOp] = []
    pending: VmOp | None = None
    for op in ops:
        if op.code in ("CHECK_WINDOW", "EVAL_LIMIT"):
            if pending is not None:
                out.append(pending)
            pending = op
            continue
        if pending is not None:
            if op.code in ("SET", "GET") and len(op.items) == 1:
                item = op.items[0]
                item.window = pending.window
                item.dynamic = pending.code == "EVAL_LIMIT"
            else:
                out.append(pending)
            pending = None
        out.append(op)
    if pending is not None:
        out.append(pending)
    return out


def merge_waits(ops: list[VmOp]) -> list[VmOp]:
    """Merge adjacent ``WAIT`` ops into one summed clock advance.

    Fires when ``wait`` actions trail the stimuli of a step (they become
    adjacent to the step's settle ``WAIT``) or follow each other directly.
    The merged op advances once and still emits one PASS result per
    original ``wait`` action, in order.  ``END_STEP`` is never crossed, so
    step start times stay exact.
    """
    out: list[VmOp] = []
    for op in ops:
        if op.code == "WAIT" and out and out[-1].code == "WAIT":
            previous = out[-1]
            out[-1] = VmOp(
                "WAIT",
                duration=previous.duration + op.duration,
                emits=previous.emits + op.emits,
            )
            continue
        out.append(op)
    return out


def batch_io(ops: list[VmOp]) -> list[VmOp]:
    """Merge consecutive I/O ops on the same resource into one batch op.

    The batch carries every call as an item, executed strictly in order;
    the instrument's ``io_delay`` is paid once per batch - the round trip
    of one chained command list.  Verdicts cannot drift: each item still
    performs its own call and records its own result.
    """
    out: list[VmOp] = []
    for op in ops:
        if (op.code in ("SET", "GET") and out
                and out[-1].code in ("SET", "GET")
                and out[-1].resource_key == op.resource_key):
            previous = out[-1]
            out[-1] = VmOp(
                previous.code,
                resource_key=previous.resource_key,
                items=previous.items + op.items,
            )
            continue
        out.append(op)
    return out


#: The peephole rewrites, applied per segment in this order.
PEEPHOLE_PASSES = (fuse_guards, merge_waits, batch_io)


def peephole(ops: list[VmOp]) -> list[VmOp]:
    """Apply every peephole rewrite to one segment's op list."""
    for rewrite in PEEPHOLE_PASSES:
        ops = rewrite(ops)
    return ops


# ---------------------------------------------------------------------------
# Compiler: plan entries + script structure -> instruction stream
# ---------------------------------------------------------------------------

def _window_is_dynamic(action: SignalAction, attribute: str) -> bool:
    """Whether the action's window parameters reference stand variables."""
    for suffix in ("", "_min", "_max"):
        raw = action.call.param(attribute + suffix)
        if raw is None:
            continue
        try:
            float(raw)
        except (TypeError, ValueError):
            return True
    return False


def compile_program(
    script: TestScript,
    signals: SignalSet,
    stand: TestStand,
    *,
    registry: MethodRegistry,
    variables: Mapping[str, float],
    entries: Sequence,
    key: tuple = (),
    optimize: bool = True,
) -> VmProgram:
    """Compile *script* into a :class:`VmProgram` over its plan *entries*.

    Walks the interpreter's exact execution order (setup, then per step all
    stimuli, the settle, all expectations) and consumes the allocation
    plan's entries in lock-step.  Raises :class:`VmCompileError` - with the
    failing op and reason - for anything the VM cannot express: a ``fail``
    plan entry (the run must reproduce the full search's error message), a
    non-numeric ``wait`` duration (the run must raise exactly like the
    classic path), an unknown signal (the run must produce the classic
    per-action ERROR), or a plan/script divergence.

    Peephole optimisation is applied per segment (setup and each step
    separately), so batches and merges never cross a segment boundary;
    ``optimize=False`` returns the raw stream for tests and inspection.
    """
    # Imported lazily: plan.py imports this module at its top level.
    from .plan import PlanEntry, action_is_measurement  # noqa: F401

    if getattr(signals, "composition", None):
        # Multi-ECU compositions are VM-inexpressible by design: the VM's
        # instruction set models exactly one ECU behind the harness, while a
        # composed sheet's stimuli and checks fan out across members on a
        # shared bus.  Declining here makes ``use_vm=True`` degrade to the
        # classic plan path, keeping verdicts byte-identical with/without
        # the VM (the parity matrix enforces that).
        raise VmCompileError(
            f"script {script.name!r}: signal sheet belongs to composition "
            f"{signals.composition!r}; the VM models a single ECU"
        )

    entry_iter = iter(entries)

    def compile_action(action: SignalAction) -> list[VmOp]:
        method_key = action.method.lower()
        is_measurement = action_is_measurement(registry, action.method)
        opname = "GET" if is_measurement else "SET"
        where = f"{opname} {str(action.signal).lower()}:{method_key}"
        try:
            signal = signals.get(action.signal)
        except Exception as exc:
            raise VmCompileError(where, f"unknown signal: {exc}")
        if method_key == "wait":
            raw = action.call.param("t", "0") or 0
            try:
                duration = float(raw)
            except (TypeError, ValueError):
                raise VmCompileError(
                    f"WAIT {signal.key}:wait",
                    f"duration t={raw!r} is not numeric",
                )
            return [VmOp("WAIT", duration=duration, emits=(action,))]
        entry = next(entry_iter, None)
        if (entry is None or entry.signal_key != signal.key
                or entry.method_key != method_key):
            raise VmCompileError(
                where, "allocation plan diverged from the script walk"
            )
        if entry.kind == "open":
            return [VmOp("OPEN_CIRCUIT", action=action, signal=signal,
                         outcome=entry.outcome)]
        if entry.kind == "fail":
            raise VmCompileError(
                where,
                "no resource allocatable at compile time (the run must "
                "reproduce the full search's error)",
            )
        ops: list[VmOp] = []
        if entry.window is not None:
            capability = entry.window[0]
            dynamic = _window_is_dynamic(action, capability.attribute)
            ops.append(VmOp(
                "EVAL_LIMIT" if dynamic else "CHECK_WINDOW",
                window=entry.window, action=action, signal=signal,
                dynamic=dynamic,
            ))
        try:
            attribute = registry.get(action.method).attribute
        except Exception:
            attribute = None
        item = VmIoItem(action, signal, entry.allocation,
                        attribute=attribute)
        ops.append(VmOp(opname, resource_key=entry.allocation.resource,
                        items=(item,)))
        return ops

    def compile_step(step: ScriptStep) -> list[VmOp]:
        stimuli: list[SignalAction] = []
        expectations: list[SignalAction] = []
        for action in step.actions:
            if action_is_measurement(registry, action.method):
                expectations.append(action)
            else:
                stimuli.append(action)
        ops: list[VmOp] = []
        for action in stimuli:
            ops.extend(compile_action(action))
        ops.append(VmOp("WAIT", duration=step.duration))
        for action in expectations:
            ops.extend(compile_action(action))
        ops.append(VmOp("END_STEP", number=step.number,
                        duration=step.duration, remark=step.remark))
        return ops

    raw_count = 0

    def finish(ops: list[VmOp]) -> list[VmOp]:
        nonlocal raw_count
        raw_count += len(ops)
        return peephole(ops) if optimize else ops

    setup_ops: list[VmOp] = []
    for action in script.setup:
        setup_ops.extend(compile_action(action))
    setup_ops = finish(setup_ops)

    ops = list(setup_ops)
    for step in script.steps:
        ops.extend(finish(compile_step(step)))

    leftover = next(entry_iter, None)
    if leftover is not None:
        raise VmCompileError(
            f"{leftover.signal_key}:{leftover.method_key}",
            "allocation plan has entries the script walk never reached",
        )
    return VmProgram(tuple(ops), len(setup_ops), key=key,
                     raw_op_count=raw_count)


# ---------------------------------------------------------------------------
# Binding: program x stand instance -> executable stream
# ---------------------------------------------------------------------------

# Executable opcodes (tuple-based for dispatch speed in the run loop).
_X_IO = 0
_X_WAIT = 1
_X_OPEN = 2
_X_END = 3


class VmBinding:
    """One program resolved against one concrete stand instance.

    ``ops`` is the executable stream: plain tuples whose first element is
    an ``_X_*`` opcode, with live instrument references and pre-computed
    bookkeeping operands.  ``signal_shapes`` holds the compiled pinning
    the run prologue re-checks against the live signal set;
    ``dynamic_guards`` the ``EVAL_LIMIT`` windows re-evaluated against the
    run's variables (``guard_memo`` caches the verdict per variables
    shape - campaign runs repeat the same variables, so the evaluation
    happens once, while a genuinely new shape re-evaluates).
    """

    __slots__ = ("ops", "setup_size", "signal_shapes", "dynamic_guards",
                 "guard_memo", "signals_ok", "prepared_memo")

    def __init__(self, ops, setup_size, signal_shapes, dynamic_guards):
        self.ops = ops
        self.setup_size = setup_size
        self.signal_shapes = signal_shapes
        self.dynamic_guards = dynamic_guards
        self.guard_memo: dict[tuple, bool] = {}
        #: Pre-evaluated ``(nominal, limits)`` operand pairs per variables
        #: shape, aligned with the flat I/O item order; handed to
        #: ``Instrument._perform`` so instruments skip re-evaluating the
        #: same parameter expressions on every run.
        self.prepared_memo: dict[tuple, tuple] = {}
        #: Signal sets whose live pinning already matched ``signal_shapes``.
        #: Sound as an identity memo: ``Signal`` is frozen and a
        #: ``SignalSet`` only ever *gains* keys (duplicates raise), so a
        #: set that matched once matches forever.  Strong references keep
        #: ``is`` honest against id reuse.
        self.signals_ok: list = []


#: Per-instrument-class memo: does ``_perform`` take the ``prepared``
#: keyword?  The bundled instruments all do; a third-party subclass with
#: the five-argument signature simply never receives pre-evaluated
#: operands and keeps working unchanged.
_PREPARED_PROBE: dict[type, bool] = {}


def _accepts_prepared(cls: type) -> bool:
    accepts = _PREPARED_PROBE.get(cls)
    if accepts is None:
        try:
            accepts = "prepared" in inspect.signature(cls._perform).parameters
        except (TypeError, ValueError):
            accepts = False
        _PREPARED_PROBE[cls] = accepts
    return accepts


def _prepare_operands(binding: "VmBinding", variables: Mapping[str, float]) -> tuple:
    """Pre-evaluate every I/O item's ``(nominal, limits)`` pair.

    One entry per item in flat stream order, ``None`` when the item's
    instrument cannot take pre-evaluated operands or nothing evaluates.
    Evaluation errors leave the slot ``None`` so the instrument re-runs
    the evaluation itself and raises exactly like the classic path.
    """
    out = []
    for op in binding.ops:
        if op[0] != _X_IO:
            continue
        accepts = op[5]
        for item in op[4]:
            attribute = item[8]
            if not accepts or attribute is None:
                out.append(None)
                continue
            call = item[1]
            try:
                nominal = evaluate_call_parameter(call, attribute, variables)
            except Exception:
                nominal = None
            try:
                limits = limits_for_call(call, attribute, variables)
            except Exception:
                limits = None
            if nominal is None and limits is None:
                out.append(None)
            else:
                out.append((nominal, limits))
    return tuple(out)


def _bind(program: VmProgram, stand: TestStand) -> VmBinding | None:
    """Resolve *program* against *stand*, or ``None`` when it does not fit.

    Re-checks, against this concrete stand instance, everything that is
    constant per (program x stand): every resource key resolves, every
    instrument still supports its method, and every constant
    (``CHECK_WINDOW``) capability window still fits the instrument's
    capability row.  Variable-dependent (``EVAL_LIMIT``) windows are
    collected for the per-run prologue instead.
    """
    bound: list[tuple] = []
    setup_size = 0
    signal_shapes: dict[str, tuple] = {}
    dynamic_guards: list[tuple] = []

    def note_signal(signal: Signal) -> None:
        signal_shapes.setdefault(signal.key, (
            tuple(p.lower() for p in signal.pins),
            bool(signal.is_bus),
            str(signal.message).lower() if signal.message else None,
        ))

    def check_window(window, resource, method: str) -> bool:
        if window is None:
            return True
        _, nominal, acceptance = window
        try:
            capability = resource.capability_for(method)
        except Exception:
            return False
        return capability.can_serve(nominal, acceptance)

    for index, op in enumerate(program.ops):
        code = op.code
        if code in ("SET", "GET"):
            try:
                resource = stand.resources.get(op.resource_key)
            except AllocationError:
                return None
            instrument = resource.instrument
            items = []
            for item in op.items:
                note_signal(item.signal)
                if item.dynamic:
                    dynamic_guards.append(
                        (resource, item.action.call, item.window))
                elif not check_window(item.window, resource,
                                      item.action.method):
                    return None
                allocation = item.allocation
                items.append((
                    item.action,
                    item.action.call,
                    item.signal,
                    allocation.pins,
                    item.signal.key,
                    allocation.routes,
                    allocation.persistent,
                    allocation,
                    item.attribute,
                ))
            bound.append((_X_IO, instrument, instrument._perform,
                          resource.key, tuple(items),
                          _accepts_prepared(type(instrument))))
        elif code == "WAIT":
            bound.append((_X_WAIT, op.duration, op.emits))
        elif code == "OPEN_CIRCUIT":
            note_signal(op.signal)
            bound.append((_X_OPEN, op.action, op.signal.key,
                          op.signal.pins, op.outcome))
        elif code == "END_STEP":
            bound.append((_X_END, op.number, op.duration, op.remark))
        elif code in ("CHECK_WINDOW", "EVAL_LIMIT"):
            # Standalone guard: only unoptimised programs carry these
            # (``fuse_guards`` folds every guard into its I/O op).  A
            # constant window is checked here against its compile-time
            # capability; a dynamic one has no resolvable resource without
            # its I/O op, so the bind conservatively refuses.
            if op.dynamic:
                return None
            _, nominal, acceptance = op.window
            if not op.window[0].can_serve(nominal, acceptance):
                return None
            # No executable footprint.
        else:  # pragma: no cover - unknown op means a compiler bug
            return None
        if index + 1 == program.setup_size:
            setup_size = len(bound)
    if program.setup_size == 0:
        setup_size = 0
    return VmBinding(tuple(bound), setup_size, signal_shapes,
                     tuple(dynamic_guards))


def binding_for(program: VmProgram, stand: TestStand) -> VmBinding | None:
    """The memoised binding of *program* on *stand* (``None`` = no fit).

    Bindings are cached on the stand instance keyed by the program's plan
    key with an identity re-check (plan keys are content fingerprints, but
    a program evicted and recompiled must re-bind).  Failed binds are
    memoised too - a stand that cannot carry the program today cannot
    carry it on the next run either.
    """
    cache: OrderedDict | None = stand.__dict__.get("_vm_bindings")
    if cache is None:
        cache = stand.__dict__["_vm_bindings"] = OrderedDict()
    cached = cache.get(program.key)
    if cached is not None and cached[0] is program:
        cache.move_to_end(program.key)
        return cached[1]
    binding = _bind(program, stand)
    cache[program.key] = (program, binding)
    while len(cache) > _BINDING_CACHE_SIZE:
        cache.popitem(last=False)
    return binding


# ---------------------------------------------------------------------------
# The cursor: one run of one bound program
# ---------------------------------------------------------------------------

class VmCursor:
    """Executes one bound program for one run, self-distrusting throughout.

    Mirrors the allocation plan's :class:`~repro.teststand.plan.PlanCursor`
    contract at run granularity: :meth:`validate` re-checks everything the
    compiled operands assume about *this* run (live signal pinning,
    variable-dependent capability windows) and returns ``False`` - before
    any instruction has executed - when the program cannot be trusted; the
    interpreter then runs the classic path and the verdicts stay
    byte-identical.  :meth:`execute` / :meth:`aexecute` are the sync/async
    twins of the instruction loop.
    """

    __slots__ = ("binding", "allocator", "harness", "signals",
                 "stop_on_error", "_prepared")

    def __init__(
        self,
        program: VmProgram,
        stand: TestStand,
        *,
        signals: SignalSet,
        allocator: Allocator,
        harness,
        stop_on_error: bool = False,
    ):
        self.binding = binding_for(program, stand)
        self.signals = signals
        self.allocator = allocator
        self.harness = harness
        self.stop_on_error = bool(stop_on_error)
        self._prepared: tuple = ()

    def validate(self, variables: Mapping[str, float]) -> bool:
        """Run prologue: may this run trust the compiled operands?

        Checks the live signal pinning against the compiled shapes (a
        re-pinned adapter must degrade); a :class:`SignalSet` *instance*
        that matched once is memoised by identity, which is sound because
        signal sets are grow-only and signals immutable.  The ``EVAL_LIMIT``
        guards once per distinct variables shape: their limit expressions
        are re-evaluated through
        :meth:`~repro.teststand.allocator.Allocator.capability_window`
        with the live variables and the verdict memoised - all runs served
        by one cached plan share the variables that are part of its cache
        key, so campaigns pay the evaluation once per binding.
        """
        binding = self.binding
        if binding is None:
            return False
        signals = self.signals
        for seen in binding.signals_ok:
            if seen is signals:
                break
        else:
            for key, shape in binding.signal_shapes.items():
                try:
                    live = signals.get(key)
                except Exception:
                    return False
                if (tuple(p.lower() for p in live.pins), bool(live.is_bus),
                        str(live.message).lower() if live.message else None
                        ) != shape:
                    return False
            if len(binding.signals_ok) >= 4:
                del binding.signals_ok[0]
            binding.signals_ok.append(signals)
        memo_key = tuple(sorted(variables.items()))
        if binding.dynamic_guards:
            verdict = binding.guard_memo.get(memo_key)
            if verdict is None:
                verdict = self._evaluate_guards(variables)
                if len(binding.guard_memo) >= 8:
                    binding.guard_memo.clear()
                binding.guard_memo[memo_key] = verdict
            if not verdict:
                return False
        prepared = binding.prepared_memo.get(memo_key)
        if prepared is None:
            prepared = _prepare_operands(binding, variables)
            if len(binding.prepared_memo) >= 8:
                binding.prepared_memo.clear()
            binding.prepared_memo[memo_key] = prepared
        self._prepared = prepared
        return True

    def _evaluate_guards(self, variables: Mapping[str, float]) -> bool:
        """Re-evaluate every ``EVAL_LIMIT`` window with *variables*."""
        for resource, call, _window in self.binding.dynamic_guards:
            window = self.allocator.capability_window(
                resource, call, variables)
            if window is None:
                continue  # nothing to range-check: the classic path passes
            capability, nominal, acceptance = window
            if not capability.can_serve(nominal, acceptance):
                return False
        return True

    # The sync and async loops are hand-duplicated, like run()/arun(): this
    # is the hot path, and routing every op through a shared coroutine
    # would cost more than the duplication saves in maintenance.

    def execute(
        self, variables: Mapping[str, float]
    ) -> tuple[list[ActionResult], list[StepResult]]:
        """Execute the whole program; returns (setup results, step results)."""
        binding = self.binding
        ops = binding.ops
        harness = self.harness
        allocator = self.allocator
        register = allocator.register_planned
        stop = self.stop_on_error
        run_vars = dict(variables)
        # The VM binds instrument._perform directly, bypassing the
        # execute/aexecute wrappers - so the chaos hooks live here too.
        # One check per run keeps the clean path at a single bool test.
        chaos_on = _chaos.ACTIVE is not None
        error = Verdict.ERROR
        passed = Verdict.PASS
        failed = Verdict.FAIL

        setup_results: list[ActionResult] = []
        aborted = False
        index = 0
        pi = 0
        prepared = self._prepared
        setup_size = binding.setup_size
        while index < setup_size:
            op = ops[index]
            index += 1
            code = op[0]
            if code == _X_IO:
                _, instrument, perform, resource_key, items, _ = op
                delay = instrument.io_delay
                if delay > 0.0:
                    _time.sleep(delay)
                for (action, call, signal, pins, signal_key, routes,
                     persistent, allocation, _attr) in items:
                    pre = prepared[pi]
                    pi += 1
                    register(signal_key, resource_key, routes, persistent)
                    if chaos_on:
                        hang, glitch = _chaos.on_instrument_call()
                        if hang > 0.0:
                            _time.sleep(hang)
                    else:
                        glitch = False
                    try:
                        if pre is not None:
                            outcome = perform(call, signal, pins, harness,
                                              run_vars, prepared=pre)
                        else:
                            outcome = perform(call, signal, pins, harness,
                                              run_vars)
                    except TransientError:
                        raise  # to the executor's retry layer, not a verdict
                    except Exception as exc:
                        setup_results.append(ActionResult(
                            action, error, allocation=allocation,
                            error=str(exc)))
                        if stop:
                            aborted = True
                            break
                        continue
                    if glitch:
                        outcome = _chaos.glitched(outcome)
                    setup_results.append(ActionResult(
                        action, passed if outcome.passed else failed,
                        outcome=outcome, allocation=allocation))
                if aborted:
                    break
            elif code == _X_WAIT:
                harness.advance(op[1])
                for action in op[2]:
                    setup_results.append(ActionResult(action, passed))
            elif code == _X_OPEN:
                _, action, signal_key, pins, outcome = op
                allocator.release(signal_key)
                for pin in pins:
                    harness.release_resistance(pin)
                setup_results.append(ActionResult(action, passed,
                                                  outcome=outcome))

        steps: list[StepResult] = []
        if not aborted:
            n = len(ops)
            step_results: list[ActionResult] = []
            start_time = harness.now
            while index < n:
                op = ops[index]
                index += 1
                code = op[0]
                if code == _X_IO:
                    _, instrument, perform, resource_key, items, _ = op
                    delay = instrument.io_delay
                    if delay > 0.0:
                        _time.sleep(delay)
                    for (action, call, signal, pins, signal_key, routes,
                         persistent, allocation, _attr) in items:
                        pre = prepared[pi]
                        pi += 1
                        register(signal_key, resource_key, routes,
                                 persistent)
                        if chaos_on:
                            hang, glitch = _chaos.on_instrument_call()
                            if hang > 0.0:
                                _time.sleep(hang)
                        else:
                            glitch = False
                        try:
                            if pre is not None:
                                outcome = perform(call, signal, pins,
                                                  harness, run_vars,
                                                  prepared=pre)
                            else:
                                outcome = perform(call, signal, pins,
                                                  harness, run_vars)
                        except TransientError:
                            raise  # to the executor's retry layer
                        except Exception as exc:
                            step_results.append(ActionResult(
                                action, error, allocation=allocation,
                                error=str(exc)))
                            continue
                        if glitch:
                            outcome = _chaos.glitched(outcome)
                        step_results.append(ActionResult(
                            action, passed if outcome.passed else failed,
                            outcome=outcome, allocation=allocation))
                elif code == _X_WAIT:
                    harness.advance(op[1])
                    for action in op[2]:
                        step_results.append(ActionResult(action, passed))
                elif code == _X_END:
                    result = StepResult(
                        number=op[1], duration=op[2],
                        actions=tuple(step_results), remark=op[3],
                        start_time=start_time,
                    )
                    steps.append(result)
                    if stop and result.verdict is error:
                        break
                    step_results = []
                    start_time = harness.now
                elif code == _X_OPEN:
                    _, action, signal_key, pins, outcome = op
                    allocator.release(signal_key)
                    for pin in pins:
                        harness.release_resistance(pin)
                    step_results.append(ActionResult(action, passed,
                                                     outcome=outcome))
        return setup_results, steps

    async def aexecute(
        self, variables: Mapping[str, float]
    ) -> tuple[list[ActionResult], list[StepResult]]:
        """Awaitable twin of :meth:`execute`: batch latency is awaited.

        One ``await asyncio.sleep(io_delay)`` per I/O batch (not per call)
        keeps the async backend's multiplexing semantics: the event loop
        interleaves other jobs while this stand's chained command list is
        in flight.
        """
        binding = self.binding
        ops = binding.ops
        harness = self.harness
        allocator = self.allocator
        register = allocator.register_planned
        stop = self.stop_on_error
        run_vars = dict(variables)
        # The VM binds instrument._perform directly, bypassing the
        # execute/aexecute wrappers - so the chaos hooks live here too.
        # One check per run keeps the clean path at a single bool test.
        chaos_on = _chaos.ACTIVE is not None
        error = Verdict.ERROR
        passed = Verdict.PASS
        failed = Verdict.FAIL

        setup_results: list[ActionResult] = []
        aborted = False
        index = 0
        pi = 0
        prepared = self._prepared
        setup_size = binding.setup_size
        while index < setup_size:
            op = ops[index]
            index += 1
            code = op[0]
            if code == _X_IO:
                _, instrument, perform, resource_key, items, _ = op
                delay = instrument.io_delay
                if delay > 0.0:
                    await asyncio.sleep(delay)
                for (action, call, signal, pins, signal_key, routes,
                     persistent, allocation, _attr) in items:
                    pre = prepared[pi]
                    pi += 1
                    register(signal_key, resource_key, routes, persistent)
                    if chaos_on:
                        hang, glitch = _chaos.on_instrument_call()
                        if hang > 0.0:
                            await asyncio.sleep(hang)
                    else:
                        glitch = False
                    try:
                        if pre is not None:
                            outcome = perform(call, signal, pins, harness,
                                              run_vars, prepared=pre)
                        else:
                            outcome = perform(call, signal, pins, harness,
                                              run_vars)
                    except TransientError:
                        raise  # to the executor's retry layer, not a verdict
                    except Exception as exc:
                        setup_results.append(ActionResult(
                            action, error, allocation=allocation,
                            error=str(exc)))
                        if stop:
                            aborted = True
                            break
                        continue
                    if glitch:
                        outcome = _chaos.glitched(outcome)
                    setup_results.append(ActionResult(
                        action, passed if outcome.passed else failed,
                        outcome=outcome, allocation=allocation))
                if aborted:
                    break
            elif code == _X_WAIT:
                harness.advance(op[1])
                for action in op[2]:
                    setup_results.append(ActionResult(action, passed))
            elif code == _X_OPEN:
                _, action, signal_key, pins, outcome = op
                allocator.release(signal_key)
                for pin in pins:
                    harness.release_resistance(pin)
                setup_results.append(ActionResult(action, passed,
                                                  outcome=outcome))

        steps: list[StepResult] = []
        if not aborted:
            n = len(ops)
            step_results: list[ActionResult] = []
            start_time = harness.now
            while index < n:
                op = ops[index]
                index += 1
                code = op[0]
                if code == _X_IO:
                    _, instrument, perform, resource_key, items, _ = op
                    delay = instrument.io_delay
                    if delay > 0.0:
                        await asyncio.sleep(delay)
                    for (action, call, signal, pins, signal_key, routes,
                         persistent, allocation, _attr) in items:
                        pre = prepared[pi]
                        pi += 1
                        register(signal_key, resource_key, routes,
                                 persistent)
                        if chaos_on:
                            hang, glitch = _chaos.on_instrument_call()
                            if hang > 0.0:
                                await asyncio.sleep(hang)
                        else:
                            glitch = False
                        try:
                            if pre is not None:
                                outcome = perform(call, signal, pins,
                                                  harness, run_vars,
                                                  prepared=pre)
                            else:
                                outcome = perform(call, signal, pins,
                                                  harness, run_vars)
                        except TransientError:
                            raise  # to the executor's retry layer
                        except Exception as exc:
                            step_results.append(ActionResult(
                                action, error, allocation=allocation,
                                error=str(exc)))
                            continue
                        if glitch:
                            outcome = _chaos.glitched(outcome)
                        step_results.append(ActionResult(
                            action, passed if outcome.passed else failed,
                            outcome=outcome, allocation=allocation))
                elif code == _X_WAIT:
                    harness.advance(op[1])
                    for action in op[2]:
                        step_results.append(ActionResult(action, passed))
                elif code == _X_END:
                    result = StepResult(
                        number=op[1], duration=op[2],
                        actions=tuple(step_results), remark=op[3],
                        start_time=start_time,
                    )
                    steps.append(result)
                    if stop and result.verdict is error:
                        break
                    step_results = []
                    start_time = harness.now
                elif code == _X_OPEN:
                    _, action, signal_key, pins, outcome = op
                    allocator.release(signal_key)
                    for pin in pins:
                        harness.release_resistance(pin)
                    step_results.append(ActionResult(action, passed,
                                                     outcome=outcome))
        return setup_results, steps
