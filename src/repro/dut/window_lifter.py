"""Window lifter ECU.

Behaviour:

* Two resistive switch inputs (``WIN_SW_UP`` / ``WIN_SW_DOWN``): contact
  closed = switch pressed.
* The window moves only while the ignition is in "run" (``IGN_ST`` >= 2);
  this is the classic comfort-function interlock.
* The motor output ``WIN_MOTOR_UP`` is driven while moving up,
  ``WIN_MOTOR_DOWN`` while moving down; both are off when idle.
* The position is integrated over simulated time at :data:`TRAVEL_RATE`
  percent per second and clamped at the end stops (0 % = closed,
  100 % = fully open); reaching an end stop stops the motor.
* Pressing both switches at once is treated as "no request" (a plausibility
  rule that the fault-injection campaign can disable).
* The position is broadcast on CAN (``WINDOW_POSITION.WIN_POS``).
"""

from __future__ import annotations

from .base import EcuModel
from .pins import OutputDrive, Pin, PinKind

__all__ = ["WindowLifterEcu"]


class WindowLifterEcu(EcuModel):
    """Behavioural model of a door window lifter control unit."""

    NAME = "window_lifter_ecu"
    PINS = (
        Pin("WIN_SW_UP", PinKind.RESISTIVE_INPUT, "window switch, up direction"),
        Pin("WIN_SW_DOWN", PinKind.RESISTIVE_INPUT, "window switch, down direction"),
        Pin("WIN_MOTOR_UP", PinKind.POWER_OUTPUT, "motor drive, closing direction"),
        Pin("WIN_MOTOR_DOWN", PinKind.POWER_OUTPUT, "motor drive, opening direction"),
    )
    RX_MESSAGES = ("IGN_STATUS",)
    TX_MESSAGES = ("WINDOW_POSITION",)

    CONTACT_THRESHOLD = 100.0
    #: Window travel rate in percent of full stroke per second.
    TRAVEL_RATE = 10.0

    def __init__(self) -> None:
        self._position = 0.0          # 0 % = closed, 100 % = fully open
        self._direction = 0           # -1 closing, +1 opening, 0 idle
        self._last_update = 0.0
        self._last_reported = -1.0
        super().__init__()

    def _reset_state(self) -> None:
        self._position = 0.0
        self._direction = 0
        self._last_update = self.scheduler.now if hasattr(self, "scheduler") else 0.0
        self._last_reported = -1.0

    # -- observable state -----------------------------------------------------------

    @property
    def position(self) -> float:
        """Window opening in percent (0 = closed, 100 = fully open)."""
        return self._position

    @property
    def moving(self) -> bool:
        return self._direction != 0

    @property
    def ignition_on(self) -> bool:
        return self.rx_signal("IGN_STATUS", "IGN_ST", 0.0) >= 2

    # -- behaviour --------------------------------------------------------------------

    def _integrate_position(self) -> None:
        elapsed = self.now - self._last_update
        self._last_update = self.now
        if elapsed <= 0 or self._direction == 0:
            return
        delta = self.TRAVEL_RATE * elapsed * self._direction
        self._position = min(100.0, max(0.0, self._position + delta))

    def _evaluate(self) -> None:
        # First account for the motion that happened since the last call.
        self._integrate_position()

        up_pressed = self.contact_closed("WIN_SW_UP", self.CONTACT_THRESHOLD)
        down_pressed = self.contact_closed("WIN_SW_DOWN", self.CONTACT_THRESHOLD)

        if not self.ignition_on or (up_pressed and down_pressed):
            self._direction = 0
        elif up_pressed and self._position > 0.0:
            self._direction = -1
        elif down_pressed and self._position < 100.0:
            self._direction = +1
        else:
            self._direction = 0

        # End stops cut the motor even while the switch is held.
        if self._direction == -1 and self._position <= 0.0:
            self._direction = 0
        if self._direction == +1 and self._position >= 100.0:
            self._direction = 0

        if self._direction == -1:
            self.drive_output("WIN_MOTOR_UP", OutputDrive.high_side(0.3))
            self.drive_output("WIN_MOTOR_DOWN", OutputDrive.floating())
        elif self._direction == +1:
            self.drive_output("WIN_MOTOR_UP", OutputDrive.floating())
            self.drive_output("WIN_MOTOR_DOWN", OutputDrive.high_side(0.3))
        else:
            self.drive_output("WIN_MOTOR_UP", OutputDrive.floating())
            self.drive_output("WIN_MOTOR_DOWN", OutputDrive.floating())

        # Broadcast position changes (rounded to whole percent).
        reported = round(self._position)
        if reported != self._last_reported:
            self._last_reported = reported
            self.transmit("WINDOW_POSITION", {"WIN_POS": float(reported)})

    def _inputs_changed(self) -> None:
        self._evaluate()

    def _time_advanced(self) -> None:
        self._evaluate()
