"""Wiper control ECU.

Behaviour:

* The stalk position arrives over CAN (``WIPER_COMMAND.WIPER_MODE``):
  0 = off, 1 = interval, 2 = slow, 3 = fast.
* In slow/fast mode the wiper motor output is driven continuously (fast mode
  additionally asserts the ``WIPER_FAST`` relay output).
* In interval mode the motor is pulsed: one :data:`WIPE_DURATION_S` wipe
  every :data:`INTERVAL_S` seconds, realised with scheduled events.
* Wiping requires ignition "run".
* The washer request (``WIPER_COMMAND.WASH`` or the resistive ``WASH_SW``
  input) runs the washer pump output while active and triggers
  :data:`AFTER_WASH_WIPES` extra wipes after it is released.
"""

from __future__ import annotations

from .base import EcuModel
from .pins import OutputDrive, Pin, PinKind

__all__ = ["WiperEcu"]


class WiperEcu(EcuModel):
    """Behavioural model of a front wiper control unit."""

    NAME = "wiper_ecu"
    PINS = (
        Pin("WASH_SW", PinKind.RESISTIVE_INPUT, "washer push button"),
        Pin("WIPER_MOTOR", PinKind.POWER_OUTPUT, "wiper motor supply"),
        Pin("WIPER_FAST", PinKind.SIGNAL_OUTPUT, "fast-speed relay"),
        Pin("WASH_PUMP", PinKind.POWER_OUTPUT, "washer pump supply"),
    )
    RX_MESSAGES = ("WIPER_COMMAND", "IGN_STATUS")
    TX_MESSAGES = ()

    CONTACT_THRESHOLD = 100.0
    #: Pause between interval wipes [s].
    INTERVAL_S = 5.0
    #: Duration of one wipe stroke [s].
    WIPE_DURATION_S = 1.0
    #: Number of follow-up wipes after washing.
    AFTER_WASH_WIPES = 3

    def __init__(self) -> None:
        self._mode = 0
        self._interval_wiping = False
        self._interval_event = None
        self._wipe_end_event = None
        self._washing = False
        self._after_wash_remaining = 0
        super().__init__()

    def _reset_state(self) -> None:
        self._mode = 0
        self._interval_wiping = False
        self._interval_event = None
        self._wipe_end_event = None
        self._washing = False
        self._after_wash_remaining = 0

    # -- observable state -----------------------------------------------------------

    @property
    def mode(self) -> int:
        return self._mode

    @property
    def ignition_on(self) -> bool:
        return self.rx_signal("IGN_STATUS", "IGN_ST", 0.0) >= 2

    @property
    def motor_running(self) -> bool:
        return self.output_drive("WIPER_MOTOR").driven

    # -- interval machinery ------------------------------------------------------------

    def _cancel_interval(self) -> None:
        if self._interval_event is not None:
            self._interval_event.cancel()
            self._interval_event = None
        if self._wipe_end_event is not None:
            self._wipe_end_event.cancel()
            self._wipe_end_event = None
        self._interval_wiping = False

    def _start_wipe(self) -> None:
        self._interval_wiping = True
        self._wipe_end_event = self.scheduler.schedule_in(
            self.WIPE_DURATION_S, self._end_wipe, name="wipe_end"
        )
        self._apply_outputs()

    def _end_wipe(self) -> None:
        self._interval_wiping = False
        self._wipe_end_event = None
        if self._after_wash_remaining > 0:
            self._after_wash_remaining -= 1
            if self._after_wash_remaining > 0:
                self._start_wipe()
                return
        if self._mode == 1 and self.ignition_on:
            self._interval_event = self.scheduler.schedule_in(
                self.INTERVAL_S, self._start_wipe, name="interval_wipe"
            )
        self._apply_outputs()

    # -- behaviour ----------------------------------------------------------------------

    def _apply_outputs(self) -> None:
        continuous = self._mode in (2, 3) and self.ignition_on
        motor_on = continuous or self._interval_wiping or self._washing
        if motor_on and self.ignition_on:
            self.drive_output("WIPER_MOTOR", OutputDrive.high_side(0.3))
        else:
            self.drive_output("WIPER_MOTOR", OutputDrive.floating())
        if self._mode == 3 and self.ignition_on:
            self.drive_output("WIPER_FAST", OutputDrive.high_side(1.0))
        else:
            self.drive_output("WIPER_FAST", OutputDrive.floating())
        if self._washing and self.ignition_on:
            self.drive_output("WASH_PUMP", OutputDrive.high_side(0.5))
        else:
            self.drive_output("WASH_PUMP", OutputDrive.floating())

    def _evaluate(self) -> None:
        new_mode = int(self.rx_signal("WIPER_COMMAND", "WIPER_MODE", 0.0))
        washing = (
            self.rx_signal("WIPER_COMMAND", "WASH", 0.0) >= 0.5
            or self.contact_closed("WASH_SW", self.CONTACT_THRESHOLD)
        ) and self.ignition_on

        if washing and not self._washing:
            self._after_wash_remaining = self.AFTER_WASH_WIPES
        if not washing and self._washing and self._after_wash_remaining > 0:
            # Washer released: run the follow-up wipes.
            self._start_wipe()
        self._washing = washing

        if new_mode != self._mode or not self.ignition_on:
            self._mode = new_mode
            self._cancel_interval()
            if self._mode == 1 and self.ignition_on:
                self._start_wipe()
        self._apply_outputs()

    def _inputs_changed(self) -> None:
        self._evaluate()

    def _time_advanced(self) -> None:
        self._apply_outputs()
