"""Interior illumination ECU - the paper's running example.

Specified behaviour (derived from the paper's test definition sheet):

* The interior illumination ``INT_ILL`` is a function of the ignition
  status ``IGN_ST``, the door switches ``DS_FL`` / ``DS_FR`` (and the rear
  doors ``DS_RL`` / ``DS_RR`` present in the wiring figure) and the bit
  ``NIGHT`` from the light sensor.
* If ``NIGHT`` is active, the interior illumination is lit while one of the
  doors is open ("Open" status of the door switch), for a maximum duration
  of 300 s.
* During daylight (``NIGHT`` = 0) the illumination stays off.
* Closing all doors switches the illumination off immediately and re-arms
  the 300 s timer.

The door switches are sensed resistively: a closed contact (door open) pulls
the pin towards ground, an open contact (door closed) leaves it floating.
The lamp output is a high-side driver on ``INT_ILL_F`` with its return path
``INT_ILL_R`` switched to ground.
"""

from __future__ import annotations

from .base import EcuModel
from .pins import OutputDrive, Pin, PinKind

__all__ = ["InteriorLightEcu"]


class InteriorLightEcu(EcuModel):
    """Behavioural model of the paper's interior illumination ECU."""

    NAME = "interior_light_ecu"
    PINS = (
        Pin("DS_FL", PinKind.RESISTIVE_INPUT, "door switch front left"),
        Pin("DS_FR", PinKind.RESISTIVE_INPUT, "door switch front right"),
        Pin("DS_RL", PinKind.RESISTIVE_INPUT, "door switch rear left"),
        Pin("DS_RR", PinKind.RESISTIVE_INPUT, "door switch rear right"),
        Pin("INT_ILL_F", PinKind.POWER_OUTPUT, "interior lamp feed (high side)"),
        Pin("INT_ILL_R", PinKind.RETURN_OUTPUT, "interior lamp return (low side)"),
    )
    RX_MESSAGES = ("IGN_STATUS", "LIGHT_SENSOR")
    TX_MESSAGES = ()

    #: Door contact is considered closed (door open) below this resistance [Ohm].
    DOOR_CONTACT_THRESHOLD = 100.0
    #: Automatic switch-off after this many seconds of continuous illumination.
    TIMEOUT_S = 300.0
    #: High-side driver on-resistance [Ohm].
    DRIVER_RESISTANCE = 0.2

    DOOR_PINS = ("DS_FL", "DS_FR", "DS_RL", "DS_RR")

    def __init__(self) -> None:
        self._illumination_on = False
        self._on_since: float | None = None
        super().__init__()

    # -- state ------------------------------------------------------------------

    def _reset_state(self) -> None:
        self._illumination_on = False
        self._on_since = None

    # -- behaviour ----------------------------------------------------------------

    @property
    def any_door_open(self) -> bool:
        """True when any door contact reports "door open"."""
        return any(
            self.contact_closed(pin, self.DOOR_CONTACT_THRESHOLD)
            for pin in self.DOOR_PINS
        )

    @property
    def night(self) -> bool:
        """Last received light sensor state."""
        return self.rx_signal("LIGHT_SENSOR", "NIGHT", 0.0) >= 0.5

    @property
    def ignition(self) -> int:
        """Last received ignition (terminal) status."""
        return int(self.rx_signal("IGN_STATUS", "IGN_ST", 0.0))

    @property
    def illumination_on(self) -> bool:
        """Whether the lamp driver is currently switched on."""
        return self._illumination_on

    def _evaluate(self) -> None:
        door_open = self.any_door_open
        if door_open and self.night:
            if self._on_since is None:
                self._on_since = self.now
            timed_out = (self.now - self._on_since) >= self.TIMEOUT_S
            self._illumination_on = not timed_out
        else:
            # Closing the doors (or daylight) switches the lamp off and
            # re-arms the 300 s timer.
            self._on_since = None
            self._illumination_on = False
        self._apply_outputs()

    def _apply_outputs(self) -> None:
        if self._illumination_on:
            self.drive_output("INT_ILL_F", OutputDrive.high_side(self.DRIVER_RESISTANCE))
        else:
            self.drive_output("INT_ILL_F", OutputDrive.floating())
        # The return path is always switched to ground so the lamp circuit is
        # completed through the ECU.
        self.drive_output("INT_ILL_R", OutputDrive.low_side(0.1))

    def _inputs_changed(self) -> None:
        self._evaluate()

    def _time_advanced(self) -> None:
        self._evaluate()
