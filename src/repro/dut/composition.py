"""Multi-ECU composition: several DUTs on one shared CAN harness.

Single-DUT sheets structurally cannot catch "passes alone, fails composed"
escapes: the stand synthesises every bus stimulus, so a producer that
broadcasts garbage and a consumer that trusts it both look healthy in
isolation.  This module provides the wiring level of compositional testing:

* :class:`EcuAssembly` - an ordered, alias-keyed set of ECU models with
  cross-member pin-collision detection.  It exposes enough of the
  :class:`~repro.dut.base.EcuModel` surface (``name``, ``pins``,
  ``has_pin``, ``pin``, ``reset``) for harness- and campaign-level code to
  treat it like one big DUT.
* :class:`CompositionHarness` - the per-member
  :class:`~repro.dut.harness.TestHarness` instances re-homed onto one
  shared :class:`~repro.can.CanBus` with a single test-stand attachment,
  so every member sees every frame.  Electrical primitives dispatch to the
  member owning the pin; CAN primitives operate on the shared bus.

The interpreter only ever talks to the harness duck-type, so composed runs
reuse the classic interpreter unchanged; the bytecode VM declines composed
signal sets and degrades to the plan path (see ``repro.teststand.vm``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..can import CanBus, CanDatabase, CanFrame
from ..core.errors import CompositionError, HarnessError
from .base import EcuModel
from .harness import TestHarness
from .pins import Pin

__all__ = ["EcuAssembly", "CompositionHarness", "merge_databases"]


def merge_databases(databases: Iterable[CanDatabase]) -> CanDatabase:
    """Merge member CAN databases, deduplicating identical definitions.

    Two members routinely share one body catalogue; a *conflicting*
    redefinition (same name or identifier, different layout) is a wiring
    error and raises :class:`CompositionError`.
    """
    merged = CanDatabase()
    by_name: dict[str, object] = {}
    by_id: dict[int, object] = {}
    for database in databases:
        if database is None:
            continue
        for message in database:
            known = by_name.get(message.name.lower())
            if known is not None or message.can_id in by_id:
                known = known or by_id[message.can_id]
                if message == known:
                    continue
                raise CompositionError(
                    f"conflicting CAN message definition {message.name!r} "
                    f"(id 0x{message.can_id:x}) between composed members"
                )
            merged.add(message)
            by_name[message.name.lower()] = message
            by_id[message.can_id] = message
    return merged


class EcuAssembly:
    """An ordered set of member ECUs, addressed by composition alias."""

    def __init__(self, members: Sequence[tuple[str, EcuModel]], name: str = ""):
        self._members: dict[str, EcuModel] = {}
        self._pin_owner: dict[str, str] = {}
        for alias, ecu in members:
            key = str(alias).lower()
            if not key:
                raise CompositionError("composition member alias must be non-empty")
            if key in self._members:
                raise CompositionError(f"duplicate composition member alias {alias!r}")
            if not isinstance(ecu, EcuModel):
                raise CompositionError(
                    f"composition member {alias!r} is not an EcuModel")
            for pin in ecu.pins:
                owner = self._pin_owner.get(pin.key)
                if owner is not None:
                    raise CompositionError(
                        f"pin {pin.name!r} of member {alias!r} collides with "
                        f"member {owner!r} - adapter pin namespaces must be disjoint"
                    )
                self._pin_owner[pin.key] = key
            self._members[key] = ecu
        if not self._members:
            raise CompositionError("a composition needs at least one member")
        self.name = name or "+".join(self._members)

    # -- structure ---------------------------------------------------------------

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(self._members)

    @property
    def members(self) -> tuple[tuple[str, EcuModel], ...]:
        return tuple(self._members.items())

    def member(self, alias: str) -> EcuModel:
        try:
            return self._members[str(alias).lower()]
        except KeyError as exc:
            raise CompositionError(
                f"composition {self.name!r} has no member {alias!r} "
                f"(members: {', '.join(self._members)})"
            ) from exc

    def __iter__(self) -> Iterator[EcuModel]:
        return iter(self._members.values())

    def __len__(self) -> int:
        return len(self._members)

    # -- EcuModel-compatible surface ----------------------------------------------

    @property
    def pins(self) -> tuple[Pin, ...]:
        return tuple(pin for ecu in self for pin in ecu.pins)

    def has_pin(self, name: str) -> bool:
        return str(name).lower() in self._pin_owner

    def pin(self, name: str) -> Pin:
        return self.owner_of(name)[1].pin(name)

    def owner_of(self, pin: str) -> tuple[str, EcuModel]:
        """(alias, member) owning *pin*; raises like a harness on unknown pins."""
        alias = self._pin_owner.get(str(pin).lower())
        if alias is None:
            raise HarnessError(
                f"composition {self.name!r} has no pin {pin!r} on any member")
        return alias, self._members[alias]

    def reset(self) -> None:
        for ecu in self:
            ecu.reset()

    def __repr__(self) -> str:
        return f"EcuAssembly({self.name!r}, members={list(self._members)})"


class CompositionHarness:
    """Member harnesses joined on one bus, presented as a single harness."""

    def __init__(
        self,
        assembly: EcuAssembly,
        harnesses: Mapping[str, TestHarness],
        *,
        ubatt: float = 12.0,
    ):
        self.ecu = assembly
        self._harnesses: dict[str, TestHarness] = {}
        self.bus = CanBus(name=f"{assembly.name}_can")
        self._stand_node = self.bus.attach("test_stand")
        for alias, _member in assembly.members:
            try:
                harness = harnesses[alias]
            except KeyError as exc:
                raise CompositionError(
                    f"no harness supplied for composition member {alias!r}"
                ) from exc
            if harness.ecu is not assembly.member(alias):
                raise CompositionError(
                    f"harness for member {alias!r} wraps a different ECU instance")
            harness.join_bus(self.bus, node_name=alias,
                             stand_node=self._stand_node)
            self._harnesses[alias] = harness
        self.can_db = merge_databases(
            harness.can_db for harness in self._harnesses.values())
        self._ubatt = float(ubatt)
        self.set_ubatt(ubatt)

    # -- member access -------------------------------------------------------------

    @property
    def members(self) -> tuple[tuple[str, TestHarness], ...]:
        return tuple(self._harnesses.items())

    def member_harness(self, alias: str) -> TestHarness:
        self.ecu.member(alias)  # validates the alias with the richer error
        return self._harnesses[str(alias).lower()]

    def _owner(self, pin: str) -> TestHarness:
        alias, _member = self.ecu.owner_of(pin)
        return self._harnesses[alias]

    # -- supply & clock --------------------------------------------------------------

    @property
    def ubatt(self) -> float:
        return self._ubatt

    def set_ubatt(self, volts: float) -> None:
        if volts < 0:
            raise HarnessError("supply voltage must be non-negative")
        self._ubatt = float(volts)
        for harness in self._harnesses.values():
            harness.set_ubatt(volts)

    @property
    def now(self) -> float:
        return next(iter(self._harnesses.values())).now

    def advance(self, dt: float) -> None:
        for harness in self._harnesses.values():
            harness.advance(dt)

    def reset(self) -> None:
        for harness in self._harnesses.values():
            harness.reset()

    def variables(self) -> dict[str, float]:
        return {"ubatt": self._ubatt, "t": self.now}

    # -- electrical primitives: dispatch to the owning member ---------------------------

    def apply_resistance(self, pin: str, ohms: float) -> float:
        return self._owner(pin).apply_resistance(pin, ohms)

    def release_resistance(self, pin: str) -> None:
        self._owner(pin).release_resistance(pin)

    def apply_voltage(self, pin: str, volts: float) -> float:
        return self._owner(pin).apply_voltage(pin, volts)

    def applied_resistance(self, pin: str) -> float | None:
        return self._owner(pin).applied_resistance(pin)

    def measure_voltage(self, pins: Sequence[str] | str) -> float:
        if isinstance(pins, str):
            pins = (pins,)
        if not pins:
            raise HarnessError("measure_voltage needs at least one pin")
        owners = {self.ecu.owner_of(pin)[0] for pin in pins}
        if len(owners) > 1:
            raise HarnessError(
                "cross-member differential measurement is not supported: "
                f"pins {tuple(pins)!r} span members {sorted(owners)!r}"
            )
        return self._harnesses[owners.pop()].measure_voltage(pins)

    def measure_current(self, pin: str) -> float:
        return self._owner(pin).measure_current(pin)

    def measure_resistance(self, pin: str) -> float:
        return self._owner(pin).measure_resistance(pin)

    # -- CAN: one shared bus, one stand attachment ---------------------------------------

    def send_can_payload(self, message: str, payload: int) -> CanFrame:
        definition = self.can_db.message(message)
        return self._stand_node.transmit(definition.encode_raw(payload))

    def send_can_signal(self, signal: str, value: float) -> CanFrame:
        definition = self.can_db.message_for_signal(signal)
        last = self._stand_node.last_frame(definition.can_id)
        if last is None:
            for _sender, frame in reversed(self.bus.traffic):
                if frame.can_id == definition.can_id:
                    last = frame
                    break
        base = last.as_int() if last is not None else 0
        return self._stand_node.transmit(
            definition.encode({signal: value}, base_payload=base))

    def last_can_payload(self, message: str) -> int | None:
        definition = self.can_db.message(message)
        frame = self._stand_node.last_frame(definition.can_id)
        return frame.as_int() if frame is not None else None

    def last_can_signal(self, message: str, signal: str) -> float | None:
        definition = self.can_db.message(message)
        frame = self._stand_node.last_frame(definition.can_id)
        if frame is None:
            return None
        return definition.decode(frame).get(definition.signal(signal).name)

    def __repr__(self) -> str:
        return (
            f"CompositionHarness({self.ecu.name!r}, "
            f"members={[alias for alias, _ in self.members]}, "
            f"ubatt={self._ubatt} V)"
        )
