"""Behavioural ECU model framework.

The paper's method was developed to test real control units ("successfully
applied to two ECUs of the next S-class").  For a self-contained
reproduction the physical ECU is replaced by a behavioural model that

* exposes the same electrical boundary: named pins whose resistance/voltage
  can be imposed from outside and output pins whose drive state can be
  observed (see :class:`~repro.dut.pins.OutputDrive`),
* exchanges the same CAN messages it would in the vehicle,
* runs against simulated time, with internal timers handled by the
  discrete-event kernel (:mod:`repro.dut.events`).

Concrete ECUs (interior light, central locking, window lifter, wiper,
exterior light) subclass :class:`EcuModel` and implement the three hooks
``_inputs_changed``, ``_time_advanced`` and ``_reset_state``.
"""

from __future__ import annotations

import abc
import math
from typing import Mapping

from ..core.errors import HarnessError
from .events import EventScheduler
from .pins import OutputDrive, Pin, PinKind

__all__ = ["EcuModel"]


class EcuModel(abc.ABC):
    """Base class of all behavioural ECU models.

    Subclasses declare their electrical and bus boundary as class attributes:

    ``PINS``
        tuple of :class:`~repro.dut.pins.Pin`,
    ``RX_MESSAGES`` / ``TX_MESSAGES``
        names of the CAN messages consumed / produced.
    """

    #: Name of the ECU model (overridden by subclasses).
    NAME: str = "ecu"
    #: Electrical pins of the ECU.
    PINS: tuple[Pin, ...] = ()
    #: CAN messages consumed by the ECU.
    RX_MESSAGES: tuple[str, ...] = ()
    #: CAN messages produced by the ECU.
    TX_MESSAGES: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.scheduler = EventScheduler()
        self._pins: dict[str, Pin] = {pin.key: pin for pin in self.PINS}
        self._resistances: dict[str, float] = {}
        self._voltages: dict[str, float] = {}
        self._rx_values: dict[str, dict[str, float]] = {}
        self._tx_queue: list[tuple[str, dict[str, float]]] = []
        self._output_drives: dict[str, OutputDrive] = {}
        self._powered = True
        self._reset_state()
        self._inputs_changed()

    # -- identity / structure -------------------------------------------------

    @property
    def name(self) -> str:
        return self.NAME

    @property
    def now(self) -> float:
        """Current simulated time as seen by the ECU."""
        return self.scheduler.now

    @property
    def pins(self) -> tuple[Pin, ...]:
        return tuple(self._pins.values())

    def pin(self, name: str) -> Pin:
        try:
            return self._pins[str(name).lower()]
        except KeyError as exc:
            raise HarnessError(f"{self.NAME}: unknown pin {name!r}") from exc

    def has_pin(self, name: str) -> bool:
        return str(name).lower() in self._pins

    # -- harness-facing API ----------------------------------------------------

    def reset(self) -> None:
        """Return the ECU to its power-on state (keeps the current time)."""
        self.scheduler.cancel_all()
        self._resistances.clear()
        self._voltages.clear()
        self._rx_values.clear()
        self._tx_queue.clear()
        self._output_drives.clear()
        self._reset_state()
        self._inputs_changed()

    def set_power(self, powered: bool) -> None:
        """Switch the supply of the ECU on or off."""
        self._powered = bool(powered)
        if not self._powered:
            self._output_drives.clear()
        self._inputs_changed()

    @property
    def powered(self) -> bool:
        return self._powered

    def set_pin_resistance(self, pin: str, ohms: float) -> None:
        """Impose an external resistance-to-ground on an input pin."""
        key = self.pin(pin).key
        self._resistances[key] = float(ohms)
        self._inputs_changed()

    def clear_pin_resistance(self, pin: str) -> None:
        """Remove the external resistance (open circuit)."""
        key = self.pin(pin).key
        self._resistances.pop(key, None)
        self._inputs_changed()

    def set_pin_voltage(self, pin: str, volts: float) -> None:
        """Impose an external voltage on an input pin."""
        key = self.pin(pin).key
        self._voltages[key] = float(volts)
        self._inputs_changed()

    def receive_message(self, message: str, values: Mapping[str, float]) -> None:
        """Deliver decoded CAN signal values of one message to the ECU."""
        name = str(message).lower()
        if self.RX_MESSAGES and name not in {m.lower() for m in self.RX_MESSAGES}:
            # Unknown messages are ignored, like a real node filtering by id.
            return
        current = self._rx_values.setdefault(name, {})
        for key, value in values.items():
            current[str(key).lower()] = float(value)
        self._inputs_changed()

    def advance_to(self, time: float) -> None:
        """Advance the ECU's simulated time (fires due timers)."""
        self.scheduler.advance_to(time)
        self._time_advanced()

    def output_drive(self, pin: str) -> OutputDrive:
        """How the ECU currently drives *pin* (floating when unpowered)."""
        key = self.pin(pin).key
        if not self._powered:
            return OutputDrive.floating()
        return self._output_drives.get(key, OutputDrive.floating())

    def pending_transmissions(self) -> list[tuple[str, dict[str, float]]]:
        """Messages queued for transmission since the last call (drained)."""
        queued = self._tx_queue
        self._tx_queue = []
        return queued

    # -- helpers for subclasses ------------------------------------------------

    def resistance_at(self, pin: str, default: float = math.inf) -> float:
        """Externally applied resistance at *pin* (infinite when unconnected)."""
        return self._resistances.get(str(pin).lower(), default)

    def voltage_at(self, pin: str, default: float = 0.0) -> float:
        """Externally applied voltage at *pin*."""
        return self._voltages.get(str(pin).lower(), default)

    def rx_signal(self, message: str, signal: str, default: float = 0.0) -> float:
        """Last received value of a CAN signal."""
        return self._rx_values.get(str(message).lower(), {}).get(str(signal).lower(), default)

    def contact_closed(self, pin: str, threshold: float = 100.0) -> bool:
        """Interpret a resistive input: resistance below *threshold* = closed."""
        return self.resistance_at(pin) <= threshold

    def drive_output(self, pin: str, drive: OutputDrive) -> None:
        """Set the drive state of an output pin."""
        target = self.pin(pin)
        if not target.is_output:
            raise HarnessError(f"{self.NAME}: pin {pin!r} is not an output")
        self._output_drives[target.key] = drive

    def transmit(self, message: str, values: Mapping[str, float]) -> None:
        """Queue a CAN message for transmission (picked up by the harness)."""
        self._tx_queue.append((str(message).lower(), {str(k).lower(): float(v) for k, v in values.items()}))

    # -- subclass hooks ----------------------------------------------------------

    @abc.abstractmethod
    def _reset_state(self) -> None:
        """Initialise (or re-initialise) the internal state variables."""

    @abc.abstractmethod
    def _inputs_changed(self) -> None:
        """Recompute outputs after any input (pin, voltage, CAN) changed."""

    def _time_advanced(self) -> None:
        """Recompute outputs after simulated time moved forward.

        The default implementation simply re-runs the input evaluation,
        which is correct for models whose timers are polled rather than
        event-driven.
        """
        self._inputs_changed()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(now={self.now})"
