"""Central locking ECU.

A second body controller used by the reuse and fault-injection experiments.
Behaviour:

* Lock / unlock requests arrive over CAN (``LOCK_COMMAND.LOCK_REQ``) or from
  the driver-door key switch (resistive input ``KEY_SW``: contact closed =
  key turned to "lock").
* Above an auto-lock speed threshold (15 km/h from ``VEHICLE_SPEED.SPEED``)
  the vehicle locks itself once per driving cycle.
* Unlocking is refused while the vehicle is moving faster than a safety
  threshold (120 km/h) - an intentionally non-obvious requirement so the
  fault-injection campaign has something subtle to break.
* The lock state is reported on CAN (``LOCK_STATUS.LOCKED``) and mirrored on
  the ``LOCK_LED`` output so a test stand without a CAN receiver can still
  check it with a DVM.
"""

from __future__ import annotations

from .base import EcuModel
from .pins import OutputDrive, Pin, PinKind

__all__ = ["CentralLockingEcu"]


class CentralLockingEcu(EcuModel):
    """Behavioural model of a central locking control unit."""

    NAME = "central_locking_ecu"
    PINS = (
        Pin("KEY_SW", PinKind.RESISTIVE_INPUT, "driver door key switch (lock position)"),
        Pin("UNLOCK_SW", PinKind.RESISTIVE_INPUT, "driver door key switch (unlock position)"),
        Pin("LOCK_LED", PinKind.SIGNAL_OUTPUT, "lock indicator LED"),
        Pin("LOCK_ACT", PinKind.POWER_OUTPUT, "lock actuator supply"),
    )
    RX_MESSAGES = ("LOCK_COMMAND", "VEHICLE_SPEED", "IGN_STATUS")
    TX_MESSAGES = ("LOCK_STATUS",)

    #: Key-switch contact threshold [Ohm].
    CONTACT_THRESHOLD = 100.0
    #: Vehicle locks itself above this speed [km/h].
    AUTO_LOCK_SPEED = 15.0
    #: Unlock requests are ignored above this speed [km/h].
    UNLOCK_INHIBIT_SPEED = 120.0
    #: Actuator drive pulse duration [s].
    ACTUATOR_PULSE_S = 0.3

    def __init__(self) -> None:
        self._locked = False
        self._auto_locked_this_cycle = False
        self._last_lock_req = 0
        self._key_lock_was_closed = False
        self._key_unlock_was_closed = False
        self._actuator_off_event = None
        super().__init__()

    def _reset_state(self) -> None:
        self._locked = False
        self._auto_locked_this_cycle = False
        self._last_lock_req = 0
        self._key_lock_was_closed = False
        self._key_unlock_was_closed = False
        self._actuator_off_event = None

    # -- observable state ---------------------------------------------------------

    @property
    def locked(self) -> bool:
        """Current lock state."""
        return self._locked

    @property
    def speed(self) -> float:
        """Last received vehicle speed in km/h."""
        return self.rx_signal("VEHICLE_SPEED", "SPEED", 0.0)

    @property
    def ignition(self) -> int:
        return int(self.rx_signal("IGN_STATUS", "IGN_ST", 0.0))

    # -- behaviour ------------------------------------------------------------------

    def _set_locked(self, locked: bool) -> None:
        if locked == self._locked:
            return
        self._locked = locked
        self.transmit("LOCK_STATUS", {"LOCKED": 1.0 if locked else 0.0})
        # Pulse the actuator output for a short time.
        self.drive_output("LOCK_ACT", OutputDrive.high_side(0.3))
        if self._actuator_off_event is not None:
            self._actuator_off_event.cancel()
        self._actuator_off_event = self.scheduler.schedule_in(
            self.ACTUATOR_PULSE_S, self._actuator_off, name="lock_actuator_off"
        )

    def _actuator_off(self) -> None:
        self.drive_output("LOCK_ACT", OutputDrive.floating())
        self._actuator_off_event = None

    def _evaluate(self) -> None:
        ignition_on = self.ignition >= 2
        speed = self.speed

        # Ignition off re-arms the once-per-cycle auto lock.
        if not ignition_on:
            self._auto_locked_this_cycle = False

        # Edge-detect the CAN lock request so a held value does not re-trigger.
        lock_req = int(self.rx_signal("LOCK_COMMAND", "LOCK_REQ", 0.0))
        if lock_req != self._last_lock_req:
            self._last_lock_req = lock_req
            if lock_req == 1:
                self._set_locked(True)
            elif lock_req == 2 and speed <= self.UNLOCK_INHIBIT_SPEED:
                self._set_locked(False)

        # Edge-detect the key switch contacts.
        key_lock = self.contact_closed("KEY_SW", self.CONTACT_THRESHOLD)
        if key_lock and not self._key_lock_was_closed:
            self._set_locked(True)
        self._key_lock_was_closed = key_lock

        key_unlock = self.contact_closed("UNLOCK_SW", self.CONTACT_THRESHOLD)
        if key_unlock and not self._key_unlock_was_closed:
            if speed <= self.UNLOCK_INHIBIT_SPEED:
                self._set_locked(False)
        self._key_unlock_was_closed = key_unlock

        # Auto lock above threshold, once per driving cycle.
        if ignition_on and speed >= self.AUTO_LOCK_SPEED and not self._auto_locked_this_cycle:
            self._auto_locked_this_cycle = True
            self._set_locked(True)

        # The LED mirrors the lock state continuously.
        if self._locked:
            self.drive_output("LOCK_LED", OutputDrive.high_side(1.0))
        else:
            self.drive_output("LOCK_LED", OutputDrive.floating())

    def _inputs_changed(self) -> None:
        self._evaluate()

    def _time_advanced(self) -> None:
        self._evaluate()
