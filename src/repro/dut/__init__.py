"""Device-under-test substrate: behavioural ECU models, wiring and simulation."""

from .base import EcuModel
from .central_locking import CentralLockingEcu
from .composition import CompositionHarness, EcuAssembly, merge_databases
from .events import Event, EventScheduler
from .exterior_light import ExteriorLightEcu
from .harness import LoadSpec, TestHarness
from .instrument_cluster import InstrumentClusterEcu
from .interior_light import InteriorLightEcu
from .messages import body_can_database
from .network import GROUND, Network
from .pins import OutputDrive, Pin, PinKind
from .window_lifter import WindowLifterEcu
from .wiper import WiperEcu

__all__ = [
    "EcuModel",
    "Event",
    "EventScheduler",
    "Pin",
    "PinKind",
    "OutputDrive",
    "Network",
    "GROUND",
    "TestHarness",
    "LoadSpec",
    "CompositionHarness",
    "EcuAssembly",
    "merge_databases",
    "body_can_database",
    "InteriorLightEcu",
    "CentralLockingEcu",
    "InstrumentClusterEcu",
    "WindowLifterEcu",
    "WiperEcu",
    "ExteriorLightEcu",
]
