"""Device-under-test substrate: behavioural ECU models, wiring and simulation."""

from .base import EcuModel
from .central_locking import CentralLockingEcu
from .events import Event, EventScheduler
from .exterior_light import ExteriorLightEcu
from .harness import LoadSpec, TestHarness
from .interior_light import InteriorLightEcu
from .messages import body_can_database
from .network import GROUND, Network
from .pins import OutputDrive, Pin, PinKind
from .window_lifter import WindowLifterEcu
from .wiper import WiperEcu

__all__ = [
    "EcuModel",
    "Event",
    "EventScheduler",
    "Pin",
    "PinKind",
    "OutputDrive",
    "Network",
    "GROUND",
    "TestHarness",
    "LoadSpec",
    "body_can_database",
    "InteriorLightEcu",
    "CentralLockingEcu",
    "WindowLifterEcu",
    "WiperEcu",
    "ExteriorLightEcu",
]
