"""DUT harness: the wiring between a virtual test stand and an ECU model.

The harness plays the role of the physical adapter cable plus the laboratory
power supply: it owns the simulated battery voltage, the external loads
(lamps, motors), the CAN bus connecting the ECU to the test stand's CAN
interface, and the simulated clock.  Instruments never talk to the ECU model
directly - they only call the harness' electrical/bus primitives, exactly
like real instruments only ever see the connector:

* :meth:`apply_resistance` / :meth:`release_resistance`  (resistor decade)
* :meth:`apply_voltage`                                   (power supply / generator)
* :meth:`measure_voltage` / :meth:`measure_current`        (DVM, current probe)
* :meth:`send_can_payload` / :meth:`last_can_payload`      (CAN interface)
* :meth:`advance`                                          (test sequencer clock)

Voltages are computed with a small nodal-analysis network
(:mod:`repro.dut.network`) combining the ECU's driver stages, the configured
loads, the externally applied resistances/voltages and the meter impedance.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..can import CanBus, CanDatabase, CanFrame
from ..core.errors import HarnessError
from .base import EcuModel
from .network import GROUND, Network

__all__ = ["LoadSpec", "TestHarness"]


class LoadSpec:
    """External load wired between two DUT pins (or one pin and ground)."""

    def __init__(self, pin_a: str, pin_b: str = GROUND, ohms: float = 10.0, name: str = ""):
        if ohms <= 0:
            raise HarnessError("load resistance must be positive")
        self.pin_a = str(pin_a).lower()
        self.pin_b = str(pin_b).lower()
        self.ohms = float(ohms)
        self.name = name or f"load_{self.pin_a}_{self.pin_b}"

    def __repr__(self) -> str:
        return f"LoadSpec({self.pin_a!r}, {self.pin_b!r}, {self.ohms} Ohm)"


class TestHarness:
    """Wiring, supply, loads, bus and clock around one ECU model."""

    #: Input impedance of the voltage-measuring instrument [Ohm].
    DVM_IMPEDANCE = 10.0e6

    def __init__(
        self,
        ecu: EcuModel,
        can_db: CanDatabase | None = None,
        *,
        ubatt: float = 12.0,
        loads: Sequence[LoadSpec] = (),
        dvm_impedance: float | None = None,
    ):
        self.ecu = ecu
        self.can_db = can_db
        self._ubatt = float(ubatt)
        self._loads = list(loads)
        self._dvm_impedance = float(dvm_impedance or self.DVM_IMPEDANCE)
        self._now = 0.0
        self._applied_resistances: dict[str, float] = {}
        self._applied_voltages: dict[str, float] = {}

        self.bus = CanBus(name=f"{ecu.name}_can")
        self._ecu_node = self.bus.attach(ecu.name, listener=self._deliver_to_ecu)
        self._stand_node = self.bus.attach("test_stand")

    def join_bus(self, bus: CanBus, *, node_name: str | None = None,
                 stand_node=None):
        """Re-home this harness onto a shared bus (multi-ECU composition).

        The private per-harness bus is abandoned: the ECU re-attaches to
        *bus* (as *node_name* when given, so compositions can namespace
        members), and the stand side either attaches its own node or - when
        a shared *stand_node* is passed - reuses the composition's single
        test-stand attachment so every member sees the same traffic.
        Returns the new ECU node.
        """
        self.bus.detach(self._ecu_node)
        self.bus.detach(self._stand_node)
        self.bus = bus
        self._ecu_node = bus.attach(node_name or self.ecu.name,
                                    listener=self._deliver_to_ecu)
        self._stand_node = (stand_node if stand_node is not None
                            else bus.attach("test_stand"))
        return self._ecu_node

    # -- supply & clock ---------------------------------------------------------

    @property
    def ubatt(self) -> float:
        """Battery supply voltage of the DUT in volts."""
        return self._ubatt

    def set_ubatt(self, volts: float) -> None:
        if volts < 0:
            raise HarnessError("supply voltage must be non-negative")
        self._ubatt = float(volts)
        self.ecu.set_power(volts > 6.0)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> None:
        """Advance simulated time by *dt* seconds (fires ECU timers)."""
        if dt < 0:
            raise HarnessError("cannot advance time backwards")
        self._now += float(dt)
        self.bus.set_time(self._now)
        self.ecu.advance_to(self._now)
        self._flush_ecu_transmissions()

    def reset(self) -> None:
        """Reset the DUT and remove every applied stimulus (time keeps running)."""
        self._applied_resistances.clear()
        self._applied_voltages.clear()
        self.ecu.reset()
        self._stand_node.clear()
        self._ecu_node.clear()

    # -- variables for the interpreter -------------------------------------------

    def variables(self) -> dict[str, float]:
        """Stand variables available to limit expressions (``ubatt``, ``t``)."""
        return {"ubatt": self._ubatt, "t": self._now}

    # -- electrical stimuli -------------------------------------------------------

    def _pin_key(self, pin: str) -> str:
        if not self.ecu.has_pin(pin):
            raise HarnessError(f"DUT {self.ecu.name!r} has no pin {pin!r}")
        return str(pin).lower()

    def apply_resistance(self, pin: str, ohms: float) -> float:
        """Apply a resistance between *pin* and ground; returns the applied value."""
        key = self._pin_key(pin)
        value = float(ohms)
        if value < 0:
            raise HarnessError("applied resistance must be non-negative")
        self._applied_resistances[key] = value
        self._applied_voltages.pop(key, None)
        self.ecu.set_pin_resistance(key, value)
        return value

    def release_resistance(self, pin: str) -> None:
        """Remove an applied resistance (open circuit)."""
        key = self._pin_key(pin)
        self._applied_resistances.pop(key, None)
        self.ecu.clear_pin_resistance(key)

    def apply_voltage(self, pin: str, volts: float) -> float:
        """Apply a voltage between *pin* and ground; returns the applied value."""
        key = self._pin_key(pin)
        self._applied_voltages[key] = float(volts)
        self._applied_resistances.pop(key, None)
        self.ecu.set_pin_voltage(key, float(volts))
        return float(volts)

    def applied_resistance(self, pin: str) -> float | None:
        """Resistance currently applied to *pin* (``None`` when unconnected)."""
        return self._applied_resistances.get(str(pin).lower())

    # -- electrical measurements ----------------------------------------------------

    def _build_network(self, *, meter_pins: Sequence[str] = ()) -> Network:
        network = Network()
        network.add_voltage_source("vbat", GROUND, self._ubatt)
        # ECU driver stages.
        for pin in self.ecu.pins:
            network.node(pin.key)
            drive = self.ecu.output_drive(pin.name) if pin.is_output else None
            if drive is not None and drive.driven:
                network.add_thevenin(pin.key, drive.level * self._ubatt, drive.resistance)
        # External loads.
        for load in self._loads:
            network.add_resistor(load.pin_a, load.pin_b, load.ohms)
        # Test-stand stimuli.
        for pin, ohms in self._applied_resistances.items():
            network.add_resistor(pin, GROUND, ohms)
        for pin, volts in self._applied_voltages.items():
            network.add_voltage_source(pin, GROUND, volts)
        # Meter impedance.
        if len(meter_pins) == 1:
            network.add_resistor(str(meter_pins[0]).lower(), GROUND, self._dvm_impedance)
        elif len(meter_pins) >= 2:
            network.add_resistor(
                str(meter_pins[0]).lower(), str(meter_pins[1]).lower(), self._dvm_impedance
            )
        return network

    def measure_voltage(self, pins: Sequence[str] | str) -> float:
        """Voltage a DVM connected to *pins* would read.

        One pin measures against ground; two pins measure differentially
        (e.g. ``INT_ILL_F`` against ``INT_ILL_R`` in the paper's circuit).
        """
        if isinstance(pins, str):
            pins = (pins,)
        if not pins:
            raise HarnessError("measure_voltage needs at least one pin")
        keys = [self._pin_key(pin) for pin in pins]
        network = self._build_network(meter_pins=keys)
        reference = keys[1] if len(keys) > 1 else GROUND
        return network.voltage_between(keys[0], reference)

    def measure_current(self, pin: str) -> float:
        """Current sourced by the ECU driver on *pin* in amperes."""
        key = self._pin_key(pin)
        drive = self.ecu.output_drive(key)
        if not drive.driven:
            return 0.0
        network = self._build_network()
        pin_voltage = network.voltage_between(key, GROUND)
        return (drive.level * self._ubatt - pin_voltage) / drive.resistance

    def measure_resistance(self, pin: str) -> float:
        """Resistance to ground seen at *pin* from the outside.

        Computed by probing the network with a 1 mA test current source
        approximation (a 1 kOhm series probe from a 1 V source) while the
        battery is replaced by a short - adequate for contact checks.
        """
        key = self._pin_key(pin)
        drive = self.ecu.output_drive(key) if self.ecu.pin(key).is_output else None
        if drive is not None and drive.driven:
            return drive.resistance
        applied = self._applied_resistances.get(key)
        if applied is not None:
            return applied
        return math.inf

    # -- CAN ------------------------------------------------------------------------

    def _require_db(self) -> CanDatabase:
        if self.can_db is None:
            raise HarnessError("this harness has no CAN database configured")
        return self.can_db

    def _deliver_to_ecu(self, frame: CanFrame) -> None:
        if self.can_db is None:
            return
        try:
            message = self.can_db.message_by_id(frame.can_id)
        except Exception:
            return
        self.ecu.receive_message(message.name, message.decode(frame))
        self._flush_ecu_transmissions()

    def _flush_ecu_transmissions(self) -> None:
        if self.can_db is None:
            return
        for message_name, values in self.ecu.pending_transmissions():
            try:
                message = self.can_db.message(message_name)
            except Exception:
                continue
            self._ecu_node.transmit(message.encode(values))

    def send_can_payload(self, message: str, payload: int) -> CanFrame:
        """Transmit *message* with a raw integer payload (the ``put_can`` path)."""
        definition = self._require_db().message(message)
        frame = definition.encode_raw(payload)
        return self._stand_node.transmit(frame)

    def send_can_signal(self, signal: str, value: float) -> CanFrame:
        """Transmit the message carrying *signal* with the given physical value.

        Other signals of the message keep the last transmitted payload so that
        updating ``NIGHT`` does not clobber ``BRIGHTNESS``.
        """
        database = self._require_db()
        definition = database.message_for_signal(signal)
        base = 0
        last = self._stand_node.last_frame(definition.can_id)
        if last is None:
            for sender, frame in reversed(self.bus.traffic):
                if frame.can_id == definition.can_id:
                    last = frame
                    break
        if last is not None:
            base = last.as_int()
        frame = definition.encode({signal: value}, base_payload=base)
        return self._stand_node.transmit(frame)

    def last_can_payload(self, message: str) -> int | None:
        """Most recent payload of *message* received from the DUT."""
        definition = self._require_db().message(message)
        frame = self._stand_node.last_frame(definition.can_id)
        return frame.as_int() if frame is not None else None

    def last_can_signal(self, message: str, signal: str) -> float | None:
        """Most recent decoded value of *signal* received from the DUT."""
        definition = self._require_db().message(message)
        frame = self._stand_node.last_frame(definition.can_id)
        if frame is None:
            return None
        return definition.decode(frame).get(definition.signal(signal).name)

    # -- introspection ------------------------------------------------------------------

    @property
    def loads(self) -> tuple[LoadSpec, ...]:
        return tuple(self._loads)

    def add_load(self, load: LoadSpec) -> None:
        """Wire an additional external load."""
        for pin in (load.pin_a, load.pin_b):
            if pin != GROUND and not self.ecu.has_pin(pin):
                raise HarnessError(f"load references unknown pin {pin!r}")
        self._loads.append(load)

    def __repr__(self) -> str:
        return (
            f"TestHarness(ecu={self.ecu.name!r}, ubatt={self._ubatt} V, "
            f"loads={len(self._loads)}, now={self._now}s)"
        )
