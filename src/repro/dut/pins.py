"""DUT pin model.

A pin is the physical attachment point between the device under test and the
test-stand wiring.  Pins are grouped by their electrical role; the role
determines which stimuli make sense (a resistive input is driven by a
resistor decade, a power output is measured by a DVM) and how the harness
translates between the test stand and the behavioural ECU model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.errors import HarnessError

__all__ = ["PinKind", "Pin", "OutputDrive"]


class PinKind(enum.Enum):
    """Electrical role of a DUT pin."""

    SUPPLY = "supply"                    #: battery supply input (KL30/KL15)
    GROUND = "ground"                    #: ground connection (KL31)
    RESISTIVE_INPUT = "resistive_input"  #: contact sensed through its resistance
    ANALOG_INPUT = "analog_input"        #: voltage-sensing input
    DIGITAL_INPUT = "digital_input"      #: logic-level input
    POWER_OUTPUT = "power_output"        #: high-side driver output (lamps, motors)
    RETURN_OUTPUT = "return_output"      #: low-side return path of a load
    SIGNAL_OUTPUT = "signal_output"      #: low-current status output (LED, logic)


@dataclass(frozen=True)
class Pin:
    """One named DUT pin."""

    name: str
    kind: PinKind
    description: str = ""

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise HarnessError("pin needs a name")
        # Pins are immutable and looked up on every simulated measurement;
        # precompute the derived views once instead of per access.
        object.__setattr__(self, "_key", self.name.lower())
        object.__setattr__(self, "_is_input", self.kind in (
            PinKind.RESISTIVE_INPUT,
            PinKind.ANALOG_INPUT,
            PinKind.DIGITAL_INPUT,
            PinKind.SUPPLY,
        ))
        object.__setattr__(self, "_is_output", self.kind in (
            PinKind.POWER_OUTPUT,
            PinKind.RETURN_OUTPUT,
            PinKind.SIGNAL_OUTPUT,
        ))

    @property
    def key(self) -> str:
        """Canonical lower-case lookup key."""
        return self._key

    @property
    def is_input(self) -> bool:
        """True when the test stand stimulates this pin."""
        return self._is_input

    @property
    def is_output(self) -> bool:
        """True when the DUT drives this pin."""
        return self._is_output

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class OutputDrive:
    """How the ECU currently drives one of its output pins.

    Attributes
    ----------
    level:
        Driven level as a fraction of the supply voltage (1.0 = high-side
        switch closed to battery, 0.0 = pulled to ground).
    resistance:
        Source resistance of the driver stage in ohms.
    driven:
        ``False`` means the driver is off / high-impedance; *level* and
        *resistance* are then ignored by the harness.
    """

    level: float = 0.0
    resistance: float = 0.1
    driven: bool = True

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise HarnessError("driver resistance must be positive")
        if not -0.5 <= self.level <= 1.5:
            raise HarnessError(f"drive level {self.level} outside plausible range")

    @classmethod
    def high_side(cls, resistance: float = 0.2) -> "OutputDrive":
        """Driver closed to the battery rail."""
        return cls(level=1.0, resistance=resistance, driven=True)

    @classmethod
    def low_side(cls, resistance: float = 0.1) -> "OutputDrive":
        """Driver closed to ground."""
        return cls(level=0.0, resistance=resistance, driven=True)

    @classmethod
    def floating(cls) -> "OutputDrive":
        """Driver off (high impedance).

        Returns a shared immutable instance: every un-driven pin of every
        measurement asks for this, so one object serves them all.
        """
        return _FLOATING


#: The one shared high-impedance drive state (see :meth:`OutputDrive.floating`).
_FLOATING = OutputDrive(level=0.0, resistance=1.0, driven=False)
