"""Exterior lighting ECU.

Behaviour:

* The light switch position arrives over CAN (``LIGHT_SWITCH.LIGHT_SW``):
  0 = off, 1 = automatic, 2 = on.
* Low beam is driven when the switch is "on", or when it is "automatic" and
  the light sensor reports darkness (``LIGHT_SENSOR.NIGHT``); ignition must
  be in "run".
* Daytime running lights (DRL) are driven whenever the ignition is in "run"
  and the low beam is off.
* Position (parking) lights follow the low beam and additionally can be
  requested with ignition off via the resistive ``PARK_SW`` input.
"""

from __future__ import annotations

from .base import EcuModel
from .pins import OutputDrive, Pin, PinKind

__all__ = ["ExteriorLightEcu"]


class ExteriorLightEcu(EcuModel):
    """Behavioural model of an exterior lighting control unit."""

    NAME = "exterior_light_ecu"
    PINS = (
        Pin("PARK_SW", PinKind.RESISTIVE_INPUT, "parking light request switch"),
        Pin("LOW_BEAM", PinKind.POWER_OUTPUT, "low beam supply"),
        Pin("DRL", PinKind.POWER_OUTPUT, "daytime running light supply"),
        Pin("POSITION_LIGHT", PinKind.POWER_OUTPUT, "position light supply"),
    )
    RX_MESSAGES = ("LIGHT_SWITCH", "LIGHT_SENSOR", "IGN_STATUS")
    TX_MESSAGES = ()

    CONTACT_THRESHOLD = 100.0

    def __init__(self) -> None:
        self._low_beam = False
        self._drl = False
        self._position = False
        super().__init__()

    def _reset_state(self) -> None:
        self._low_beam = False
        self._drl = False
        self._position = False

    # -- observable state -----------------------------------------------------------

    @property
    def low_beam_on(self) -> bool:
        return self._low_beam

    @property
    def drl_on(self) -> bool:
        return self._drl

    @property
    def ignition(self) -> int:
        return int(self.rx_signal("IGN_STATUS", "IGN_ST", 0.0))

    @property
    def night(self) -> bool:
        return self.rx_signal("LIGHT_SENSOR", "NIGHT", 0.0) >= 0.5

    # -- behaviour --------------------------------------------------------------------

    def _evaluate(self) -> None:
        ignition_run = self.ignition >= 2
        switch = int(self.rx_signal("LIGHT_SWITCH", "LIGHT_SW", 0.0))
        park_requested = self.contact_closed("PARK_SW", self.CONTACT_THRESHOLD)

        self._low_beam = ignition_run and (switch == 2 or (switch == 1 and self.night))
        self._drl = ignition_run and not self._low_beam
        self._position = self._low_beam or park_requested

        self.drive_output(
            "LOW_BEAM",
            OutputDrive.high_side(0.2) if self._low_beam else OutputDrive.floating(),
        )
        self.drive_output(
            "DRL",
            OutputDrive.high_side(0.2) if self._drl else OutputDrive.floating(),
        )
        self.drive_output(
            "POSITION_LIGHT",
            OutputDrive.high_side(0.5) if self._position else OutputDrive.floating(),
        )

    def _inputs_changed(self) -> None:
        self._evaluate()

    def _time_advanced(self) -> None:
        self._evaluate()
