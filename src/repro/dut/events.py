"""A small discrete-event kernel used by the behavioural ECU models.

ECU behaviour is dominated by timers (the paper's interior illumination
switches off after 300 s; wipers run interval cycles; locks re-arm after a
timeout).  The kernel is a classic time-ordered event queue: callbacks are
scheduled at absolute simulated times and executed in order when the clock
is advanced.  Ties are broken by insertion order so behaviour is fully
deterministic, which the property-based tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..core.errors import ReproError

__all__ = ["Event", "EventScheduler"]


class SchedulerError(ReproError):
    """Raised for misuse of the event scheduler (e.g. scheduling in the past)."""


@dataclass(order=True)
class _QueueEntry:
    time: float
    sequence: int
    event: "Event" = field(compare=False)


class Event:
    """Handle for one scheduled callback; can be cancelled before it fires."""

    __slots__ = ("time", "name", "_callback", "_cancelled", "_fired")

    def __init__(self, time: float, callback: Callable[[], None], name: str = ""):
        self.time = float(time)
        self.name = name
        self._callback = callback
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still going to fire."""
        return not self._cancelled and not self._fired

    def _fire(self) -> None:
        if self._cancelled or self._fired:
            return
        self._fired = True
        self._callback()

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"Event(t={self.time}, name={self.name!r}, {state})"


class EventScheduler:
    """Time-ordered event queue with an explicit simulated clock."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[_QueueEntry] = []
        self._counter = itertools.count()
        self._fired_count = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_count(self) -> int:
        """Number of events still waiting to fire (excluding cancelled ones)."""
        return sum(1 for entry in self._queue if entry.event.pending)

    @property
    def fired_count(self) -> int:
        """Number of events executed so far."""
        return self._fired_count

    def schedule_at(self, time: float, callback: Callable[[], None], *, name: str = "") -> Event:
        """Schedule *callback* at absolute simulated time *time*."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time, callback, name)
        heapq.heappush(self._queue, _QueueEntry(event.time, next(self._counter), event))
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None], *, name: str = "") -> Event:
        """Schedule *callback* after *delay* seconds of simulated time."""
        if delay < 0:
            raise SchedulerError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, name=name)

    def next_event_time(self) -> float | None:
        """Time of the earliest pending event, or ``None`` when idle."""
        while self._queue and not self._queue[0].event.pending:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def advance_to(self, time: float) -> int:
        """Advance the clock to *time*, firing every due event in order.

        Returns the number of events fired.  The clock never moves backwards;
        advancing to an earlier time is a no-op.
        """
        if time < self._now:
            return 0
        fired = 0
        while True:
            next_time = self.next_event_time()
            if next_time is None or next_time > time:
                break
            entry = heapq.heappop(self._queue)
            # The clock moves to the event's time before the callback runs so
            # that callbacks scheduling follow-up events see a consistent now.
            self._now = max(self._now, entry.time)
            entry.event._fire()
            self._fired_count += 1
            fired += 1
        self._now = max(self._now, float(time))
        return fired

    def advance_by(self, delta: float) -> int:
        """Advance the clock by *delta* seconds (see :meth:`advance_to`)."""
        if delta < 0:
            raise SchedulerError(f"cannot advance time backwards by {delta}")
        return self.advance_to(self._now + delta)

    def cancel_all(self) -> None:
        """Cancel every pending event (used on ECU reset)."""
        for entry in self._queue:
            entry.event.cancel()
        self._queue.clear()

    def __repr__(self) -> str:
        return f"EventScheduler(now={self._now}, pending={self.pending_count})"
