"""Shared body-domain CAN message catalogue.

All bundled ECU models and their example projects use this small message
set.  In a real vehicle programme this is the role of the OEM's DBC file;
keeping one shared catalogue is also what enables the knowledge-reuse
experiment (different "projects" share the same signal vocabulary).
"""

from __future__ import annotations

from ..can import CanDatabase, MessageDefinition, SignalCoding

__all__ = [
    "IGN_STATUS",
    "LIGHT_SENSOR",
    "LOCK_COMMAND",
    "LOCK_STATUS",
    "VEHICLE_SPEED",
    "WIPER_COMMAND",
    "WINDOW_POSITION",
    "LIGHT_SWITCH",
    "body_can_database",
]

#: Ignition status (terminal status).  IGN_ST: 0=off, 1=accessory, 2=run, 3=start.
IGN_STATUS = MessageDefinition(
    name="IGN_STATUS",
    can_id=0x100,
    length=1,
    signals=(
        SignalCoding("IGN_ST", start_bit=0, bit_length=4,
                     description="terminal status: 0=off, 1=acc, 2=run, 3=start"),
    ),
    cycle_time=0.1,
    sender="body_controller",
    description="Ignition / terminal status broadcast",
)

#: Ambient light sensor.  NIGHT: 1 when it is dark outside.
LIGHT_SENSOR = MessageDefinition(
    name="LIGHT_SENSOR",
    can_id=0x110,
    length=1,
    signals=(
        SignalCoding("NIGHT", start_bit=0, bit_length=1,
                     description="1 = ambient darkness detected"),
        SignalCoding("BRIGHTNESS", start_bit=1, bit_length=7, factor=1.0,
                     description="ambient brightness, arbitrary units 0..127"),
    ),
    cycle_time=0.2,
    sender="rain_light_sensor",
    description="Rain/light sensor broadcast",
)

#: Central locking command.  LOCK_REQ: 0=none, 1=lock, 2=unlock.
LOCK_COMMAND = MessageDefinition(
    name="LOCK_COMMAND",
    can_id=0x120,
    length=1,
    signals=(
        SignalCoding("LOCK_REQ", start_bit=0, bit_length=2,
                     description="0=no request, 1=lock, 2=unlock"),
    ),
    sender="keyless_entry",
    description="Central locking request (remote key / interior switch)",
)

#: Central locking status report.  LOCKED: 1 when all doors are locked.
LOCK_STATUS = MessageDefinition(
    name="LOCK_STATUS",
    can_id=0x121,
    length=1,
    signals=(
        SignalCoding("LOCKED", start_bit=0, bit_length=1,
                     description="1 = vehicle locked"),
    ),
    sender="central_locking_ecu",
    description="Central locking status broadcast",
)

#: Vehicle speed in km/h (0.1 km/h resolution).
VEHICLE_SPEED = MessageDefinition(
    name="VEHICLE_SPEED",
    can_id=0x130,
    length=2,
    signals=(
        SignalCoding("SPEED", start_bit=0, bit_length=12, factor=0.1, unit="km/h",
                     description="vehicle speed"),
    ),
    cycle_time=0.05,
    sender="esp",
    description="Vehicle speed broadcast",
)

#: Wiper stalk command.  WIPER_MODE: 0=off, 1=interval, 2=slow, 3=fast; WASH: washer request.
WIPER_COMMAND = MessageDefinition(
    name="WIPER_COMMAND",
    can_id=0x140,
    length=1,
    signals=(
        SignalCoding("WIPER_MODE", start_bit=0, bit_length=2,
                     description="0=off, 1=interval, 2=slow, 3=fast"),
        SignalCoding("WASH", start_bit=2, bit_length=1,
                     description="1 = washer requested"),
    ),
    sender="steering_column",
    description="Wiper stalk position",
)

#: Window position report, percent open (0 = closed, 100 = fully open).
WINDOW_POSITION = MessageDefinition(
    name="WINDOW_POSITION",
    can_id=0x150,
    length=1,
    signals=(
        SignalCoding("WIN_POS", start_bit=0, bit_length=7, unit="%",
                     description="window opening 0..100 %"),
    ),
    sender="window_lifter_ecu",
    description="Window position broadcast",
)

#: Exterior light switch.  LIGHT_SW: 0=off, 1=auto, 2=on.
LIGHT_SWITCH = MessageDefinition(
    name="LIGHT_SWITCH",
    can_id=0x160,
    length=1,
    signals=(
        SignalCoding("LIGHT_SW", start_bit=0, bit_length=2,
                     description="0=off, 1=automatic, 2=on"),
    ),
    sender="light_switch_module",
    description="Exterior light switch position",
)


def body_can_database() -> CanDatabase:
    """The shared body-domain CAN database used by all bundled ECU models."""
    return CanDatabase(
        (
            IGN_STATUS,
            LIGHT_SENSOR,
            LOCK_COMMAND,
            LOCK_STATUS,
            VEHICLE_SPEED,
            WIPER_COMMAND,
            WINDOW_POSITION,
            LIGHT_SWITCH,
        ),
        name="body_can",
    )
