"""Instrument cluster ECU.

A third body controller, added for the compositional-testing scenario: in
the vehicle the speedometer cluster *produces* the speed broadcast that the
central locking ECU consumes, so composing the two on one bus replaces the
test stand's synthetic ``put_can`` speed with the real thing.  Behaviour:

* The wheel-speed sensor arrives as a coded resistance on ``SPEED_SENSOR``
  (40 Ohm per km/h; an open circuit reads as standstill, like an unplugged
  sensor).
* The sensed speed is broadcast on CAN (``VEHICLE_SPEED.SPEED``) whenever
  it changes - in a composition this frame is what the central locking
  ECU's auto-lock and unlock-inhibition logic actually sees.
* The speedometer gauge output ``SPEED_DISP`` drives a voltage
  proportional to the displayed speed (full scale 260 km/h = UBATT).
* The central-locking telltale lamp ``LOCK_TELLTALE`` mirrors the
  ``LOCK_STATUS.LOCKED`` bit received over CAN.
"""

from __future__ import annotations

import math

from .base import EcuModel
from .pins import OutputDrive, Pin, PinKind

__all__ = ["InstrumentClusterEcu"]


class InstrumentClusterEcu(EcuModel):
    """Behavioural model of an instrument cluster (speedometer) unit."""

    NAME = "instrument_cluster_ecu"
    PINS = (
        Pin("SPEED_SENSOR", PinKind.RESISTIVE_INPUT,
            "wheel speed sensor (resistance coded, 40 Ohm per km/h)"),
        Pin("SPEED_DISP", PinKind.SIGNAL_OUTPUT, "speedometer gauge output"),
        Pin("LOCK_TELLTALE", PinKind.SIGNAL_OUTPUT,
            "central locking telltale lamp"),
    )
    RX_MESSAGES = ("LOCK_STATUS", "IGN_STATUS")
    TX_MESSAGES = ("VEHICLE_SPEED",)

    #: Speed sensor coding [Ohm per km/h].
    OHMS_PER_KMH = 40.0
    #: Sensor resistances at or above this read as "unplugged" = 0 km/h.
    SENSOR_OPEN_OHMS = 100e3
    #: Gauge full scale [km/h]; the gauge output reaches UBATT here.
    FULL_SCALE_KMH = 260.0
    #: Gauge driver output resistance [Ohm].
    GAUGE_RESISTANCE = 1.0
    #: Telltale lamp driver on-resistance [Ohm].
    TELLTALE_RESISTANCE = 0.2

    def __init__(self) -> None:
        self._last_tx_speed: float | None = None
        super().__init__()

    def _reset_state(self) -> None:
        self._last_tx_speed = None

    # -- observable state ---------------------------------------------------------

    @property
    def sensed_speed(self) -> float:
        """Speed decoded from the sensor resistance, on the 0.1 km/h raw grid."""
        ohms = self.resistance_at("SPEED_SENSOR")
        if not math.isfinite(ohms) or ohms >= self.SENSOR_OPEN_OHMS:
            return 0.0
        speed = min(ohms / self.OHMS_PER_KMH, 409.5)
        return round(speed * 10.0) / 10.0

    @property
    def locked(self) -> bool:
        """Lock state as last reported over CAN."""
        return self.rx_signal("LOCK_STATUS", "LOCKED", 0.0) >= 0.5

    # -- behaviour ------------------------------------------------------------------

    def _evaluate(self) -> None:
        speed = self.sensed_speed
        if speed != self._last_tx_speed:
            self._last_tx_speed = speed
            self.transmit("VEHICLE_SPEED", {"SPEED": speed})
        self.drive_output(
            "SPEED_DISP",
            OutputDrive(level=min(speed / self.FULL_SCALE_KMH, 1.0),
                        resistance=self.GAUGE_RESISTANCE),
        )
        if self.locked:
            self.drive_output(
                "LOCK_TELLTALE", OutputDrive.high_side(self.TELLTALE_RESISTANCE))
        else:
            self.drive_output("LOCK_TELLTALE", OutputDrive.floating())

    def _inputs_changed(self) -> None:
        self._evaluate()
