"""Resistive electrical network solver (modified nodal analysis).

The harness computes what a DVM would actually read at the DUT connector by
building a small resistive network: the ECU's driver stages (Thevenin
sources), the external loads (lamps), the resistor decades applied by the
test stand and the meter's own input impedance.  The network is solved by
standard nodal analysis with ideal voltage sources handled through the MNA
border rows.

The solver is deliberately DC-only and linear - adequate for the voltage and
current checks of component tests at step boundaries, and fully
deterministic for the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.errors import HarnessError

__all__ = ["Network", "GROUND"]

#: Name of the reference node (0 V by definition).
GROUND = "gnd"


def _solve_dense(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting, in place.

    Deterministic (fixed pivot choice) and exact enough for the DC
    networks at hand; raises :class:`HarnessError` on a singular system,
    mirroring the numpy fallback.
    """
    size = len(rhs)
    for column in range(size):
        pivot_row = column
        pivot = abs(matrix[column][column])
        for row in range(column + 1, size):
            candidate = abs(matrix[row][column])
            if candidate > pivot:
                pivot, pivot_row = candidate, row
        if pivot == 0.0:
            raise HarnessError("electrical network is singular")
        if pivot_row != column:
            matrix[column], matrix[pivot_row] = matrix[pivot_row], matrix[column]
            rhs[column], rhs[pivot_row] = rhs[pivot_row], rhs[column]
        upper = matrix[column]
        diagonal = upper[column]
        for row in range(column + 1, size):
            lower = matrix[row]
            factor = lower[column]
            if factor == 0.0:
                continue
            factor /= diagonal
            for k in range(column, size):
                lower[k] -= factor * upper[k]
            rhs[row] -= factor * rhs[column]
    solution = [0.0] * size
    for row in range(size - 1, -1, -1):
        current = matrix[row]
        acc = rhs[row]
        for k in range(row + 1, size):
            acc -= current[k] * solution[k]
        solution[row] = acc / current[row]
    return solution


@dataclass(frozen=True)
class _Resistor:
    node_a: str
    node_b: str
    ohms: float


@dataclass(frozen=True)
class _VoltageSource:
    positive: str
    negative: str
    volts: float


class Network:
    """A DC resistive network with ideal voltage sources."""

    def __init__(self, *, leakage: float = 1.0e9):
        """Create an empty network.

        *leakage* is a very large resistance automatically added from every
        node to ground so that floating sub-circuits stay solvable (a real
        meter sees leakage paths too); pass ``math.inf`` to disable.
        """
        self._nodes: dict[str, int] = {}
        self._resistors: list[_Resistor] = []
        self._sources: list[_VoltageSource] = []
        self._leakage = float(leakage)

    # -- construction ---------------------------------------------------------

    def node(self, name: str) -> str:
        """Register (or re-reference) a node by name; returns the name."""
        key = str(name).lower()
        if not key:
            raise HarnessError("node needs a name")
        if key != GROUND and key not in self._nodes:
            self._nodes[key] = len(self._nodes)
        return key

    def add_resistor(self, node_a: str, node_b: str, ohms: float) -> None:
        """Connect two nodes with a resistor.

        Infinite resistances are accepted and simply ignored (open circuit);
        non-positive resistances are clamped to one milliohm to keep the
        system well conditioned.
        """
        if math.isinf(ohms):
            self.node(node_a)
            self.node(node_b)
            return
        if ohms <= 0:
            ohms = 1.0e-3
        self._resistors.append(_Resistor(self.node(node_a), self.node(node_b), float(ohms)))

    def add_voltage_source(self, positive: str, negative: str, volts: float) -> None:
        """Connect an ideal voltage source between two nodes."""
        self._sources.append(
            _VoltageSource(self.node(positive), self.node(negative), float(volts))
        )

    def add_thevenin(self, node: str, volts: float, resistance: float) -> None:
        """Attach a Thevenin source (ideal source + series resistance) to *node*."""
        internal = self.node(f"__thevenin_{len(self._sources)}_{node}")
        self.add_voltage_source(internal, GROUND, volts)
        self.add_resistor(internal, node, resistance)

    # -- solving --------------------------------------------------------------

    #: Systems up to this size are solved by the pure-Python elimination:
    #: at component-test scale (a dozen-ish nodes) the interpreter solves
    #: thousands of these per campaign, and numpy's per-call overhead
    #: (array allocation, dispatch, scalar indexing for the stamps) costs
    #: more than the arithmetic it vectorises.  Larger systems fall back
    #: to ``numpy.linalg.solve``.
    _DENSE_FALLBACK_SIZE = 32

    def solve(self) -> dict[str, float]:
        """Solve the network; returns node name -> voltage (ground = 0)."""
        node_count = len(self._nodes)
        source_count = len(self._sources)
        size = node_count + source_count
        if size == 0:
            return {GROUND: 0.0}

        matrix = [[0.0] * size for _ in range(size)]
        rhs = [0.0] * size

        nodes = self._nodes

        def index(node: str) -> int | None:
            if node == GROUND:
                return None
            return nodes[node]

        # Conductance stamps.
        resistors = list(self._resistors)
        if not math.isinf(self._leakage):
            for node in list(self._nodes):
                resistors.append(_Resistor(node, GROUND, self._leakage))
        for resistor in resistors:
            conductance = 1.0 / resistor.ohms
            a = index(resistor.node_a)
            b = index(resistor.node_b)
            if a is not None:
                matrix[a][a] += conductance
            if b is not None:
                matrix[b][b] += conductance
            if a is not None and b is not None:
                matrix[a][b] -= conductance
                matrix[b][a] -= conductance

        # Voltage-source border rows/columns.
        for k, source in enumerate(self._sources):
            row = node_count + k
            p = index(source.positive)
            n = index(source.negative)
            if p is not None:
                matrix[p][row] += 1.0
                matrix[row][p] += 1.0
            if n is not None:
                matrix[n][row] -= 1.0
                matrix[row][n] -= 1.0
            rhs[row] = source.volts

        if size <= self._DENSE_FALLBACK_SIZE:
            solution = _solve_dense(matrix, rhs)
        else:
            try:
                solution = np.linalg.solve(np.asarray(matrix), np.asarray(rhs))
            except np.linalg.LinAlgError as exc:
                raise HarnessError(f"electrical network is singular: {exc}") from exc

        voltages = {GROUND: 0.0}
        for name, position in self._nodes.items():
            voltages[name] = float(solution[position])
        return voltages

    def voltage_between(self, node_a: str, node_b: str = GROUND) -> float:
        """Solve and return ``V(node_a) - V(node_b)``."""
        voltages = self.solve()
        key_a = str(node_a).lower()
        key_b = str(node_b).lower()
        for key in (key_a, key_b):
            if key != GROUND and key not in voltages:
                raise HarnessError(f"unknown network node {key!r}")
        return voltages.get(key_a, 0.0) - voltages.get(key_b, 0.0)

    # -- introspection --------------------------------------------------------

    @property
    def node_names(self) -> tuple[str, ...]:
        return (GROUND, *self._nodes)

    @property
    def resistor_count(self) -> int:
        return len(self._resistors)

    @property
    def source_count(self) -> int:
        return len(self._sources)
