"""First-class target registry and declarative campaign API.

The paper's claim is that test definitions are reusable across DUTs and
stands; this module makes the *wiring knowledge* that execution needs - how
to build a DUT's harness, which signal set and fault catalogue belong to
it, which adapter pins a configurable stand must be wired to - a public,
extensible registry instead of private CLI tables:

:class:`DutTarget` / :func:`register_dut`
    everything needed to execute tests against one DUT type (all factories
    are module-level callables, so campaign jobs stay picklable for the
    process backend),
:class:`StandTarget` / :func:`register_stand`
    a test-stand builder plus whether it accepts a DUT adapter pin list,
:class:`RunSpec` / :func:`run_single`
    declarative single-script execution,
:class:`CampaignSpec` / :func:`run_campaign`
    declarative fault-injection campaigns, expanded through the job engine
    in :mod:`repro.teststand.executor` (verdict tables stay byte-identical
    across backends and worker counts),
:func:`derive_signal_set`
    fallback signal-sheet derivation for scripts whose DUT has no (or an
    incomplete) registered signal set.

Both target kinds also record the two halves of the *stand capability
negotiation* at registration time: a :class:`StandTarget` probes its
builder once for the methods its resources support, a :class:`DutTarget`
reads the methods its bundled suite's statuses bind.  :func:`run_single`
and :func:`build_campaign` match the two and reject impossible requests
(e.g. a ``get_i`` sheet on a stand without an ammeter) with a structured
:class:`CapabilityGapError` *before* any job is built;
:func:`method_coverage` exposes the same matrix to ``repro-campaign
--list-targets``.

All five bundled ECUs and all three bundled stands are registered at import
time, so ``repro-campaign`` covers the whole body-electronics family.  Both
registration helpers are decorator-friendly::

    @register_stand("lab_bench", adaptable=True)
    def build_lab_bench(pins=PAPER_PINS): ...

    @register_dut(name="blink_ecu", harness_factory=blink_harness,
                  signals_factory=blink_signal_set)
    class BlinkEcu(EcuModel): ...
"""

from __future__ import annotations

import functools
import hashlib
import json
import warnings
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from . import chaos as _chaos

from .analysis.campaign import CampaignResult, FaultCampaign
from .analysis.faults import (
    FaultCatalogue,
    FaultModel,
    central_locking_faults,
    exterior_light_faults,
    instrument_cluster_faults,
    interaction_faults,
    interior_light_faults,
    window_lifter_faults,
    wiper_faults,
)
from .core.errors import ConfigurationError, ReproError
from .core.compiler import Compiler
from .core.script import TestScript
from .core.signals import Signal, SignalDirection, SignalKind, SignalSet
from .core.testdef import TestSuite
from .core.xmlparse import read_script
from .dut.central_locking import CentralLockingEcu
from .dut.composition import CompositionHarness, EcuAssembly
from .dut.exterior_light import ExteriorLightEcu
from .dut.harness import TestHarness
from .dut.instrument_cluster import InstrumentClusterEcu
from .dut.interior_light import InteriorLightEcu
from .dut.window_lifter import WindowLifterEcu
from .dut.wiper import WiperEcu
from .methods import default_registry
from .paper.cluster import cluster_harness, cluster_signal_set, cluster_suite
from .paper.composed import COMPOSITION_NAME, composed_suite
from .paper.example import interior_harness, paper_signal_set
from .paper.extended import (
    extended_suite,
    locking_harness,
    locking_signal_set,
    locking_suite,
)
from .paper.family import (
    exterior_light_harness,
    exterior_light_signal_set,
    exterior_light_suite,
    window_lifter_harness,
    window_lifter_signal_set,
    window_lifter_suite,
    wiper_harness,
    wiper_signal_set,
    wiper_suite,
)
from .sheets.workbook import load_suite
from .teststand.executor import Executor, ResiliencePolicy, make_executor
from .teststand.interpreter import TestStandInterpreter
from .teststand.stands import (
    TestStand,
    build_big_rack,
    build_minimal_bench,
    build_paper_stand,
)
from .teststand.verdict import TestResult

__all__ = [
    "TargetError",
    "CapabilityGapError",
    "SignalDerivationWarning",
    "DutTarget",
    "StandTarget",
    "CompositionMember",
    "CompositionTarget",
    "register_dut",
    "register_stand",
    "register_composition",
    "unregister_dut",
    "unregister_stand",
    "unregister_composition",
    "get_dut",
    "get_stand",
    "get_composition",
    "dut_names",
    "stand_names",
    "composition_names",
    "iter_compositions",
    "adaptable_stand_names",
    "campaignable_dut_names",
    "iter_duts",
    "iter_stands",
    "stand_factory_for",
    "stand_factories_for",
    "default_stand_for",
    "method_coverage",
    "unresolved_signal_message",
    "derive_signal_set",
    "signal_set_for_script",
    "PREFLIGHT_MODES",
    "RunSpec",
    "run_single",
    "CampaignSpec",
    "select_faults",
    "build_campaign",
    "run_campaign",
]


class TargetError(ReproError):
    """A registry lookup or spec expansion failed.

    Permanent by definition (``transient = False``): an unknown DUT or a
    capability gap looks exactly the same on every attempt, so the
    executor's retry machinery (:func:`repro.core.errors.is_transient`)
    fails such jobs fast instead of burning attempts.
    """

    transient = False


class CapabilityGapError(TargetError):
    """A stand has no resource for a method the requested scripts need.

    Raised by :func:`run_single` / :func:`build_campaign` *before* any job
    is built or executed: what used to surface mid-campaign as per-action
    ERROR verdicts (an allocation failure deep inside the interpreter) is
    now a structured pre-flight error.  The CLI maps it - like every other
    :class:`TargetError` - to exit code 2 (infrastructure, not a verdict).

    Attributes
    ----------
    stand:
        Name of the stand that cannot serve the request.
    missing:
        The required method names the stand has no resource for.
    dut:
        DUT whose scripts raised the requirement (``None`` for anonymous
        scripts).
    supported:
        The methods the stand *does* support (from its registration-time
        coverage record).
    """

    def __init__(self, stand: str, missing: Sequence[str], *,
                 dut: str | None = None, supported: Sequence[str] = ()):
        self.stand = str(stand)
        self.missing = tuple(missing)
        self.dut = dut
        self.supported = tuple(supported)
        what = f"the {dut} scripts" if dut else "the requested scripts"
        super().__init__(
            f"test stand {self.stand!r} has no resource for method(s) "
            f"{', '.join(repr(m) for m in self.missing)} required by {what}; "
            f"stand methods: {', '.join(self.supported) or '(none)'}"
        )


# ---------------------------------------------------------------------------
# Registry model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DutTarget:
    """Everything execution needs to know about one DUT type.

    Attributes
    ----------
    name:
        DUT name as it appears in scripts and workbooks (``script.dut``).
    ecu_factory:
        Builds a fresh healthy ECU model.
    harness_factory:
        Wires a (possibly faulty) ECU instance into its test harness.
    signals_factory:
        Builds the DUT's bundled signal definition sheet.
    faults_factory:
        Builds the DUT's fault catalogue; ``None`` when no seeded defects
        are bundled (the DUT is then not campaignable).
    suite_factory:
        Builds the DUT's bundled test suite; used by campaigns when no
        workbook is given.
    pins:
        DUT adapter: the pin list configurable stands must be wired to.
        ``None`` means the paper's default pinning, which every bundled
        stand carries.
    description:
        Free text for listings.
    required_methods:
        Methods the DUT's bundled suite needs a stand resource for, computed
        at registration time from the suite's status bindings (``None`` when
        no suite is bundled or its factory fails).  This is one half of the
        stand capability negotiation; :attr:`StandTarget.methods` is the
        other.

    All factories should be module-level callables so campaign jobs remain
    picklable for the process backend.
    """

    name: str
    ecu_factory: Callable[[], object]
    harness_factory: Callable[[object], TestHarness]
    signals_factory: Callable[[], SignalSet]
    faults_factory: Callable[[], FaultCatalogue] | None = None
    suite_factory: Callable[[], TestSuite] | None = None
    pins: tuple[str, ...] | None = None
    description: str = ""
    required_methods: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise TargetError("DUT target needs a name")
        if self.pins is not None:
            object.__setattr__(self, "pins", tuple(self.pins))
        if self.required_methods is None and self.suite_factory is not None:
            # Registration-time half of the capability negotiation: every
            # status a sheet (or an initial signal status) uses binds a
            # method, and that set is exactly what the compiled scripts will
            # ask a stand's allocator for.
            try:
                suite = self.suite_factory()
                required = sorted({
                    suite.statuses.get(name).method.lower()
                    for name in suite.statuses_used()
                })
            except Exception:
                required = None
            object.__setattr__(
                self, "required_methods",
                tuple(required) if required is not None else None,
            )
        elif self.required_methods is not None:
            object.__setattr__(
                self, "required_methods",
                tuple(str(m).lower() for m in self.required_methods),
            )

    @property
    def key(self) -> str:
        return self.name.lower()

    @property
    def campaignable(self) -> bool:
        """Whether the target bundles a fault catalogue."""
        return self.faults_factory is not None

    def build_harness(self) -> TestHarness:
        """A fresh healthy ECU wired into its harness."""
        return self.harness_factory(self.ecu_factory())


@dataclass(frozen=True)
class StandTarget:
    """One registered test stand builder.

    ``adaptable`` stands accept a DUT adapter pin list as their first
    positional argument; non-adaptable stands (the paper stand with its
    fixed switching matrix) only carry the paper's default pinning.

    ``methods`` is the stand's method coverage, computed at registration
    time by building the stand once (with its default pinning) and reading
    its resource table.  A stand's resources do not depend on the adapter
    pins, so one probe build is representative; ``None`` records that the
    builder could not be probed (coverage unknown - the pre-flight check
    then degrades to the old allocation-time behaviour).
    """

    name: str
    builder: Callable[..., TestStand]
    adaptable: bool = False
    description: str = ""
    methods: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise TargetError("stand target needs a name")
        if self.methods is None:
            try:
                probed = sorted(
                    m.lower() for m in self.builder().methods_supported()
                )
            except Exception:
                probed = None
            object.__setattr__(
                self, "methods", tuple(probed) if probed is not None else None
            )
        else:
            object.__setattr__(
                self, "methods", tuple(str(m).lower() for m in self.methods)
            )

    @property
    def key(self) -> str:
        return self.name.lower()

    def missing_methods(self, required: Iterable[str]) -> tuple[str, ...]:
        """The *required* methods this stand has no resource for.

        ``wait`` is never missing (the interpreter serves it without a
        resource).  With unknown coverage (``methods is None``) nothing can
        be reported missing.
        """
        if self.methods is None:
            return ()
        return tuple(
            m for m in dict.fromkeys(str(r).lower() for r in required)
            if m != "wait" and m not in self.methods
        )

    def factory_for(self, pins: Sequence[str] | None = None) -> Callable[[], TestStand]:
        """A picklable zero-argument stand factory wired to *pins*.

        ``None`` keeps the builder's default (paper) pinning.  Requesting
        pins from a non-adaptable stand raises :class:`TargetError`.
        """
        if pins is None:
            return self.builder
        if not self.adaptable:
            raise TargetError(
                f"stand {self.name!r} has no DUT adapter; "
                f"use one of {sorted(adaptable_stand_names())}"
            )
        # functools.partial of a module-level builder stays picklable.
        return functools.partial(self.builder, tuple(pins))


_DUTS: dict[str, DutTarget] = {}
_STANDS: dict[str, StandTarget] = {}


def register_dut(target: DutTarget | None = None, *, replace_existing: bool = False,
                 **fields):
    """Register a :class:`DutTarget` (directly or as a class decorator).

    Called with a ready-made target it registers and returns it.  Called
    with keyword fields only, it returns a decorator that uses the
    decorated callable (typically the ECU class) as the ``ecu_factory``
    and its ``NAME`` attribute as the default name::

        @register_dut(harness_factory=my_harness, signals_factory=my_signals)
        class MyEcu(EcuModel): ...
    """
    if target is not None:
        if not isinstance(target, DutTarget):
            raise TargetError(f"expected a DutTarget, got {type(target).__name__}")
        if target.key in _DUTS and not replace_existing:
            raise TargetError(f"DUT target {target.name!r} is already registered")
        _DUTS[target.key] = target
        return target

    def _decorate(ecu_factory):
        name = fields.pop("name", None) or getattr(ecu_factory, "NAME", None)
        if not name:
            raise TargetError(
                "register_dut needs a name= field or an ecu factory with a NAME"
            )
        register_dut(DutTarget(name=name, ecu_factory=ecu_factory, **fields),
                     replace_existing=replace_existing)
        return ecu_factory

    return _decorate


def register_stand(name: str, builder: Callable[..., TestStand] | None = None, *,
                   adaptable: bool = False, description: str = "",
                   replace_existing: bool = False):
    """Register a stand builder (directly or as a decorator).

    ``register_stand("big_rack", build_big_rack, adaptable=True)`` registers
    immediately; omitting *builder* returns a decorator for the builder
    function.  Both forms return the builder unchanged, so the name being
    assigned or decorated stays a callable; use :func:`get_stand` for the
    registered :class:`StandTarget`.
    """
    def _register(fn: Callable[..., TestStand]):
        target = StandTarget(name, fn, adaptable=adaptable, description=description)
        if target.key in _STANDS and not replace_existing:
            raise TargetError(f"stand target {name!r} is already registered")
        _STANDS[target.key] = target
        return fn

    if builder is None:
        return _register
    return _register(builder)


def unregister_dut(name: str) -> DutTarget:
    """Remove a DUT target from the registry (mainly for tests/plugins)."""
    try:
        return _DUTS.pop(str(name).lower())
    except KeyError as exc:
        raise TargetError(f"no registered DUT target {name!r}") from exc


def unregister_stand(name: str) -> StandTarget:
    """Remove a stand target from the registry (mainly for tests/plugins)."""
    try:
        return _STANDS.pop(str(name).lower())
    except KeyError as exc:
        raise TargetError(f"no registered stand target {name!r}") from exc


def get_dut(name: str) -> DutTarget:
    """Look a DUT target up by (case-insensitive) name."""
    try:
        return _DUTS[str(name).lower()]
    except KeyError as exc:
        raise TargetError(
            f"unknown DUT {name!r}; registered DUTs: {sorted(_DUTS)}"
        ) from exc


def get_stand(name: str) -> StandTarget:
    """Look a stand target up by (case-insensitive) name."""
    try:
        return _STANDS[str(name).lower()]
    except KeyError as exc:
        raise TargetError(
            f"unknown stand {name!r}; registered stands: {sorted(_STANDS)}"
        ) from exc


def dut_names() -> tuple[str, ...]:
    """Registered DUT names, sorted."""
    return tuple(sorted(target.name for target in _DUTS.values()))


def stand_names() -> tuple[str, ...]:
    """Registered stand names, sorted."""
    return tuple(sorted(target.name for target in _STANDS.values()))


def adaptable_stand_names() -> tuple[str, ...]:
    """Names of the stands that accept a DUT adapter pin list, sorted."""
    return tuple(sorted(t.name for t in _STANDS.values() if t.adaptable))


def campaignable_dut_names() -> tuple[str, ...]:
    """Names of the DUTs that bundle a fault catalogue, sorted."""
    return tuple(sorted(t.name for t in _DUTS.values() if t.campaignable))


def iter_duts() -> tuple[DutTarget, ...]:
    """All registered DUT targets in registration order."""
    return tuple(_DUTS.values())


def iter_stands() -> tuple[StandTarget, ...]:
    """All registered stand targets in registration order."""
    return tuple(_STANDS.values())


def stand_factory_for(stand: str | StandTarget,
                      dut: str | DutTarget) -> Callable[[], TestStand]:
    """A picklable stand factory wired to the DUT's adapter pins."""
    stand_target = get_stand(stand) if isinstance(stand, str) else stand
    dut_target = get_dut(dut) if isinstance(dut, str) else dut
    try:
        return stand_target.factory_for(dut_target.pins)
    except TargetError as exc:
        raise TargetError(f"{exc} (DUT {dut_target.name!r})") from None


def default_stand_for(dut: str | DutTarget) -> str:
    """The default stand name for a DUT: paper pinning gets the paper stand,
    adapter-bearing DUTs get the first *registered* adaptable stand.

    Registration order (not alphabetical order) decides, so registering an
    additional adaptable stand later does not silently shift the default
    for existing DUTs.
    """
    dut_target = get_dut(dut) if isinstance(dut, str) else dut
    if dut_target.pins is None and "paper" in _STANDS:
        return _STANDS["paper"].name
    for stand in _STANDS.values():
        if stand.adaptable:
            return stand.name
    raise TargetError(
        f"no registered stand carries an adapter for DUT {dut_target.name!r}"
    )


def stand_factories_for(dut: str | DutTarget,
                        stands: Sequence[str] | None = None
                        ) -> dict[str, Callable[[], TestStand]]:
    """Label -> picklable stand factory for every stand usable with *dut*.

    By default every registered stand that can carry the DUT's adapter is
    included - the input for a portability batch
    (:func:`repro.teststand.run_across_stands`).
    """
    dut_target = get_dut(dut) if isinstance(dut, str) else dut
    wanted = (get_stand(name) for name in stands) if stands is not None \
        else iter_stands()
    factories: dict[str, Callable[[], TestStand]] = {}
    for stand_target in wanted:
        if dut_target.pins is not None and not stand_target.adaptable:
            if stands is not None:
                raise TargetError(
                    f"stand {stand_target.name!r} has no DUT adapter "
                    f"(DUT {dut_target.name!r})"
                )
            continue
        factories[stand_target.name] = stand_target.factory_for(dut_target.pins)
    return factories


# ---------------------------------------------------------------------------
# Multi-ECU compositions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CompositionMember:
    """One member slot of a composition: a short alias bound to a DUT.

    The alias is the member's address inside the composition - in fault
    names (``cluster.speed_tx_truncated``), on the shared CAN bus (the
    member's node name) and in diagnostics.
    """

    alias: str
    dut: str

    def __post_init__(self) -> None:
        if not str(self.alias).strip():
            raise TargetError("composition member needs an alias")
        if not str(self.dut).strip():
            raise TargetError("composition member needs a DUT name")
        object.__setattr__(self, "alias", str(self.alias).strip().lower())
        object.__setattr__(self, "dut", str(self.dut).strip())


@dataclass(frozen=True)
class CompositionTarget:
    """Several registered DUTs campaigned together on one shared CAN bus.

    A composition references its members by *registered DUT name*, so the
    member wiring knowledge (harness factory, adapter pins, fault
    catalogue) stays in one place - the :class:`DutTarget` registry.  What
    the composition adds:

    ``suite_factory``
        the interaction suite, whose signal sheet carries
        ``SignalSet.composition`` so single-ECU execution layers (the
        bytecode VM) can decline it and degrade gracefully,
    ``faults_factory``
        the composed catalogue: every member fault - bundled and
        *interaction* faults (:func:`repro.analysis.faults.interaction_faults`)
        alike - addressed per member as ``alias.fault_name``,
    ``pins``
        the union of the member adapters, which is what an adaptable stand
        must be wired to,
    ``expected_overrides``
        per-composed-fault detection expectations where the composed suite's
        coverage differs from the member suite's (``(("cluster.gauge_stuck_zero",
        False),)`` - the interaction sheets never probe the gauge).

    All factories stay module-level/partial-of-module-level, so composed
    campaign jobs remain picklable for the process backend.
    """

    name: str
    members: tuple[CompositionMember, ...]
    suite_factory: Callable[[], TestSuite]
    description: str = ""
    expected_overrides: tuple[tuple[str, bool], ...] = ()
    required_methods: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise TargetError("composition target needs a name")
        members = tuple(
            member if isinstance(member, CompositionMember)
            else CompositionMember(*member)
            for member in self.members
        )
        if len(members) < 2:
            raise TargetError(
                f"composition {self.name!r} needs at least two members"
            )
        aliases = [member.alias for member in members]
        if len(set(aliases)) != len(aliases):
            raise TargetError(
                f"composition {self.name!r} has duplicate member aliases"
            )
        object.__setattr__(self, "members", members)
        object.__setattr__(
            self, "expected_overrides",
            tuple((str(key).lower(), bool(value))
                  for key, value in self.expected_overrides),
        )
        if self.required_methods is None:
            try:
                suite = self.suite_factory()
                required = sorted({
                    suite.statuses.get(name).method.lower()
                    for name in suite.statuses_used()
                })
            except Exception:
                required = None
            object.__setattr__(
                self, "required_methods",
                tuple(required) if required is not None else None,
            )
        else:
            object.__setattr__(
                self, "required_methods",
                tuple(str(m).lower() for m in self.required_methods),
            )

    @property
    def key(self) -> str:
        return self.name.lower()

    @property
    def campaignable(self) -> bool:
        """Compositions always campaign: members bring their catalogues."""
        return True

    def member_for(self, alias: str) -> CompositionMember:
        wanted = str(alias).lower()
        for member in self.members:
            if member.alias == wanted:
                return member
        raise TargetError(
            f"composition {self.name!r} has no member {alias!r} "
            f"(members: {', '.join(m.alias for m in self.members)})"
        )

    def dut_targets(self) -> tuple[tuple[CompositionMember, DutTarget], ...]:
        """(member, registered DUT target) pairs in member order."""
        return tuple(
            (member, get_dut(member.dut)) for member in self.members
        )

    @property
    def pins(self) -> tuple[str, ...]:
        """Union of the member adapter pin lists, in member order.

        Cross-member pin collisions are a definition error here (and an
        ``M-PIN-COLLISION`` lint finding); every member must declare an
        explicit adapter so the union is well defined.
        """
        seen: dict[str, str] = {}
        for member, target in self.dut_targets():
            if target.pins is None:
                raise TargetError(
                    f"composition {self.name!r}: member {member.alias!r} "
                    f"(DUT {target.name!r}) declares no adapter pin list"
                )
            for pin in target.pins:
                owner = seen.get(pin.lower())
                if owner is not None:
                    raise TargetError(
                        f"composition {self.name!r}: adapter pin {pin!r} of "
                        f"member {member.alias!r} collides with member "
                        f"{owner!r}"
                    )
                seen[pin.lower()] = member.alias
        pins: dict[str, None] = {}
        for _member, target in self.dut_targets():
            for pin in target.pins:
                pins.setdefault(pin, None)
        return tuple(pins)

    def member_fault(self, alias: str, fault: str) -> FaultModel:
        """Resolve ``alias``'s fault *fault* - bundled catalogue first, then
        the member's interaction faults."""
        member = self.member_for(alias)
        target = get_dut(member.dut)
        catalogues = []
        if target.faults_factory is not None:
            catalogues.append(target.faults_factory())
        catalogues.append(interaction_faults(target.name))
        for catalogue in catalogues:
            try:
                return catalogue.get(fault)
            except ReproError:
                continue
        known = [
            f"{member.alias}.{name}"
            for catalogue in catalogues for name in catalogue.names
        ]
        raise TargetError(
            f"composition {self.name!r}: member {alias!r} has no fault "
            f"{fault!r}; known member faults: {', '.join(known) or '(none)'}"
        )

    def build_assembly(self, faulty: Mapping[str, str] | None = None
                       ) -> EcuAssembly:
        """A fresh member assembly, optionally with some members faulted.

        *faulty* maps member alias -> member fault name; members not named
        are built healthy.
        """
        faulted = {
            str(alias).lower(): str(name)
            for alias, name in (faulty or {}).items()
        }
        unknown = set(faulted) - {member.alias for member in self.members}
        if unknown:
            raise TargetError(
                f"composition {self.name!r} has no member(s) "
                f"{', '.join(sorted(unknown))}"
            )
        built = []
        for member, target in self.dut_targets():
            fault_name = faulted.get(member.alias)
            if fault_name is None:
                ecu = target.ecu_factory()
            else:
                ecu = self.member_fault(member.alias, fault_name).build()
            built.append((member.alias, ecu))
        return EcuAssembly(built, name=self.name)

    def faults_factory(self) -> FaultCatalogue:
        """The composed fault catalogue, addressed per member.

        Every bundled member fault and every member interaction fault
        appears as ``alias.fault_name``; the fault factory rebuilds the
        whole assembly with exactly that member faulted (picklable via
        :func:`functools.partial` over registry names).
        """
        overrides = dict(self.expected_overrides)
        entries = []
        for member, target in self.dut_targets():
            source: list[FaultModel] = []
            if target.faults_factory is not None:
                source.extend(target.faults_factory())
            source.extend(interaction_faults(target.name))
            for fault in source:
                key = f"{member.alias}.{fault.name}"
                entries.append(FaultModel(
                    key,
                    f"[{member.alias}] {fault.description}",
                    functools.partial(_build_member_faulted_assembly,
                                      self.name, member.alias, fault.name),
                    expected_detected=overrides.get(
                        key.lower(), fault.expected_detected),
                ))
        return FaultCatalogue(self.name, entries)


_COMPOSITIONS: dict[str, CompositionTarget] = {}


def register_composition(target: CompositionTarget, *,
                         replace_existing: bool = False) -> CompositionTarget:
    """Register a :class:`CompositionTarget`."""
    if not isinstance(target, CompositionTarget):
        raise TargetError(
            f"expected a CompositionTarget, got {type(target).__name__}"
        )
    if target.key in _COMPOSITIONS and not replace_existing:
        raise TargetError(
            f"composition target {target.name!r} is already registered"
        )
    _COMPOSITIONS[target.key] = target
    return target


def unregister_composition(name: str) -> CompositionTarget:
    """Remove a composition target (mainly for tests/plugins)."""
    try:
        return _COMPOSITIONS.pop(str(name).lower())
    except KeyError as exc:
        raise TargetError(f"no registered composition target {name!r}") from exc


def get_composition(name: str) -> CompositionTarget:
    """Look a composition target up by (case-insensitive) name."""
    try:
        return _COMPOSITIONS[str(name).lower()]
    except KeyError as exc:
        raise TargetError(
            f"unknown composition {name!r}; registered compositions: "
            f"{sorted(_COMPOSITIONS)}"
        ) from exc


def composition_names() -> tuple[str, ...]:
    """Registered composition names, sorted."""
    return tuple(sorted(target.name for target in _COMPOSITIONS.values()))


def iter_compositions() -> tuple[CompositionTarget, ...]:
    """All registered composition targets in registration order."""
    return tuple(_COMPOSITIONS.values())


def _default_adaptable_stand() -> str:
    """First registered adaptable stand: a composition's adapter is the
    union of its members' pin lists, so only adaptable stands qualify."""
    for stand in _STANDS.values():
        if stand.adaptable:
            return stand.name
    raise TargetError("no registered stand carries a DUT adapter")


# Module-level assembly/harness builders: ``functools.partial`` over these
# (with registry *names*, never live objects) is what keeps composed
# campaign jobs picklable for the process backend.

def _build_assembly(composition: str) -> EcuAssembly:
    """A healthy member assembly of the named composition."""
    return get_composition(composition).build_assembly()


def _build_member_faulted_assembly(composition: str, alias: str,
                                   fault: str) -> EcuAssembly:
    """The named composition's assembly with one member faulted."""
    return get_composition(composition).build_assembly({alias: fault})


def _build_composition_harness(composition: str,
                               assembly: EcuAssembly) -> CompositionHarness:
    """Member harnesses (from their registered factories) on one shared bus."""
    comp = get_composition(composition)
    harnesses = {
        member.alias: target.harness_factory(assembly.member(member.alias))
        for member, target in comp.dut_targets()
    }
    return CompositionHarness(assembly, harnesses)


# ---------------------------------------------------------------------------
# Stand capability negotiation
# ---------------------------------------------------------------------------

def _require_method_coverage(stand_target: StandTarget,
                             required: Iterable[str], *,
                             dut: str | None = None) -> None:
    """Raise :class:`CapabilityGapError` when *stand_target* cannot serve
    *required* methods; a no-op when the stand's coverage is unknown."""
    missing = stand_target.missing_methods(required)
    if missing:
        raise CapabilityGapError(
            stand_target.name, missing, dut=dut,
            supported=stand_target.methods or (),
        )


def method_coverage(dut: str | DutTarget) -> dict[str, tuple[str, ...] | None]:
    """Per-stand method coverage for *dut*'s bundled suite.

    For every registered stand that can carry the DUT's adapter, the value
    is the tuple of bundled-suite methods the stand has **no** resource for
    (empty tuple = full coverage), or ``None`` when coverage cannot be
    judged (the DUT bundles no suite, its suite factory failed, or the
    stand's builder could not be probed).  Stands without an adapter for
    the DUT do not appear at all.  This is what ``repro-campaign
    --list-targets`` prints per DUT.
    """
    dut_target = get_dut(dut) if isinstance(dut, str) else dut
    coverage: dict[str, tuple[str, ...] | None] = {}
    for stand in iter_stands():
        if dut_target.pins is not None and not stand.adaptable:
            continue
        if dut_target.required_methods is None or stand.methods is None:
            coverage[stand.name] = None
        else:
            coverage[stand.name] = stand.missing_methods(
                dut_target.required_methods
            )
    return coverage


# ---------------------------------------------------------------------------
# Signal-set derivation
# ---------------------------------------------------------------------------

class SignalDerivationWarning(UserWarning):
    """A script signal resolved to neither a DUT pin nor a CAN message.

    Issued (once per distinct message) by :func:`derive_signal_set`, so
    callers can filter or assert on derivation problems with the standard
    :mod:`warnings` machinery instead of scraping stderr.
    """


def unresolved_signal_message(signal: str, owner: str, dut: str) -> str:
    """The canonical "signal does not resolve" diagnostic text.

    Single source of truth for the condition that a signal name maps to
    neither a DUT pin nor a CAN message: :func:`derive_signal_set` reports
    it as a run-time :class:`SignalDerivationWarning`, and the static
    analyzer's ``E-UNRESOLVED-SIGNAL`` rule (:mod:`repro.lint`) reports the
    same condition at lint time.  *owner* names the artefact the signal
    belongs to (e.g. ``"script 'lights_on'"`` or ``"the registered signal
    set"``); callers append their own consequence clause.
    """
    return (
        f"signal {signal!r} of {owner} resolves to "
        f"neither a pin of DUT {dut!r} nor a CAN message"
    )


def _warn_default(message: str) -> None:
    # Frames above warnings.warn: _warn_default (1), derive_signal_set's
    # _report closure (2), derive_signal_set (3), its caller (4) - attribute
    # the warning to the caller, not to this module's internals.
    warnings.warn(message, SignalDerivationWarning, stacklevel=4)


def _directions_from_usage(script: TestScript) -> dict[str, SignalDirection]:
    """Per-signal direction as implied by the script's method calls.

    A signal only ever measured (``get_*``) is a DUT output, one only ever
    stimulated is an input, and one used both ways is bidirectional.
    """
    registry = default_registry()
    measured: set[str] = set()
    stimulated: set[str] = set()
    actions = list(script.setup)
    for step in script.steps:
        actions.extend(step.actions)
    for action in actions:
        key = str(action.signal).lower()
        if action.method in registry:
            is_measurement = registry.get(action.method).is_measurement
        else:
            is_measurement = str(action.method).lower().startswith("get")
        (measured if is_measurement else stimulated).add(key)
    directions = {}
    for key in measured | stimulated:
        if key in measured and key in stimulated:
            directions[key] = SignalDirection.BIDIRECTIONAL
        elif key in measured:
            directions[key] = SignalDirection.OUTPUT
        else:
            directions[key] = SignalDirection.INPUT
    return directions


def derive_signal_set(
    script: TestScript,
    harness: TestHarness,
    *,
    warn: Callable[[str], None] | None = _warn_default,
) -> SignalSet:
    """Derive a minimal signal definition sheet from a script and a harness.

    Every signal name the script uses is resolved against the harness: a
    DUT pin of the same name becomes a one-pin electrical signal, otherwise
    a CAN signal of the harness database binds it to its carrying message.
    Directions come from the DUT pin where one exists, else from how the
    script uses the signal (measured = output, stimulated = input).  Names
    that resolve to neither a pin nor a message are reported through *warn*
    (by default a :class:`SignalDerivationWarning` via :func:`warnings.warn`,
    so callers can filter or assert on them; pass ``None`` to silence) and
    dropped - executing such a script then yields an ERROR verdict for the
    affected actions instead of a silent false PASS.  Repeated problems
    within one derivation are reported only once.
    """
    ecu = harness.ecu
    usage = _directions_from_usage(script)
    derived: list[Signal] = []
    warned: set[str] = set()

    def _report(message: str) -> None:
        if warn is None or message in warned:
            return
        warned.add(message)
        warn(message)

    for name in script.signals_used():
        if ecu.has_pin(name):
            pin = ecu.pin(name)
            direction = SignalDirection.OUTPUT if pin.is_output else SignalDirection.INPUT
            kind = SignalKind.ANALOG if pin.is_output else SignalKind.RESISTIVE
            derived.append(Signal(name, direction, kind, pins=(name,)))
            continue
        message = None
        if harness.can_db is not None:
            try:
                message = harness.can_db.message_for_signal(name).name
            except Exception:
                message = None
        if message is None:
            _report(
                unresolved_signal_message(name, f"script {script.name!r}",
                                          ecu.name)
                + "; dropped from the derived signal set"
            )
            continue
        direction = usage.get(str(name).lower(), SignalDirection.INPUT)
        derived.append(Signal(name, direction, SignalKind.BUS, message=message))
    return SignalSet(derived, dut=script.dut)


def signal_set_for_script(script: TestScript, target: DutTarget,
                          harness: TestHarness, *,
                          warn: Callable[[str], None] | None = _warn_default
                          ) -> SignalSet:
    """The registered signal set when it covers the script, else a derived one."""
    signals = target.signals_factory()
    if all(name in signals for name in script.signals_used()):
        return signals
    return derive_signal_set(script, harness, warn=warn)


# ---------------------------------------------------------------------------
# Declarative single runs
# ---------------------------------------------------------------------------

#: Pre-flight checks a spec may request before anything is built:
#: ``"coverage"`` (default) is the stand capability negotiation alone,
#: ``"lint"`` additionally runs the whole static analyzer (:mod:`repro.lint`)
#: over the target and refuses to execute when any error-severity finding
#: exists.
PREFLIGHT_MODES = ("coverage", "lint")


def _check_preflight(mode: str) -> None:
    if mode not in PREFLIGHT_MODES:
        raise ConfigurationError(
            f"preflight must be one of {', '.join(PREFLIGHT_MODES)}, "
            f"got {mode!r}"
        )


def _run_lint_preflight(dut: str) -> None:
    # Imported lazily: repro.lint imports this module for the registry.
    from .lint import preflight_lint
    preflight_lint(dut)


def _run_lint_preflight_composition(name: str) -> None:
    # Imported lazily, same as _run_lint_preflight.
    from .lint import preflight_lint_composition
    preflight_lint_composition(name)


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one script execution.

    ``script`` may be a parsed :class:`~repro.core.script.TestScript` or the
    path of an XML script file.  ``dut`` defaults to the script's own DUT
    name; ``signals`` overrides the registered signal set; ``stand=None``
    picks a stand carrying the DUT's adapter (:func:`default_stand_for`).
    ``composition`` targets a registered :class:`CompositionTarget` instead
    of a single DUT: the script then runs against the composed assembly on
    a shared-bus :class:`~repro.dut.CompositionHarness` (mutually exclusive
    with ``dut``).
    ``preflight`` selects the pre-flight depth (:data:`PREFLIGHT_MODES`):
    ``"lint"`` runs the static analyzer over the target first and raises
    :class:`~repro.lint.LintError` on error-severity findings.
    """

    script: TestScript | str
    stand: str | None = None
    policy: str = "first_fit"
    dut: str | None = None
    composition: str | None = None
    signals: SignalSet | None = None
    stop_on_error: bool = False
    preflight: str = "coverage"

    def __post_init__(self) -> None:
        _check_preflight(self.preflight)
        if self.dut is not None and self.composition is not None:
            raise ConfigurationError(
                "a run spec targets either a dut or a composition, not both"
            )


def _run_single_composed(spec: RunSpec, script: TestScript) -> TestResult:
    comp = get_composition(spec.composition)
    if script.dut and script.dut.lower() != comp.key:
        raise TargetError(
            f"script {script.name!r} is for DUT {script.dut!r} but the run "
            f"spec targets composition {comp.name!r}"
        )
    stand_target = get_stand(spec.stand or _default_adaptable_stand())
    stand_factory = stand_target.factory_for(comp.pins)
    _require_method_coverage(stand_target, script.methods_used(),
                             dut=comp.name)
    if spec.preflight == "lint":
        _run_lint_preflight_composition(comp.name)
    assembly = _build_assembly(comp.name)
    harness = _build_composition_harness(comp.name, assembly)
    signals = spec.signals if spec.signals is not None \
        else comp.suite_factory().signals
    interpreter = TestStandInterpreter(
        stand_factory(), harness, signals, policy=spec.policy,
        stop_on_error=spec.stop_on_error,
    )
    return interpreter.run(script)


def run_single(spec: RunSpec) -> TestResult:
    """Expand a :class:`RunSpec` through the registry and execute it."""
    script = spec.script if isinstance(spec.script, TestScript) \
        else read_script(spec.script)
    if spec.composition is not None:
        return _run_single_composed(spec, script)
    if spec.dut is not None and script.dut \
            and spec.dut.lower() != script.dut.lower():
        raise TargetError(
            f"script {script.name!r} is for DUT {script.dut!r} but the run "
            f"spec targets {spec.dut!r}"
        )
    target = get_dut(spec.dut or script.dut)
    stand_target = get_stand(spec.stand or default_stand_for(target))
    stand_factory = stand_factory_for(stand_target, target)
    # Pre-flight capability negotiation: reject the run before anything is
    # built when the stand cannot serve a method the script needs.
    _require_method_coverage(stand_target, script.methods_used(),
                             dut=target.name)
    if spec.preflight == "lint":
        _run_lint_preflight(target.name)
    stand = stand_factory()
    harness = target.build_harness()
    signals = spec.signals if spec.signals is not None \
        else signal_set_for_script(script, target, harness)
    interpreter = TestStandInterpreter(
        stand, harness, signals, policy=spec.policy,
        stop_on_error=spec.stop_on_error,
    )
    return interpreter.run(script)


# ---------------------------------------------------------------------------
# Declarative campaigns
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one fault-injection campaign.

    Exactly one suite source applies, in precedence order: an in-memory
    ``suite``, a ``workbook`` directory, or the registered target's bundled
    ``suite_factory``.  ``faults`` selects catalogue entries by name (order
    preserved, duplicates removed); empty means the whole catalogue.
    ``stand=None`` picks a stand that carries the DUT's adapter
    (:func:`default_stand_for`), so every registered DUT campaigns without
    the caller knowing its pinning.

    ``composition`` (mutually exclusive with ``dut``) campaigns a
    registered :class:`CompositionTarget` instead: the interaction suite
    runs against the composed assembly on a shared CAN bus, and ``faults``
    selects per-member entries (``alias.fault_name``) from the composed
    catalogue.  The executor machinery is untouched - a composed job's
    ECU factory simply builds an assembly and its harness factory a
    :class:`~repro.dut.CompositionHarness`.

    ``backend`` / ``jobs`` / ``concurrency`` describe execution:
    ``backend`` is one of
    :data:`~repro.teststand.executor.EXECUTION_BACKENDS` (or ``"auto"``),
    ``jobs`` is the worker count for the thread / process pools, and
    ``concurrency`` is the multiplex width of the single-worker ``async``
    backend — ``CampaignSpec(dut="wiper_ecu", backend="async",
    concurrency=8)`` drives up to eight stands from one worker.  The choice
    never changes the verdict table, only the wall clock.  Invalid values
    (``jobs < 1``, negative ``concurrency`` or ``retries``) raise
    :class:`~repro.core.errors.ConfigurationError` (a ``ValueError``) at
    construction instead of being silently clamped later.

    ``use_plans`` / ``reuse_stands`` / ``use_vm`` are the
    compile-once-run-many fast paths (cached execution plans, per-worker
    stand pools, the bytecode VM over the plans).  All default on and
    never change the verdict table; turning one off exists for A/B
    wall-clock comparisons like ``tools/bench_trajectory.py`` and the
    ``--no-vm`` CLI switch.

    ``preflight`` selects the pre-flight depth (:data:`PREFLIGHT_MODES`):
    ``"lint"`` runs the static analyzer over the target before any job is
    built and raises :class:`~repro.lint.LintError` on error-severity
    findings.

    ``store`` is the path of a persistent result store
    (:class:`repro.store.ResultStore`): when set, :func:`run_campaign`
    records the finished campaign - execution report, fault-catalogue
    metadata, git SHA and ``repro.__version__`` - and publishes the
    assigned run id as
    :attr:`~repro.analysis.campaign.CampaignResult.store_run_id`.
    Recording never changes the verdict table; the stored run re-renders
    it byte-identically (``repro-report --store PATH --run ID``).

    ``resume`` (requires ``store``) makes the campaign *checkpointed*:
    every finished job is persisted as it completes, jobs already
    checkpointed by a previous (killed) run of the same campaign are
    skipped, and the merged final report is byte-identical to an
    uninterrupted run.  The checkpoints are dropped once the final report
    records.  ``deadline`` is a per-job wall-clock budget in seconds
    (blown jobs report a structured ``JobTimeoutError`` without retrying).
    ``chaos_seed`` / ``chaos_profile`` install a deterministic
    :class:`repro.chaos.ChaosPolicy` for the campaign - seeded fault
    injection for resilience testing; a seed without a profile defaults
    to the recoverable ``"flaky-instruments"`` personality.
    """

    dut: str | None = None
    composition: str | None = None
    suite: TestSuite | None = None
    workbook: str | None = None
    stand: str | None = None
    faults: tuple[str, ...] = ()
    policy: str = "first_fit"
    backend: str = "auto"
    jobs: int = 1
    concurrency: int = 0
    retries: int = 1
    use_plans: bool = True
    reuse_stands: bool = True
    use_vm: bool = True
    preflight: str = "coverage"
    store: str | None = None
    resume: bool = False
    deadline: float | None = None
    chaos_seed: int | None = None
    chaos_profile: str = ""

    def __post_init__(self) -> None:
        _check_preflight(self.preflight)
        if self.dut is not None and self.composition is not None:
            raise ConfigurationError(
                "a campaign spec targets either a dut or a composition, "
                "not both"
            )
        faults = self.faults
        if faults is None:
            faults = ()
        elif isinstance(faults, str):
            # Accept the CLI's comma-separated spelling too; tuple("a,b")
            # would otherwise silently explode the string into characters.
            faults = faults.split(",")
        object.__setattr__(self, "faults", tuple(faults))
        if int(self.jobs) < 1:
            raise ConfigurationError(
                f"campaign jobs must be >= 1, got {self.jobs}"
            )
        if int(self.concurrency) < 0:
            raise ConfigurationError(
                "campaign concurrency must be non-negative "
                f"(0 = automatic), got {self.concurrency}"
            )
        if int(self.retries) < 0:
            raise ConfigurationError(
                f"campaign retries must be non-negative, got {self.retries}"
            )
        if self.deadline is not None and not float(self.deadline) > 0.0:
            raise ConfigurationError(
                f"campaign deadline must be positive, got {self.deadline}"
            )
        if self.chaos_profile and self.chaos_profile not in _chaos.PROFILES:
            raise ConfigurationError(
                f"unknown chaos profile {self.chaos_profile!r} "
                f"(known: {', '.join(sorted(_chaos.PROFILES))})"
            )


def _resolve_suite(spec: CampaignSpec) -> TestSuite:
    if spec.suite is not None:
        return spec.suite
    if spec.workbook is not None:
        try:
            return load_suite(spec.workbook)
        except Exception as exc:
            raise TargetError(
                f"cannot load workbook {spec.workbook!r}: {exc}"
            ) from exc
    if spec.dut is None:
        raise TargetError("campaign spec needs a dut, a suite or a workbook")
    target = get_dut(spec.dut)
    if target.suite_factory is None:
        raise TargetError(
            f"DUT {target.name!r} has no bundled test suite; pass a workbook"
        )
    return target.suite_factory()


def select_faults(catalogue: FaultCatalogue,
                  names: Sequence[str] = ()) -> list[FaultModel]:
    """Pick catalogue entries by name (deduped, order kept); all when empty."""
    cleaned = [str(name).strip() for name in names if str(name).strip()]
    if not cleaned:
        return list(catalogue)
    try:
        return [catalogue.get(name) for name in dict.fromkeys(cleaned)]
    except ReproError as exc:
        raise TargetError(
            f"{exc}; known faults: {', '.join(catalogue.names)}"
        ) from exc


def _resilience_for(spec: CampaignSpec) -> ResiliencePolicy:
    """The executor resilience policy a campaign spec describes."""
    chaos_policy = None
    if spec.chaos_profile:
        chaos_policy = _chaos.ChaosPolicy.from_profile(
            spec.chaos_profile, seed=spec.chaos_seed or 0)
    elif spec.chaos_seed is not None:
        chaos_policy = _chaos.ChaosPolicy.from_profile(
            "flaky-instruments", seed=spec.chaos_seed)
    return ResiliencePolicy(
        max_attempts=1 + max(0, spec.retries),
        seed=spec.chaos_seed or 0,
        deadline=spec.deadline,
        chaos=chaos_policy,
    )


def _build_composed_campaign(spec: CampaignSpec, *,
                             executor: Executor | None = None
                             ) -> tuple[FaultCampaign, list[FaultModel]]:
    comp = get_composition(spec.composition)
    suite = spec.suite if spec.suite is not None else comp.suite_factory()
    if suite.dut.lower() != comp.key:
        raise TargetError(
            f"suite is for DUT {suite.dut!r} but the campaign targets "
            f"composition {comp.name!r}"
        )
    faults = select_faults(comp.faults_factory(), spec.faults)
    scripts = Compiler().compile_suite(suite)
    stand_target = get_stand(spec.stand or _default_adaptable_stand())
    stand_factory = stand_target.factory_for(comp.pins)
    _require_method_coverage(
        stand_target,
        sorted({method for script in scripts for method in script.methods_used()}),
        dut=comp.name,
    )
    if spec.preflight == "lint":
        _run_lint_preflight_composition(comp.name)
    if executor is None:
        executor = make_executor(spec.backend, spec.jobs,
                                 concurrency=spec.concurrency)
    campaign = FaultCampaign(
        scripts,
        suite.signals,
        stand_factory,
        functools.partial(_build_composition_harness, comp.name),
        functools.partial(_build_assembly, comp.name),
        policy=spec.policy,
        executor=executor,
        max_attempts=1 + max(0, spec.retries),
        resilience=_resilience_for(spec),
        use_plans=spec.use_plans,
        reuse_stands=spec.reuse_stands,
        use_vm=spec.use_vm,
    )
    return campaign, faults


def build_campaign(spec: CampaignSpec, *,
                   executor: Executor | None = None
                   ) -> tuple[FaultCampaign, list[FaultModel]]:
    """Expand a :class:`CampaignSpec` into a ready-to-run campaign.

    Returns the configured :class:`~repro.analysis.campaign.FaultCampaign`
    and the selected fault models; :func:`run_campaign` is the one-call
    wrapper.  Exposed separately so callers can reuse the expansion with a
    custom executor or fault subset.  An explicit *executor* takes
    precedence over the spec's ``backend`` / ``jobs`` / ``concurrency``
    fields, which are then not consulted at all.
    """
    if spec.composition is not None:
        return _build_composed_campaign(spec, executor=executor)
    suite = _resolve_suite(spec)
    target = get_dut(spec.dut or suite.dut)
    if target.faults_factory is None:
        raise TargetError(
            f"DUT {target.name!r} has no fault catalogue; campaignable DUTs: "
            f"{list(campaignable_dut_names())}"
        )
    if suite.dut.lower() != target.key:
        raise TargetError(
            f"suite is for DUT {suite.dut!r} but the campaign targets "
            f"{target.name!r}"
        )
    faults = select_faults(target.faults_factory(), spec.faults)
    scripts = Compiler().compile_suite(suite)
    stand_target = get_stand(spec.stand or default_stand_for(target))
    stand_factory = stand_factory_for(stand_target, target)
    # Pre-flight capability negotiation: a stand that lacks a resource for
    # any method the compiled scripts use (e.g. a get_i sheet on a stand
    # without an ammeter) is rejected here, before a single job is built -
    # not discovered as ERROR verdicts halfway through the campaign.
    _require_method_coverage(
        stand_target,
        sorted({method for script in scripts for method in script.methods_used()}),
        dut=target.name,
    )
    if spec.preflight == "lint":
        _run_lint_preflight(target.name)
    if executor is None:
        executor = make_executor(spec.backend, spec.jobs,
                                 concurrency=spec.concurrency)
    campaign = FaultCampaign(
        scripts,
        # The scripts were compiled against the suite's own signal sheet, so
        # execution must use that sheet too - a workbook may rename or remap
        # signals relative to the registered bundled set.
        suite.signals,
        stand_factory,
        target.harness_factory,
        target.ecu_factory,
        policy=spec.policy,
        executor=executor,
        max_attempts=1 + max(0, spec.retries),
        resilience=_resilience_for(spec),
        use_plans=spec.use_plans,
        reuse_stands=spec.reuse_stands,
        use_vm=spec.use_vm,
    )
    return campaign, faults


def _campaign_resume_key(spec: CampaignSpec, campaign: FaultCampaign,
                         faults: Sequence[FaultModel]) -> str:
    """Content fingerprint identifying a resumable campaign's checkpoints.

    Built from everything that determines job identities and verdicts -
    compiled script content, fault selection, stand, allocation policy,
    fast-path switches - and nothing that does not (backend, worker
    count): a campaign killed on the process backend may resume on the
    serial one and still merge byte-identically.
    """
    from .teststand.serialize import script_key

    document = {
        "scripts": [script_key(script) for script in campaign.scripts],
        "faults": [fault.name for fault in faults],
        "dut": spec.dut,
        "composition": spec.composition,
        "stand": spec.stand,
        "policy": spec.policy,
        "use_plans": bool(spec.use_plans),
        "use_vm": bool(spec.use_vm),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_campaign(spec: CampaignSpec, *,
                 executor: Executor | None = None) -> CampaignResult:
    """Expand a :class:`CampaignSpec` through the registry and execute it.

    An explicit *executor* overrides the spec's ``backend`` / ``jobs`` /
    ``concurrency``.  With ``spec.store`` set, the finished campaign is
    recorded into that result store and the returned result carries the
    assigned :attr:`~repro.analysis.campaign.CampaignResult.store_run_id`.

    With ``spec.resume`` additionally set, the run is checkpointed: each
    finished job persists into the store as it completes, jobs already
    checkpointed under the same campaign fingerprint are restored instead
    of re-executed, and the checkpoints are dropped once the merged final
    report records.  Killing a resumable campaign at any point therefore
    loses at most the jobs in flight; re-running the same spec produces a
    final report byte-identical to an uninterrupted run.
    """
    campaign, faults = build_campaign(spec, executor=executor)
    if spec.resume and not spec.store:
        raise ConfigurationError(
            "campaign resume requires a result store "
            "(CampaignSpec(store=..., resume=True))"
        )
    store = None
    completed = None
    on_result = None
    resume_key = ""
    if spec.store:
        # Imported lazily: the registry must not pay the store's sqlite
        # setup cost (nor create files) unless a spec actually records.
        from .store import ResultStore
        store = ResultStore(spec.store)
        if spec.resume:
            resume_key = _campaign_resume_key(spec, campaign, faults)
            completed = store.load_checkpoints(resume_key)
            on_result = functools.partial(store.save_checkpoint, resume_key)
    result = campaign.run(faults, completed=completed, on_result=on_result)
    if store is not None:
        result.store_run_id = store.record_campaign(result, spec)
        if spec.resume:
            store.clear_checkpoints(resume_key)
    return result


# ---------------------------------------------------------------------------
# Bundled registrations: the five body-electronics ECUs, the three stands
# ---------------------------------------------------------------------------

register_stand("paper", build_paper_stand,
               description="the paper's Section 4 stand (fixed paper pinning)")
register_stand("big_rack", build_big_rack, adaptable=True,
               description="fully equipped HIL rack with crossbar switching")
register_stand("minimal", build_minimal_bench, adaptable=True,
               description="minimal hand-wired laboratory bench")

register_dut(DutTarget(
    name=InteriorLightEcu.NAME,
    ecu_factory=InteriorLightEcu,
    harness_factory=interior_harness,
    signals_factory=paper_signal_set,
    faults_factory=interior_light_faults,
    suite_factory=extended_suite,
    description="interior illumination (the paper's worked example)",
))
register_dut(DutTarget(
    name=CentralLockingEcu.NAME,
    ecu_factory=CentralLockingEcu,
    harness_factory=locking_harness,
    signals_factory=locking_signal_set,
    faults_factory=central_locking_faults,
    suite_factory=locking_suite,
    pins=("KEY_SW", "UNLOCK_SW", "LOCK_LED", "LOCK_ACT"),
    description="central locking (the reuse experiment's second project)",
))
register_dut(DutTarget(
    name=WiperEcu.NAME,
    ecu_factory=WiperEcu,
    harness_factory=wiper_harness,
    signals_factory=wiper_signal_set,
    faults_factory=wiper_faults,
    suite_factory=wiper_suite,
    pins=("WASH_SW", "WIPER_MOTOR", "WIPER_FAST", "WASH_PUMP"),
    description="front wiper control",
))
register_dut(DutTarget(
    name=WindowLifterEcu.NAME,
    ecu_factory=WindowLifterEcu,
    harness_factory=window_lifter_harness,
    signals_factory=window_lifter_signal_set,
    faults_factory=window_lifter_faults,
    suite_factory=window_lifter_suite,
    pins=("WIN_SW_UP", "WIN_SW_DOWN", "WIN_MOTOR_UP", "WIN_MOTOR_DOWN"),
    description="door window lifter",
))
register_dut(DutTarget(
    name=ExteriorLightEcu.NAME,
    ecu_factory=ExteriorLightEcu,
    harness_factory=exterior_light_harness,
    signals_factory=exterior_light_signal_set,
    faults_factory=exterior_light_faults,
    suite_factory=exterior_light_suite,
    pins=("PARK_SW", "LOW_BEAM", "DRL", "POSITION_LIGHT"),
    description="exterior lighting",
))
register_dut(DutTarget(
    name=InstrumentClusterEcu.NAME,
    ecu_factory=InstrumentClusterEcu,
    harness_factory=cluster_harness,
    signals_factory=cluster_signal_set,
    faults_factory=instrument_cluster_faults,
    suite_factory=cluster_suite,
    pins=("SPEED_SENSOR", "SPEED_DISP", "LOCK_TELLTALE"),
    description="instrument cluster (produces the speed broadcast)",
))

register_composition(CompositionTarget(
    name=COMPOSITION_NAME,
    members=(
        CompositionMember("lock", CentralLockingEcu.NAME),
        CompositionMember("cluster", InstrumentClusterEcu.NAME),
    ),
    suite_factory=composed_suite,
    description="central locking fed by the real instrument cluster's "
                "speed broadcast on one shared CAN bus",
    # The interaction sheets never probe the speedometer gauge, so a
    # gauge defect that the cluster's own suite catches is - expectedly -
    # invisible when composed.
    expected_overrides=(("cluster.gauge_stuck_zero", False),),
))
