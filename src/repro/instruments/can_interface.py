"""CAN interface card: transmits and receives the DUT's bus messages."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import InstrumentError
from ..core.signals import Signal
from ..core.script import MethodCall
from ..core.values import parse_binary
from ..dut.harness import TestHarness
from ..methods import MethodOutcome, limits_for_call
from .base import Capability, Instrument

__all__ = ["CanInterface"]


class CanInterface(Instrument):
    """A CAN bus interface supporting ``put_can`` and ``get_can``.

    ``put_can`` transmits the message that carries the addressed signal with
    the raw payload literal from the status table (e.g. ``0001B``).
    ``get_can`` reads back the most recent frame of the signal's message from
    the DUT and compares either the raw payload (``data``) or the decoded
    signal value (``data_min`` / ``data_max``).
    """

    TERMINALS = ("can",)
    IS_BUS_INTERFACE = True

    def __init__(self, name: str, *, bitrate: int = 500_000,
                 io_delay: float = 0.0):
        super().__init__(name, io_delay=io_delay)
        if bitrate <= 0:
            raise InstrumentError("CAN bitrate must be positive")
        self.bitrate = int(bitrate)

    def capabilities(self) -> tuple[Capability, ...]:
        return (
            Capability("put_can", "data", 0.0, float(2**64 - 1), ""),
            Capability("get_can", "data", 0.0, float(2**64 - 1), ""),
        )

    def _message_for(self, signal: Signal) -> str:
        if not signal.message:
            raise InstrumentError(
                f"signal {signal.name!r} has no carrying CAN message configured"
            )
        return signal.message

    def _perform(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
        *,
        prepared: tuple | None = None,
    ) -> MethodOutcome:
        method = call.method.lower()
        if method == "put_can":
            raw = call.param("data")
            if raw is None:
                raise InstrumentError("put_can without a data parameter")
            payload = parse_binary(raw)
            message = self._message_for(signal)
            harness.send_can_payload(message, payload)
            return MethodOutcome(
                method=call.method,
                passed=True,
                observed=float(payload),
                detail=f"{self.name} sent {message} data={raw}",
            )
        if method == "get_can":
            message = self._message_for(signal)
            expected_raw = call.param("data")
            if expected_raw is not None:
                observed_payload = harness.last_can_payload(message)
                expected = parse_binary(expected_raw)
                passed = observed_payload == expected
                return MethodOutcome(
                    method=call.method,
                    passed=passed,
                    observed=float(observed_payload) if observed_payload is not None else None,
                    detail=(
                        f"{self.name} expected {message} payload {expected}, "
                        f"got {observed_payload}"
                    ),
                )
            observed_value = harness.last_can_signal(message, signal.name)
            if prepared is not None and prepared[1] is not None:
                limits = prepared[1]
            else:
                limits = limits_for_call(call, "data", variables)
            passed = observed_value is not None and limits.contains(observed_value)
            return MethodOutcome(
                method=call.method,
                passed=passed,
                observed=observed_value,
                limits=limits,
                detail=f"{self.name} decoded {signal.name} from {message}",
            )
        raise InstrumentError(f"CAN interface {self.name!r} cannot perform {call.method!r}")
