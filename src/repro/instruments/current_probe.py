"""Current probe: measures the current sourced by a DUT output.

Tolerance semantics
-------------------

Every measuring instrument carries an ``accuracy`` that widens the
acceptance window of a measurement.  The semantics differ by instrument
class and are part of each instrument's contract:

* :class:`~repro.instruments.dvm.Dvm` and
  :class:`~repro.instruments.ohmmeter.OhmMeter` quote an *absolute*
  accuracy in their measuring unit (volts / ohms), the convention of
  bench multimeter data sheets,
* :class:`CurrentProbe` quotes a *fraction of the reading* (the clamp-meter
  convention "±1 % of reading"), because a clamp probe's error scales with
  the measured current.

Before the tolerance audit the probe passed its fractional spec directly as
an absolute tolerance to :meth:`~repro.core.values.Interval.contains`,
which silently widened every current window by 10 mA - wider than the
defect margin of the ``fast_relay_weak`` knowledge-gap fault.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import InstrumentError
from ..core.signals import Signal
from ..core.script import MethodCall
from ..dut.harness import TestHarness
from ..methods import MethodOutcome, limits_for_call
from .base import Capability, Instrument

__all__ = ["CurrentProbe"]


class CurrentProbe(Instrument):
    """A clamp-style current probe supporting ``get_i``.

    ``accuracy`` is a *fraction of the reading* (default 0.01 = ±1 % of
    reading), not an absolute current: the acceptance limits are widened by
    ``accuracy * |observed|`` amperes.  See the module docstring for how
    this relates to the absolute accuracies of the DVM and the ohm meter.
    """

    TERMINALS = ("clamp",)

    def __init__(self, name: str, *, i_max: float = 30.0, accuracy: float = 0.01,
                 io_delay: float = 0.0):
        super().__init__(name, io_delay=io_delay)
        if i_max <= 0:
            raise InstrumentError("current probe range must be positive")
        if not 0.0 <= accuracy < 1.0:
            raise InstrumentError(
                "current probe accuracy is a fraction of the reading "
                "and must lie in [0, 1)"
            )
        self.i_max = float(i_max)
        self.accuracy = float(accuracy)

    def capabilities(self) -> tuple[Capability, ...]:
        return (Capability("get_i", "i", -self.i_max, self.i_max, "A"),)

    def _perform(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
        *,
        prepared: tuple | None = None,
    ) -> MethodOutcome:
        if call.method.lower() != "get_i":
            raise InstrumentError(f"current probe {self.name!r} cannot perform {call.method!r}")
        if not pins:
            raise InstrumentError(f"current probe {self.name!r} has not been routed to any pin")
        observed = harness.measure_current(pins[0])
        if prepared is not None and prepared[1] is not None:
            limits = prepared[1]
        else:
            limits = limits_for_call(call, "i", variables)
        # Fractional accuracy: ±(accuracy x reading) amperes of tolerance.
        passed = limits.contains(observed, tolerance=self.accuracy * abs(observed))
        return MethodOutcome(
            method=call.method,
            passed=passed,
            observed=observed,
            limits=limits,
            unit="A",
            detail=f"measured by {self.name} at {pins[0]}",
        )
