"""Current probe: measures the current sourced by a DUT output."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import InstrumentError
from ..core.signals import Signal
from ..core.script import MethodCall
from ..dut.harness import TestHarness
from ..methods import MethodOutcome, limits_from_params
from .base import Capability, Instrument

__all__ = ["CurrentProbe"]


class CurrentProbe(Instrument):
    """A clamp-style current probe supporting ``get_i``."""

    TERMINALS = ("clamp",)

    def __init__(self, name: str, *, i_max: float = 30.0, accuracy: float = 0.01):
        super().__init__(name)
        if i_max <= 0:
            raise InstrumentError("current probe range must be positive")
        self.i_max = float(i_max)
        self.accuracy = float(accuracy)

    def capabilities(self) -> tuple[Capability, ...]:
        return (Capability("get_i", "i", -self.i_max, self.i_max, "A"),)

    def execute(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
    ) -> MethodOutcome:
        if call.method.lower() != "get_i":
            raise InstrumentError(f"current probe {self.name!r} cannot perform {call.method!r}")
        if not pins:
            raise InstrumentError(f"current probe {self.name!r} has not been routed to any pin")
        observed = harness.measure_current(pins[0])
        limits = limits_from_params(dict(call.params), "i", variables)
        passed = limits.contains(observed, tolerance=self.accuracy)
        return MethodOutcome(
            method=call.method,
            passed=passed,
            observed=observed,
            limits=limits,
            unit="A",
            detail=f"measured by {self.name} at {pins[0]}",
        )
