"""Ohm meter: measures the resistance seen at a DUT pin."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import InstrumentError
from ..core.signals import Signal
from ..core.script import MethodCall
from ..dut.harness import TestHarness
from ..methods import MethodOutcome, limits_for_call
from .base import Capability, Instrument

__all__ = ["OhmMeter"]


class OhmMeter(Instrument):
    """A resistance meter supporting ``get_r``.

    ``accuracy`` is an *absolute* tolerance in ohms (default 0.5 Ohm), the
    same convention as the :class:`~repro.instruments.dvm.Dvm`; the
    clamp-style current probe instead quotes a fraction of the reading.
    """

    TERMINALS = ("a",)

    def __init__(self, name: str, *, max_ohms: float = 10.0e6, accuracy: float = 0.5,
                 io_delay: float = 0.0):
        super().__init__(name, io_delay=io_delay)
        if max_ohms <= 0:
            raise InstrumentError("ohm meter range must be positive")
        self.max_ohms = float(max_ohms)
        self.accuracy = float(accuracy)

    def capabilities(self) -> tuple[Capability, ...]:
        return (Capability("get_r", "r", 0.0, self.max_ohms, "Ohm"),)

    def _perform(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
        *,
        prepared: tuple | None = None,
    ) -> MethodOutcome:
        if call.method.lower() != "get_r":
            raise InstrumentError(f"ohm meter {self.name!r} cannot perform {call.method!r}")
        if not pins:
            raise InstrumentError(f"ohm meter {self.name!r} has not been routed to any pin")
        observed = harness.measure_resistance(pins[0])
        if prepared is not None and prepared[1] is not None:
            limits = prepared[1]
        else:
            limits = limits_for_call(call, "r", variables)
        passed = limits.contains(observed, tolerance=self.accuracy)
        return MethodOutcome(
            method=call.method,
            passed=passed,
            observed=observed,
            limits=limits,
            unit="Ohm",
            detail=f"measured by {self.name} at {pins[0]}",
        )
