"""Virtual instrument framework.

A test stand *resource* (the paper's term) is an instrument that supports a
set of methods within parameter ranges: *"Ressources in this context are
described by the methods that are supported by them and the valid range for
all parameters."*  This module defines

:class:`Capability`
    one row of the paper's resource table: a supported method, its principal
    attribute, the valid min/max range and the unit,
:class:`Instrument`
    the base class all virtual instruments derive from.  An instrument knows
    how to *perform* the methods it supports against a
    :class:`~repro.dut.harness.TestHarness`.

Instruments are intentionally unaware of signals, sheets or XML - they see
only pins and parameter values, which is what keeps the execution side of
the tool chain independent from the definition side.

Every instrument also carries a *latency model*: ``io_delay`` is the real
wall-clock cost of one method call (command round-trip over GPIB / USB /
SCPI on a physical stand).  It defaults to ``0`` so the purely virtual
stands stay fast, but a latency-simulated stand sets it to a few
milliseconds per call - which is exactly the workload the ``async``
execution backend multiplexes: subclasses implement the pure computation in
:meth:`Instrument._perform`, while the public entry points :meth:`execute`
(blocking sleep) and :meth:`aexecute` (``await asyncio.sleep``) pay the
latency in the way their caller can afford.
"""

from __future__ import annotations

import abc
import asyncio
import math
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from .. import chaos as _chaos
from ..core.errors import CapabilityError, InstrumentError
from ..core.signals import Signal
from ..core.script import MethodCall
from ..core.values import Interval, format_number
from ..dut.harness import TestHarness
from ..methods import MethodOutcome

__all__ = ["Capability", "Instrument"]


@dataclass(frozen=True)
class Capability:
    """One supported method with its valid parameter range."""

    method: str
    attribute: str
    minimum: float
    maximum: float
    unit: str = ""

    def __post_init__(self) -> None:
        if self.minimum > self.maximum:
            raise InstrumentError(
                f"capability {self.method!r}: minimum {self.minimum} exceeds "
                f"maximum {self.maximum}"
            )

    @property
    def range(self) -> Interval:
        """Valid parameter range as an interval."""
        return Interval(self.minimum, self.maximum)

    @property
    def span(self) -> float:
        """Width of the valid range (used by the best-fit allocation policy)."""
        return self.maximum - self.minimum

    def can_serve(self, nominal: float | None, acceptance: Interval | None = None) -> bool:
        """Whether a request with this nominal value / acceptance window fits.

        A request is servable when either its nominal value lies inside the
        capability range, or - for requests whose nominal is out of range but
        that specify an acceptance window (e.g. ``r = INF`` with
        ``r_min = 5000``) - the acceptance window overlaps the range so a
        clamped value still satisfies the test.
        """
        if nominal is not None and self.range.contains(nominal):
            return True
        if acceptance is not None and acceptance.intersects(self.range):
            return True
        return False

    def as_row(self) -> tuple[str, str, str, str, str]:
        """Render as the paper's resource-table columns (method..unit)."""
        return (
            self.method,
            self.attribute,
            format_number(self.minimum),
            format_number(self.maximum, decimal_comma=False)
            if not math.isinf(self.maximum) else "INF",
            self.unit,
        )

    def __str__(self) -> str:
        return f"{self.method}({self.attribute}: {self.range} {self.unit})".strip()


class Instrument(abc.ABC):
    """Base class of all virtual instruments.

    Subclasses declare their terminals (connection points, e.g. ``hi``/``lo``
    for a DVM) and capabilities, and implement :meth:`_perform` which carries
    out one method call against the harness.  Callers never invoke
    ``_perform`` directly: they go through :meth:`execute` (synchronous,
    blocks for :attr:`io_delay`) or :meth:`aexecute` (awaitable, yields the
    event loop for :attr:`io_delay`) so the instrument's I/O latency is paid
    exactly once per call on either path.
    """

    #: Connection terminals of the instrument, in routing order.
    TERMINALS: tuple[str, ...] = ("a",)
    #: Whether the instrument attaches to the bus instead of discrete pins.
    IS_BUS_INTERFACE: bool = False

    def __init__(self, name: str, *, io_delay: float = 0.0):
        if not str(name).strip():
            raise InstrumentError("instrument needs a name")
        io_delay = float(io_delay)
        if not (io_delay >= 0):  # also rejects NaN
            raise InstrumentError(
                f"instrument io_delay must be a non-negative number of "
                f"seconds, got {io_delay!r}"
            )
        self.name = str(name).strip()
        #: Simulated wall-clock latency of one method call in seconds.
        self.io_delay = io_delay

    def reset(self) -> None:
        """Restore the instrument to its idle state (between-jobs hook).

        The executor's stand pool calls this on every instrument of a
        reused stand before the stand serves its next job.  The bundled
        instruments are stateless (all electrical state lives in the
        per-job harness), so the default is a no-op; stateful plugin
        instruments override it to drop buffered readings, armed triggers
        and the like.
        """

    # -- capabilities -----------------------------------------------------------

    @abc.abstractmethod
    def capabilities(self) -> tuple[Capability, ...]:
        """The methods this instrument supports with their valid ranges."""

    def supports(self, method: str) -> bool:
        """Whether the instrument supports *method* at all."""
        wanted = str(method).lower()
        return any(cap.method.lower() == wanted for cap in self.capabilities())

    def capability_for(self, method: str) -> Capability:
        """Capability entry for *method* (raises when unsupported)."""
        wanted = str(method).lower()
        for capability in self.capabilities():
            if capability.method.lower() == wanted:
                return capability
        raise CapabilityError(
            f"instrument {self.name!r} does not support method {method!r}",
            method=method,
        )

    @property
    def terminals(self) -> tuple[str, ...]:
        return self.TERMINALS

    @property
    def is_bus_interface(self) -> bool:
        return self.IS_BUS_INTERFACE

    # -- execution ----------------------------------------------------------------

    def execute(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
    ) -> MethodOutcome:
        """Perform one method call synchronously and return its outcome.

        Blocks the calling thread for :attr:`io_delay` seconds first - the
        cost a serial or thread worker pays for the instrument round-trip -
        then delegates to :meth:`_perform`.

        Parameters
        ----------
        call:
            The method statement from the test script (textual parameters).
        signal:
            The requirement-level signal being stimulated or checked; bus
            instruments use its ``message`` attribute.
        pins:
            The DUT pins this instrument has been routed to for the call, in
            terminal order.
        harness:
            The DUT harness providing the electrical / bus primitives.
        variables:
            Stand variables for evaluating relative limits (``ubatt``...).
        """
        if _chaos.ACTIVE is not None:
            # Chaos path: the active schedule may fault this round-trip
            # (raises InstrumentIOError), stretch it, or glitch its reading.
            hang, glitch = _chaos.on_instrument_call()
            _chaos.sleep_hang(hang)
            if self.io_delay > 0.0:
                time.sleep(self.io_delay)
            outcome = self._perform(call, signal, pins, harness, variables)
            return _chaos.glitched(outcome) if glitch else outcome
        if self.io_delay > 0.0:
            time.sleep(self.io_delay)
        return self._perform(call, signal, pins, harness, variables)

    async def aexecute(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
    ) -> MethodOutcome:
        """Perform one method call, awaiting the I/O latency.

        The awaitable twin of :meth:`execute` (same parameters, same
        outcome): ``await asyncio.sleep(io_delay)`` yields the event loop
        while the (simulated) instrument round-trip is in flight, which is
        what lets one async worker drive many slow stands concurrently.
        """
        if _chaos.ACTIVE is not None:
            hang, glitch = _chaos.on_instrument_call()
            if hang > 0.0:
                await asyncio.sleep(hang)
            if self.io_delay > 0.0:
                await asyncio.sleep(self.io_delay)
            outcome = self._perform(call, signal, pins, harness, variables)
            return _chaos.glitched(outcome) if glitch else outcome
        if self.io_delay > 0.0:
            await asyncio.sleep(self.io_delay)
        return self._perform(call, signal, pins, harness, variables)

    @abc.abstractmethod
    def _perform(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
        *,
        prepared: tuple | None = None,
    ) -> MethodOutcome:
        """Carry out one method call against the harness (no latency).

        Implemented by each concrete instrument; parameters are those of
        :meth:`execute`.  The computation must stay synchronous and free of
        real-time waits - all wall-clock latency belongs to the
        ``execute`` / ``aexecute`` wrappers, all *simulated* time to the
        harness clock.

        ``prepared`` is an optional ``(nominal, limits)`` pair of the
        call's principal-attribute parameter value and acceptance interval,
        pre-evaluated by the bytecode VM (:mod:`repro.teststand.vm`) for
        the run's exact variables.  Instruments use a non-``None`` entry in
        place of their own :func:`~repro.methods.base.evaluate_call_parameter`
        / :func:`~repro.methods.base.limits_for_call` result - the values
        are computed by those same helpers, so verdicts are byte-identical
        - and fall back to self-evaluation otherwise.  Subclasses without
        the keyword keep working: the VM probes the signature and simply
        never passes it.
        """

    def __repr__(self) -> str:
        methods = ", ".join(sorted({c.method for c in self.capabilities()}))
        return f"{type(self).__name__}(name={self.name!r}, methods=[{methods}])"
