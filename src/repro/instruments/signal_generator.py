"""Signal generator: a voltage source with a wider range than the PSU."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import InstrumentError
from ..core.signals import Signal
from ..core.script import MethodCall
from ..dut.harness import TestHarness
from ..methods import MethodOutcome, evaluate_call_parameter, limits_for_call
from .base import Capability, Instrument

__all__ = ["SignalGenerator"]


class SignalGenerator(Instrument):
    """An arbitrary voltage source supporting ``put_u`` and ``put_digital``.

    Compared to the :class:`~repro.instruments.power_supply.PowerSupply` the
    generator covers negative voltages (sensor emulation) and can also act as
    a logic-level driver, making it the universal stimulus of the "big rack"
    stand used in the portability experiment.
    """

    TERMINALS = ("out",)

    def __init__(self, name: str, *, u_min: float = -20.0, u_max: float = 20.0,
                 io_delay: float = 0.0):
        super().__init__(name, io_delay=io_delay)
        if u_min >= u_max:
            raise InstrumentError("signal generator voltage range is empty")
        self.u_min = float(u_min)
        self.u_max = float(u_max)

    def capabilities(self) -> tuple[Capability, ...]:
        return (
            Capability("put_u", "u", self.u_min, self.u_max, "V"),
            Capability("put_digital", "level", 0.0, 1.0, ""),
        )

    def _perform(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
        *,
        prepared: tuple | None = None,
    ) -> MethodOutcome:
        method = call.method.lower()
        if not pins:
            raise InstrumentError(f"signal generator {self.name!r} has not been routed to any pin")
        if method == "put_u":
            if prepared is not None and prepared[0] is not None:
                requested = prepared[0]
            else:
                requested = evaluate_call_parameter(call, "u", variables)
            if requested is None:
                raise InstrumentError("put_u without a u parameter")
            applied = min(max(requested, self.u_min), self.u_max)
            harness.apply_voltage(pins[0], applied)
            if prepared is not None and prepared[1] is not None:
                acceptance = prepared[1]
            else:
                acceptance = limits_for_call(call, "u", variables)
            return MethodOutcome(
                method=call.method,
                passed=acceptance.contains(applied, tolerance=1e-9),
                observed=applied,
                unit="V",
                detail=f"{self.name} applied {applied:g} V at {pins[0]}",
            )
        if method == "put_digital":
            if prepared is not None and prepared[0] is not None:
                level = prepared[0] or 0.0
            else:
                level = evaluate_call_parameter(call, "level", variables, default=0.0) or 0.0
            level = 1.0 if level >= 0.5 else 0.0
            supply = float(variables.get("ubatt", harness.ubatt))
            harness.apply_voltage(pins[0], level * supply)
            return MethodOutcome(
                method=call.method,
                passed=True,
                observed=level,
                detail=f"{self.name} drove logic {int(level)} at {pins[0]}",
            )
        raise InstrumentError(f"signal generator {self.name!r} cannot perform {call.method!r}")
