"""Digital volt meter (the paper's ``Ress1``)."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import InstrumentError
from ..core.signals import Signal
from ..core.script import MethodCall
from ..dut.harness import TestHarness
from ..methods import MethodOutcome, limits_for_call
from .base import Capability, Instrument

__all__ = ["Dvm"]


class Dvm(Instrument):
    """A two-terminal digital volt meter supporting ``get_u``.

    The DVM measures the differential voltage between its ``hi`` and ``lo``
    terminals (``lo`` defaults to ground when only one pin is routed) and
    compares it against the limits of the method call, which may be relative
    to the stand's supply voltage.

    ``accuracy`` is an *absolute* tolerance in volts (bench-multimeter
    convention; default 1 mV), unlike the clamp-style
    :class:`~repro.instruments.current_probe.CurrentProbe`, whose accuracy
    is a fraction of the reading.
    """

    TERMINALS = ("hi", "lo")

    def __init__(
        self,
        name: str,
        *,
        u_min: float = -60.0,
        u_max: float = 60.0,
        accuracy: float = 0.001,
        io_delay: float = 0.0,
    ):
        super().__init__(name, io_delay=io_delay)
        if u_min >= u_max:
            raise InstrumentError("DVM voltage range is empty")
        self.u_min = float(u_min)
        self.u_max = float(u_max)
        self.accuracy = float(accuracy)

    def capabilities(self) -> tuple[Capability, ...]:
        return (Capability("get_u", "u", self.u_min, self.u_max, "V"),)

    def _perform(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
        *,
        prepared: tuple | None = None,
    ) -> MethodOutcome:
        if call.method.lower() != "get_u":
            raise InstrumentError(f"DVM {self.name!r} cannot perform {call.method!r}")
        if not pins:
            raise InstrumentError(f"DVM {self.name!r} has not been routed to any pin")
        observed = harness.measure_voltage(tuple(pins))
        if not (self.u_min <= observed <= self.u_max):
            return MethodOutcome(
                method=call.method,
                passed=False,
                observed=observed,
                unit="V",
                detail=f"reading outside the meter range of {self.name}",
            )
        if prepared is not None and prepared[1] is not None:
            limits = prepared[1]
        else:
            limits = limits_for_call(call, "u", variables)
        passed = limits.contains(observed, tolerance=self.accuracy)
        return MethodOutcome(
            method=call.method,
            passed=passed,
            observed=observed,
            limits=limits,
            unit="V",
            detail=f"measured by {self.name} at {'/'.join(pins)}",
        )
