"""Programmable resistor decade (the paper's ``Ress2`` / ``Ress3``)."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..core.errors import InstrumentError
from ..core.signals import Signal
from ..core.script import MethodCall
from ..dut.harness import TestHarness
from ..methods import MethodOutcome, evaluate_call_parameter, limits_for_call
from .base import Capability, Instrument

__all__ = ["ResistorDecade"]


class ResistorDecade(Instrument):
    """A programmable resistance applied between one DUT pin and ground.

    Used to emulate resistive contacts such as the paper's door switches:
    the ``Open`` status applies a fraction of an ohm, the ``Closed`` status
    requests an open circuit (``INF``) which the decade realises with its
    maximum resistance - accepted as long as the applied value stays inside
    the status' acceptance window (``r_min``).
    """

    TERMINALS = ("a",)

    def __init__(
        self,
        name: str,
        *,
        max_ohms: float = 1.0e6,
        min_ohms: float = 0.0,
        resolution: float = 0.1,
        io_delay: float = 0.0,
    ):
        super().__init__(name, io_delay=io_delay)
        if max_ohms <= min_ohms:
            raise InstrumentError("resistor decade range is empty")
        if resolution <= 0:
            raise InstrumentError("resistor decade resolution must be positive")
        self.min_ohms = float(min_ohms)
        self.max_ohms = float(max_ohms)
        self.resolution = float(resolution)

    def capabilities(self) -> tuple[Capability, ...]:
        return (Capability("put_r", "r", self.min_ohms, self.max_ohms, "Ohm"),)

    def _quantise(self, ohms: float) -> float:
        clamped = min(max(ohms, self.min_ohms), self.max_ohms)
        steps = round(clamped / self.resolution)
        return min(max(steps * self.resolution, self.min_ohms), self.max_ohms)

    def _perform(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
        *,
        prepared: tuple | None = None,
    ) -> MethodOutcome:
        if call.method.lower() != "put_r":
            raise InstrumentError(
                f"resistor decade {self.name!r} cannot perform {call.method!r}"
            )
        if not pins:
            raise InstrumentError(
                f"resistor decade {self.name!r} has not been routed to any pin"
            )
        if prepared is not None and prepared[0] is not None:
            requested = prepared[0]
        else:
            requested = evaluate_call_parameter(call, "r", variables)
        if requested is None:
            raise InstrumentError("put_r without an r parameter")
        applied = self.max_ohms if math.isinf(requested) else self._quantise(requested)
        harness.apply_resistance(pins[0], applied)
        if prepared is not None and prepared[1] is not None:
            acceptance = prepared[1]
        else:
            acceptance = limits_for_call(call, "r", variables)
        passed = acceptance.contains(applied, tolerance=self.resolution / 2)
        detail = (
            f"{self.name} applied {applied:g} Ohm at {pins[0]}"
            + (" (clamped)" if not math.isinf(requested) and applied != requested else "")
        )
        return MethodOutcome(
            method=call.method,
            passed=passed,
            observed=applied,
            limits=acceptance if acceptance.width != math.inf else None,
            unit="Ohm",
            detail=detail,
        )
