"""Programmable power supply / voltage source."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import InstrumentError
from ..core.signals import Signal
from ..core.script import MethodCall
from ..dut.harness import TestHarness
from ..methods import MethodOutcome, evaluate_call_parameter, limits_for_call
from .base import Capability, Instrument

__all__ = ["PowerSupply"]


class PowerSupply(Instrument):
    """A single-channel voltage source supporting ``put_u``.

    One power supply per stand additionally acts as the battery emulator
    providing ``UBATT``; that role is configured at the test stand level
    (see :class:`repro.teststand.stands.TestStand`), the instrument itself
    only knows how to impose a voltage on a pin.
    """

    TERMINALS = ("plus",)

    def __init__(self, name: str, *, u_min: float = 0.0, u_max: float = 30.0,
                 io_delay: float = 0.0):
        super().__init__(name, io_delay=io_delay)
        if u_min >= u_max:
            raise InstrumentError("power supply voltage range is empty")
        self.u_min = float(u_min)
        self.u_max = float(u_max)

    def capabilities(self) -> tuple[Capability, ...]:
        return (Capability("put_u", "u", self.u_min, self.u_max, "V"),)

    def _perform(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
        *,
        prepared: tuple | None = None,
    ) -> MethodOutcome:
        if call.method.lower() != "put_u":
            raise InstrumentError(f"power supply {self.name!r} cannot perform {call.method!r}")
        if not pins:
            raise InstrumentError(f"power supply {self.name!r} has not been routed to any pin")
        if prepared is not None and prepared[0] is not None:
            requested = prepared[0]
        else:
            requested = evaluate_call_parameter(call, "u", variables)
        if requested is None:
            raise InstrumentError("put_u without a u parameter")
        applied = min(max(requested, self.u_min), self.u_max)
        harness.apply_voltage(pins[0], applied)
        if prepared is not None and prepared[1] is not None:
            acceptance = prepared[1]
        else:
            acceptance = limits_for_call(call, "u", variables)
        passed = acceptance.contains(applied, tolerance=1e-9)
        return MethodOutcome(
            method=call.method,
            passed=passed,
            observed=applied,
            unit="V",
            detail=f"{self.name} applied {applied:g} V at {pins[0]}",
        )
