"""Digital I/O card: logic-level stimulation and readback."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.errors import InstrumentError
from ..core.signals import Signal
from ..core.script import MethodCall
from ..dut.harness import TestHarness
from ..methods import MethodOutcome, evaluate_call_parameter, limits_for_call
from .base import Capability, Instrument

__all__ = ["DigitalIo"]


class DigitalIo(Instrument):
    """A digital I/O channel supporting ``put_digital`` and ``get_digital``.

    Logic levels are realised electrically: driving a ``1`` applies the
    stand's supply voltage to the pin, driving a ``0`` applies 0 V; reading
    compares the pin voltage against half the supply voltage.
    """

    TERMINALS = ("io",)

    def __init__(self, name: str, *, channels: int = 8, io_delay: float = 0.0):
        super().__init__(name, io_delay=io_delay)
        if channels < 1:
            raise InstrumentError("digital I/O card needs at least one channel")
        self.channels = int(channels)

    def capabilities(self) -> tuple[Capability, ...]:
        return (
            Capability("put_digital", "level", 0.0, 1.0, ""),
            Capability("get_digital", "level", 0.0, 1.0, ""),
        )

    def _perform(
        self,
        call: MethodCall,
        signal: Signal,
        pins: Sequence[str],
        harness: TestHarness,
        variables: Mapping[str, float],
        *,
        prepared: tuple | None = None,
    ) -> MethodOutcome:
        method = call.method.lower()
        if not pins:
            raise InstrumentError(f"digital I/O {self.name!r} has not been routed to any pin")
        supply = float(variables.get("ubatt", harness.ubatt))
        if method == "put_digital":
            if prepared is not None and prepared[0] is not None:
                level = prepared[0] or 0.0
            else:
                level = evaluate_call_parameter(call, "level", variables, default=0.0) or 0.0
            level = 1.0 if level >= 0.5 else 0.0
            harness.apply_voltage(pins[0], level * supply)
            return MethodOutcome(
                method=call.method,
                passed=True,
                observed=level,
                detail=f"{self.name} drove logic {int(level)} at {pins[0]}",
            )
        if method == "get_digital":
            voltage = harness.measure_voltage(pins[0])
            observed = 1.0 if voltage >= supply / 2.0 else 0.0
            if prepared is not None and prepared[1] is not None:
                limits = prepared[1]
            else:
                limits = limits_for_call(call, "level", variables)
            passed = limits.contains(observed)
            return MethodOutcome(
                method=call.method,
                passed=passed,
                observed=observed,
                limits=limits,
                detail=f"{self.name} read {voltage:.2f} V at {pins[0]}",
            )
        raise InstrumentError(f"digital I/O {self.name!r} cannot perform {call.method!r}")
