"""Virtual instruments: the resources a test stand is built from."""

from .base import Capability, Instrument
from .can_interface import CanInterface
from .current_probe import CurrentProbe
from .digital_io import DigitalIo
from .dvm import Dvm
from .ohmmeter import OhmMeter
from .power_supply import PowerSupply
from .resistor_decade import ResistorDecade
from .signal_generator import SignalGenerator

__all__ = [
    "Capability",
    "Instrument",
    "Dvm",
    "ResistorDecade",
    "PowerSupply",
    "CurrentProbe",
    "OhmMeter",
    "DigitalIo",
    "CanInterface",
    "SignalGenerator",
]
