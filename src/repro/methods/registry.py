"""Registry of method specifications.

A :class:`MethodRegistry` is the single place where the definition side
(compiler) and the execution side (resources, interpreter) agree on the
method vocabulary.  The default registry contains the paper's methods plus
the obvious symmetric extensions; projects can register additional methods
(e.g. ``put_lin``) without touching the library.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core.errors import MethodError
from .base import MethodSpec
from .bus import BUS_METHODS
from .electrical import ELECTRICAL_METHODS
from .timing import TIMING_METHODS

__all__ = ["MethodRegistry", "default_registry"]


class MethodRegistry:
    """A case-insensitive, ordered collection of :class:`MethodSpec`."""

    def __init__(self, methods: Iterable[MethodSpec] = ()):
        self._methods: dict[str, MethodSpec] = {}
        #: Bumped on every mutation; lets content caches (execution plans,
        #: step-split memos) detect ``replace=True`` updates that change a
        #: spec without changing the registry's length.
        self._revision = 0
        for method in methods:
            self.register(method)

    def register(self, method: MethodSpec, *, replace: bool = False) -> None:
        """Add a method spec.

        Registering a name twice raises :class:`MethodError` unless *replace*
        is requested (useful for project-specific refinements).
        """
        if method.key in self._methods and not replace:
            raise MethodError(f"method {method.name!r} is already registered")
        self._methods[method.key] = method
        self._revision += 1

    def get(self, name: str) -> MethodSpec:
        """Look a method up by case-insensitive name."""
        try:
            return self._methods[str(name).lower()]
        except KeyError as exc:
            raise MethodError(f"unknown method: {name!r}") from exc

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._methods

    def __iter__(self) -> Iterator[MethodSpec]:
        return iter(self._methods.values())

    def __len__(self) -> int:
        return len(self._methods)

    @property
    def names(self) -> tuple[str, ...]:
        """All registered method names in registration order."""
        return tuple(method.name for method in self._methods.values())

    def stimuli(self) -> tuple[MethodSpec, ...]:
        """All stimulus methods."""
        return tuple(m for m in self if m.is_stimulus)

    def measurements(self) -> tuple[MethodSpec, ...]:
        """All measurement methods."""
        return tuple(m for m in self if m.is_measurement)

    def copy(self) -> "MethodRegistry":
        """Shallow copy, handy for per-project extension."""
        return MethodRegistry(self._methods.values())


def default_registry() -> MethodRegistry:
    """Build the standard registry with all built-in methods."""
    return MethodRegistry((*ELECTRICAL_METHODS, *BUS_METHODS, *TIMING_METHODS))
