"""Standard electrical methods (voltages, currents, resistances, logic pins).

These are the methods the paper's example uses for discrete pins:

``put_r``
    apply a resistance to a signal pin (resistor decade) - used for the door
    contact statuses ``Open`` / ``Closed``,
``get_u``
    measure the voltage at a signal pin and compare it against limits that
    may be relative to the supply voltage - used for ``Lo`` / ``Ho``.

The module additionally defines the symmetric counterparts (``put_u``,
``get_r``, ``put_i``, ``get_i``) and logic-level variants (``put_digital``,
``get_digital``) so that richer component tests can be expressed with the
same machinery.
"""

from __future__ import annotations

from .base import MethodKind, MethodSpec, ParameterRole, ParameterSpec

__all__ = [
    "PUT_R",
    "PUT_U",
    "PUT_I",
    "GET_U",
    "GET_R",
    "GET_I",
    "PUT_DIGITAL",
    "GET_DIGITAL",
    "ELECTRICAL_METHODS",
]


PUT_R = MethodSpec(
    name="put_r",
    kind=MethodKind.STIMULUS,
    attribute="r",
    parameters=(
        ParameterSpec("r", ParameterRole.NOMINAL, unit="Ohm",
                      description="resistance to apply between the pin and ground"),
        ParameterSpec("r_min", ParameterRole.MINIMUM, unit="Ohm", required=False,
                      description="lowest acceptable applied resistance"),
        ParameterSpec("r_max", ParameterRole.MAXIMUM, unit="Ohm", required=False,
                      description="highest acceptable applied resistance"),
    ),
    description="Apply a resistance to the signal pin (e.g. a door-contact emulation).",
)

PUT_U = MethodSpec(
    name="put_u",
    kind=MethodKind.STIMULUS,
    attribute="u",
    parameters=(
        ParameterSpec("u", ParameterRole.NOMINAL, unit="V",
                      description="voltage to apply to the signal pin"),
        ParameterSpec("u_min", ParameterRole.MINIMUM, unit="V", required=False),
        ParameterSpec("u_max", ParameterRole.MAXIMUM, unit="V", required=False),
    ),
    description="Apply a voltage to the signal pin (power supply / signal generator).",
)

PUT_I = MethodSpec(
    name="put_i",
    kind=MethodKind.STIMULUS,
    attribute="i",
    parameters=(
        ParameterSpec("i", ParameterRole.NOMINAL, unit="A",
                      description="current to source into the signal pin"),
        ParameterSpec("i_min", ParameterRole.MINIMUM, unit="A", required=False),
        ParameterSpec("i_max", ParameterRole.MAXIMUM, unit="A", required=False),
    ),
    description="Source a current into the signal pin (current source).",
)

GET_U = MethodSpec(
    name="get_u",
    kind=MethodKind.MEASUREMENT,
    attribute="u",
    parameters=(
        ParameterSpec("u_min", ParameterRole.MINIMUM, unit="V",
                      description="lower acceptance limit for the measured voltage"),
        ParameterSpec("u_max", ParameterRole.MAXIMUM, unit="V",
                      description="upper acceptance limit for the measured voltage"),
    ),
    description="Measure the voltage at the signal pin and compare it to limits.",
)

GET_R = MethodSpec(
    name="get_r",
    kind=MethodKind.MEASUREMENT,
    attribute="r",
    parameters=(
        ParameterSpec("r_min", ParameterRole.MINIMUM, unit="Ohm"),
        ParameterSpec("r_max", ParameterRole.MAXIMUM, unit="Ohm"),
    ),
    description="Measure the resistance at the signal pin and compare it to limits.",
)

GET_I = MethodSpec(
    name="get_i",
    kind=MethodKind.MEASUREMENT,
    attribute="i",
    parameters=(
        ParameterSpec("i_min", ParameterRole.MINIMUM, unit="A"),
        ParameterSpec("i_max", ParameterRole.MAXIMUM, unit="A"),
    ),
    description="Measure the current drawn by the signal pin and compare it to limits.",
)

PUT_DIGITAL = MethodSpec(
    name="put_digital",
    kind=MethodKind.STIMULUS,
    attribute="level",
    parameters=(
        ParameterSpec("level", ParameterRole.NOMINAL,
                      description="logic level to drive (0 or 1)"),
    ),
    description="Drive a logic level onto the signal pin.",
)

GET_DIGITAL = MethodSpec(
    name="get_digital",
    kind=MethodKind.MEASUREMENT,
    attribute="level",
    parameters=(
        ParameterSpec("level_min", ParameterRole.MINIMUM, required=False),
        ParameterSpec("level_max", ParameterRole.MAXIMUM, required=False),
    ),
    description="Read the logic level of the signal pin and compare it to limits.",
)

#: All electrical methods in registration order.
ELECTRICAL_METHODS: tuple[MethodSpec, ...] = (
    PUT_R,
    PUT_U,
    PUT_I,
    GET_U,
    GET_R,
    GET_I,
    PUT_DIGITAL,
    GET_DIGITAL,
)
