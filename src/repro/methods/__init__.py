"""Method vocabulary shared between test definitions and test stands."""

from .base import (
    MethodKind,
    MethodOutcome,
    MethodSpec,
    ParameterRole,
    ParameterSpec,
    evaluate_call_parameter,
    evaluate_parameter,
    limits_for_call,
    limits_from_params,
)
from .bus import BUS_METHODS, GET_CAN, PUT_CAN
from .electrical import (
    ELECTRICAL_METHODS,
    GET_DIGITAL,
    GET_I,
    GET_R,
    GET_U,
    PUT_DIGITAL,
    PUT_I,
    PUT_R,
    PUT_U,
)
from .registry import MethodRegistry, default_registry
from .timing import TIMING_METHODS, WAIT

__all__ = [
    "MethodKind",
    "MethodOutcome",
    "MethodSpec",
    "ParameterRole",
    "ParameterSpec",
    "MethodRegistry",
    "default_registry",
    "evaluate_parameter",
    "evaluate_call_parameter",
    "limits_from_params",
    "limits_for_call",
    "ELECTRICAL_METHODS",
    "BUS_METHODS",
    "TIMING_METHODS",
    "PUT_R",
    "PUT_U",
    "PUT_I",
    "GET_U",
    "GET_R",
    "GET_I",
    "PUT_DIGITAL",
    "GET_DIGITAL",
    "PUT_CAN",
    "GET_CAN",
    "WAIT",
]
