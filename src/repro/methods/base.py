"""Method model: the vocabulary shared by sheets, scripts and test stands.

The paper binds every *status* to a *method* ("the status Lo or Ho ... is
carried out by the method get_u").  Methods are therefore the contract
between the test definition side (sheets, compiler, XML) and the execution
side (test stand resources, instruments):

* the **compiler** turns a status definition into a method call with named
  parameters (``get_u u_min="(0.7*ubatt)" u_max="(1.1*ubatt)"``),
* a **resource** advertises which methods it supports and the valid range of
  every parameter,
* the **interpreter** asks an allocated resource to perform the call and
  converts the outcome into a pass/fail verdict.

This module defines the data model (:class:`MethodSpec`,
:class:`ParameterSpec`, :class:`MethodOutcome`); the concrete standard
methods live in :mod:`repro.methods.electrical`, :mod:`repro.methods.bus`
and :mod:`repro.methods.timing` and are collected by
:mod:`repro.methods.registry`.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Mapping, TYPE_CHECKING

from ..core.errors import MethodError
from ..core.values import (
    Interval,
    LimitExpression,
    compile_expression,
    format_number,
    parse_number,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.script import MethodCall
    from ..core.status import StatusDefinition

__all__ = [
    "MethodKind",
    "ParameterRole",
    "ParameterSpec",
    "MethodSpec",
    "MethodOutcome",
    "evaluate_parameter",
    "evaluate_call_parameter",
    "limits_from_params",
    "limits_for_call",
]


class MethodKind(enum.Enum):
    """Whether a method applies a stimulus, takes a measurement, or waits."""

    STIMULUS = "stimulus"
    MEASUREMENT = "measurement"
    TIMING = "timing"


class ParameterRole(enum.Enum):
    """Semantic role a parameter plays when built from a status definition.

    The compiler uses the role to decide which column of the status table
    feeds the parameter and whether the value is scaled by the status'
    reference variable (``UBATT`` in the paper).
    """

    NOMINAL = "nominal"      #: stimulus value (status table column *nom*)
    MINIMUM = "minimum"      #: lower acceptance limit (column *min*)
    MAXIMUM = "maximum"      #: upper acceptance limit (column *max*)
    PAYLOAD = "payload"      #: raw payload literal (CAN data such as ``0001B``)
    DURATION = "duration"    #: a time span in seconds
    AUXILIARY = "auxiliary"  #: extra method-specific parameter (columns D1..D3)


@dataclass(frozen=True)
class ParameterSpec:
    """Schema of one named parameter of a method."""

    name: str
    role: ParameterRole
    unit: str = ""
    required: bool = True
    description: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MethodSpec:
    """Schema of a method (name, kind, principal attribute, parameters)."""

    name: str
    kind: MethodKind
    attribute: str
    parameters: tuple[ParameterSpec, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise MethodError("method name must not be empty")
        object.__setattr__(self, "parameters", tuple(self.parameters))

    @property
    def key(self) -> str:
        """Canonical lower-case lookup key."""
        return self.name.lower()

    @property
    def is_stimulus(self) -> bool:
        return self.kind is MethodKind.STIMULUS

    @property
    def is_measurement(self) -> bool:
        return self.kind is MethodKind.MEASUREMENT

    @property
    def is_timing(self) -> bool:
        return self.kind is MethodKind.TIMING

    def parameter(self, name: str) -> ParameterSpec:
        """Look up a parameter spec by name."""
        wanted = str(name).lower()
        for spec in self.parameters:
            if spec.name.lower() == wanted:
                return spec
        raise MethodError(f"method {self.name!r} has no parameter {name!r}")

    def parameter_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.parameters)

    def validate_params(self, params: Mapping[str, str]) -> None:
        """Check a parameter mapping against the schema.

        Unknown parameter names and missing required parameters raise
        :class:`~repro.core.errors.MethodError`.
        """
        known = {spec.name.lower() for spec in self.parameters}
        for name in params:
            if str(name).lower() not in known:
                raise MethodError(
                    f"method {self.name!r} does not accept parameter {name!r}"
                )
        for spec in self.parameters:
            if spec.required and not any(
                str(name).lower() == spec.name.lower() for name in params
            ):
                raise MethodError(
                    f"method {self.name!r} requires parameter {spec.name!r}"
                )

    # -- compiling statuses into parameters ---------------------------------

    def params_from_status(self, status: "StatusDefinition") -> dict[str, str]:
        """Build the XML parameter mapping for a status bound to this method.

        The construction follows the paper's example: limit parameters whose
        status definition references a variable are written as relative
        expressions (``(0.7*ubatt)``), otherwise as plain numbers; payload
        parameters keep their literal spelling (``0001B``).
        """
        params: dict[str, str] = {}
        for spec in self.parameters:
            value = self._param_from_status(spec, status)
            if value is None:
                if spec.required:
                    raise MethodError(
                        f"status {status.name!r} does not provide a value for "
                        f"parameter {spec.name!r} of method {self.name!r}"
                    )
                continue
            params[spec.name] = value
        return params

    @staticmethod
    def _relative_or_constant(value: float | None, status: "StatusDefinition") -> str | None:
        if value is None:
            return None
        if status.variable:
            return LimitExpression.relative(value, status.variable).text
        return format_number(value)

    def _param_from_status(
        self, spec: ParameterSpec, status: "StatusDefinition"
    ) -> str | None:
        if spec.role is ParameterRole.NOMINAL:
            return self._relative_or_constant(status.nominal, status)
        if spec.role is ParameterRole.MINIMUM:
            return self._relative_or_constant(status.minimum, status)
        if spec.role is ParameterRole.MAXIMUM:
            return self._relative_or_constant(status.maximum, status)
        if spec.role is ParameterRole.PAYLOAD:
            return status.nominal_text or None
        if spec.role is ParameterRole.DURATION:
            return format_number(status.nominal) if status.nominal is not None else None
        if spec.role is ParameterRole.AUXILIARY:
            value = status.auxiliary_value(spec.name)
            return format_number(value) if value is not None else None
        raise MethodError(f"unhandled parameter role {spec.role}")  # pragma: no cover

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MethodOutcome:
    """Result of performing one method call on a resource.

    Attributes
    ----------
    method:
        Method name that was performed.
    passed:
        Verdict of the call.  Stimuli pass when they could be applied inside
        the resource's capability; measurements pass when the observed value
        lies inside the limits.
    observed:
        The measured or applied value (``None`` for timing methods).
    limits:
        The acceptance interval used (measurements only).
    unit:
        Unit of *observed*.
    detail:
        Human-readable explanation for the report.
    """

    method: str
    passed: bool
    observed: float | None = None
    limits: Interval | None = None
    unit: str = ""
    detail: str = ""

    def __bool__(self) -> bool:
        return self.passed

    def describe(self) -> str:
        """One-line description for test reports."""
        parts = [self.method, "PASS" if self.passed else "FAIL"]
        if self.observed is not None:
            value = format_number(self.observed)
            parts.append(f"observed={value}{self.unit}")
        if self.limits is not None:
            parts.append(f"limits={self.limits}")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


# --------------------------------------------------------------------------
# Parameter evaluation helpers (used by instruments and the interpreter)
# --------------------------------------------------------------------------

@functools.lru_cache(maxsize=4096)
def _parse_or_compile(text: str) -> float | LimitExpression:
    """Cached numeric parse of one parameter text, expression fallback.

    Campaign runs evaluate the same handful of textual parameters tens of
    thousands of times; caching by source text turns each evaluation into
    a dict hit plus (for expressions) a tree walk, and skips the costly
    raise-and-catch of the plain-number attempt for expression texts.
    """
    try:
        return parse_number(text)
    except Exception:
        return compile_expression(text)


def evaluate_parameter(
    params: Mapping[str, str],
    name: str,
    variables: Mapping[str, float] | None = None,
    *,
    default: float | None = None,
) -> float | None:
    """Evaluate a textual parameter (number or limit expression) to a float.

    Returns *default* when the parameter is absent.
    """
    wanted = str(name).lower()
    for key, raw in params.items():
        if str(key).lower() == wanted:
            text = str(raw).strip()
            if not text:
                return default
            parsed = _parse_or_compile(text)
            if isinstance(parsed, LimitExpression):
                return parsed.evaluate(variables or {})
            return parsed
    return default


def limits_from_params(
    params: Mapping[str, str],
    attribute: str,
    variables: Mapping[str, float] | None = None,
) -> Interval:
    """Build the acceptance interval from ``<attr>_min`` / ``<attr>_max``.

    Missing bounds default to minus/plus infinity so one-sided checks work.
    Inverted bounds are *normalised* (swapped) rather than rejected:
    :class:`~repro.core.values.Interval` refuses empty intervals at
    construction, and run-time limits may legitimately invert when a
    relative expression is scaled by a negative variable value.  Inverted
    bounds written directly into a sheet are an authoring error; the static
    analyzer's E-EMPTY-INTERVAL rule (:mod:`repro.lint`) reports those at
    lint time, where the swap here would otherwise mask them.
    """
    low = evaluate_parameter(params, f"{attribute}_min", variables, default=float("-inf"))
    high = evaluate_parameter(params, f"{attribute}_max", variables, default=float("inf"))
    if low is None:
        low = float("-inf")
    if high is None:
        high = float("inf")
    if low > high:
        low, high = high, low
    return Interval(low, high)


@functools.lru_cache(maxsize=4096)
def _call_parameter_program(call: "MethodCall", name: str) -> float | LimitExpression | None:
    """Resolve one call parameter to its parsed form, once per (call, name).

    ``MethodCall`` is frozen and hashable, so the case-insensitive parameter
    scan and the number-vs-expression parse only ever run once per distinct
    call; campaigns re-issue the same handful of calls tens of thousands of
    times.  ``None`` covers both an absent and an empty parameter (the
    caller substitutes its default either way, exactly like
    :func:`evaluate_parameter`).
    """
    wanted = str(name).lower()
    for key, raw in call.params.items():
        if str(key).lower() == wanted:
            text = str(raw).strip()
            if not text:
                return None
            return _parse_or_compile(text)
    return None


@functools.lru_cache(maxsize=8192)
def _evaluate_expression_cached(expr: LimitExpression, vars_items: tuple) -> float:
    """One expression evaluation per distinct (expression, variable values).

    Sound because expressions are immutable and hash by their source text,
    and the key carries the variable *values*: a changed supply voltage is
    a different key, never a stale hit.  Raised errors (missing variables)
    are not cached and re-raise on every call, like the uncached path.
    """
    return expr.evaluate(dict(vars_items))


def evaluate_call_parameter(
    call: "MethodCall",
    name: str,
    variables: Mapping[str, float] | None = None,
    *,
    default: float | None = None,
) -> float | None:
    """:func:`evaluate_parameter` for a :class:`MethodCall`, parse-cached.

    Byte-identical results to ``evaluate_parameter(dict(call.params), ...)``
    - same first-match scan order, same expression semantics - minus the
    per-call dict build, scan, parse and (for repeated variable values)
    expression tree walk.
    """
    parsed = _call_parameter_program(call, name)
    if parsed is None:
        return default
    if isinstance(parsed, LimitExpression):
        return _evaluate_expression_cached(
            parsed, tuple((variables or {}).items()))
    return parsed


@functools.lru_cache(maxsize=4096)
def _call_limits_constant(call: "MethodCall", attribute: str):
    """The ready :class:`Interval` when both bounds are plain numbers.

    Returns the (frozen, shareable) interval, or ``None`` when either bound
    is expression-valued and therefore needs the run variables.
    """
    low = _call_parameter_program(call, f"{attribute}_min")
    high = _call_parameter_program(call, f"{attribute}_max")
    if isinstance(low, LimitExpression) or isinstance(high, LimitExpression):
        return None
    low = float("-inf") if low is None else low
    high = float("inf") if high is None else high
    if low > high:
        low, high = high, low
    return Interval(low, high)


def limits_for_call(
    call: "MethodCall",
    attribute: str,
    variables: Mapping[str, float] | None = None,
) -> Interval:
    """:func:`limits_from_params` for a :class:`MethodCall`, parse-cached.

    Constant bounds short-circuit to one cached frozen interval; expression
    bounds re-evaluate with *variables* every call (run-dependent limits
    must track the live values), with the same normalisation as
    :func:`limits_from_params`.
    """
    constant = _call_limits_constant(call, attribute)
    if constant is not None:
        return constant
    low = evaluate_call_parameter(
        call, f"{attribute}_min", variables, default=float("-inf"))
    high = evaluate_call_parameter(
        call, f"{attribute}_max", variables, default=float("inf"))
    if low is None:
        low = float("-inf")
    if high is None:
        high = float("inf")
    if low > high:
        low, high = high, low
    return Interval(low, high)
