"""Bus methods: stimulating and checking signals transported over CAN.

The paper's example carries the ignition status (``IGN_ST``) and the light
sensor bit (``NIGHT``) over CAN; the corresponding statuses (``Off``, ``0``,
``1``) are bound to the method ``put_can`` whose single parameter is the raw
payload literal (``0001B``).

``get_can`` is the measuring counterpart used for outputs the DUT reports on
the bus (not used by the paper's example but required for richer component
tests such as the central-locking status message).
"""

from __future__ import annotations

from .base import MethodKind, MethodSpec, ParameterRole, ParameterSpec

__all__ = ["PUT_CAN", "GET_CAN", "BUS_METHODS"]


PUT_CAN = MethodSpec(
    name="put_can",
    kind=MethodKind.STIMULUS,
    attribute="data",
    parameters=(
        ParameterSpec("data", ParameterRole.PAYLOAD,
                      description="payload literal to transmit (e.g. 0001B, 3AH, 7)"),
    ),
    description="Transmit the carrying CAN message with the given signal payload.",
)

GET_CAN = MethodSpec(
    name="get_can",
    kind=MethodKind.MEASUREMENT,
    attribute="data",
    parameters=(
        ParameterSpec("data", ParameterRole.PAYLOAD, required=False,
                      description="exact payload expected"),
        ParameterSpec("data_min", ParameterRole.MINIMUM, required=False,
                      description="lower acceptance limit for the decoded payload"),
        ParameterSpec("data_max", ParameterRole.MAXIMUM, required=False,
                      description="upper acceptance limit for the decoded payload"),
    ),
    description="Receive the carrying CAN message and compare the decoded signal value.",
)

#: All bus methods in registration order.
BUS_METHODS: tuple[MethodSpec, ...] = (PUT_CAN, GET_CAN)
