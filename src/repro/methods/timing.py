"""Timing methods.

The paper encodes timing in the dedicated Δt column of the test definition
sheet; every step carries its own duration.  In addition to that implicit
mechanism this module provides an explicit ``wait`` method so that scripts
generated from other front-ends (or hand-written XML) can insert extra
settling time for a single signal without adding a test step.
"""

from __future__ import annotations

from .base import MethodKind, MethodSpec, ParameterRole, ParameterSpec

__all__ = ["WAIT", "TIMING_METHODS"]


WAIT = MethodSpec(
    name="wait",
    kind=MethodKind.TIMING,
    attribute="t",
    parameters=(
        ParameterSpec("t", ParameterRole.DURATION, unit="s",
                      description="time to wait before continuing, in seconds"),
    ),
    description="Advance simulated/real time without stimulating or measuring.",
)

#: All timing methods in registration order.
TIMING_METHODS: tuple[MethodSpec, ...] = (WAIT,)
