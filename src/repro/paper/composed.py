"""Interaction sheets for the lock+cluster composition.

These sheets only make sense with *both* ECUs on one bus: the central
locking ECU's speed input is produced by the real instrument cluster
(stimulated through its resistive ``SPEED_SENSOR``), and the cluster's
telltale lamp follows the real ``LOCK_STATUS`` broadcast of the locking
ECU.  The single-DUT suites synthesise both of those messages from the
stand, which is exactly why a producer-side defect like
``speed_tx_truncated`` (raw speed truncated to 8 bits, invisible below
25.6 km/h) passes every single-DUT suite and only turns red here.

The signal definition sheet is the collision-checked merge of the two
member sheets, minus the stand-side stand-ins (``SPEED``, ``LOCK_ST``)
for messages that a member now produces on the shared bus.
"""

from __future__ import annotations

from ..core.signals import SignalSet, merge_signal_sets
from ..core.status import StatusTable
from ..core.testdef import TestDefinition, TestSuite
from .cluster import cluster_signal_set, cluster_status_table
from .extended import locking_signal_set, locking_status_table

__all__ = [
    "COMPOSITION_NAME",
    "composed_signal_set",
    "composed_status_table",
    "composed_test_definitions",
    "composed_suite",
]

#: Registry name of the bundled lock+cluster composition.
COMPOSITION_NAME = "lock+cluster"

#: Member bus signals the stand must no longer synthesise: their messages
#: are produced by a member ECU on the shared bus.
_MEMBER_PRODUCED_STAND_INS = ("speed", "lock_st")


def composed_signal_set() -> SignalSet:
    """Merged signal sheet of the composition (collision-checked)."""
    merged = merge_signal_sets(
        (locking_signal_set(), cluster_signal_set()),
        dut=COMPOSITION_NAME, composition=COMPOSITION_NAME,
    )
    return SignalSet(
        (s for s in merged if s.key not in _MEMBER_PRODUCED_STAND_INS),
        dut=merged.dut, composition=merged.composition,
    )


def composed_status_table() -> StatusTable:
    """Union of the member vocabularies (identical shares deduplicate)."""
    return locking_status_table().merged_with(
        cluster_status_table(), name="composed_status")


def composed_test_definitions() -> tuple[TestDefinition, ...]:
    """The two interaction sheets of the lock+cluster composition."""
    auto = TestDefinition(
        "composed_auto_lock",
        signals=("IGN_ST", "SPEED_SENSOR", "LOCK_LED", "LOCKED",
                 "LOCK_TELLTALE"),
        description="Driving off auto-locks via the real cluster broadcast, "
                    "and the telltale follows the real lock status",
        requirement="REQ_COMPOSED_AUTO_LOCK",
    )
    auto.add_step(0.5, {"IGN_ST": "IgnOn", "SPEED_SENSOR": "Standing",
                        "LOCK_LED": "Lo", "LOCK_TELLTALE": "Lo"},
                  remark="ignition on, standing, unlocked")
    auto.add_step(0.5, {"SPEED_SENSOR": "Sense20", "LOCK_LED": "Ho",
                        "LOCKED": "Locked", "LOCK_TELLTALE": "Ho"},
                  remark="driving off: cluster broadcast locks the car")
    auto.add_step(0.5, {"SPEED_SENSOR": "Standing", "LOCK_LED": "Ho",
                        "LOCKED": "Locked", "LOCK_TELLTALE": "Ho"},
                  remark="stays locked at standstill")

    inhibit = TestDefinition(
        "composed_unlock_inhibit",
        signals=("IGN_ST", "SPEED_SENSOR", "LOCK_REQ", "LOCK_LED", "LOCKED",
                 "LOCK_TELLTALE"),
        description="Unlock refused while the real cluster reports autobahn "
                    "speed",
        requirement="REQ_COMPOSED_INHIBIT",
    )
    inhibit.add_step(0.5, {"IGN_ST": "IgnOn", "SPEED_SENSOR": "Sense130",
                           "LOCK_REQ": "0", "LOCK_LED": "Ho",
                           "LOCKED": "Locked"},
                     remark="fast driving auto-locks")
    inhibit.add_step(0.5, {"LOCK_REQ": "Unlock", "LOCK_LED": "Ho",
                           "LOCKED": "Locked", "LOCK_TELLTALE": "Ho"},
                     remark="unlock refused at 130 km/h")
    inhibit.add_step(0.5, {"SPEED_SENSOR": "Standing", "LOCK_REQ": "0",
                           "LOCK_LED": "Ho", "LOCKED": "Locked"},
                     remark="standing, request released")
    inhibit.add_step(0.5, {"LOCK_REQ": "Unlock", "LOCK_LED": "Lo",
                           "LOCKED": "Unlocked", "LOCK_TELLTALE": "Lo"},
                     remark="standing: unlock works, telltale dark")
    return (auto, inhibit)


def composed_suite() -> TestSuite:
    """The composition's complete suite (interaction sheets only)."""
    suite = TestSuite(
        COMPOSITION_NAME,
        composed_signal_set(),
        composed_status_table(),
        composed_test_definitions(),
        description="Interaction tests of the lock+cluster composition on a "
                    "shared CAN bus",
    )
    suite.validate()
    return suite
