"""The remaining body-electronics projects: wiper, window lifter, exterior light.

The paper's reuse argument is that one status vocabulary and one sheet
format serve a whole family of control units.  :mod:`repro.paper.example`
and :mod:`repro.paper.extended` cover the interior light and the central
locking projects; this module completes the bundled body-electronics family
with component-test suites for the three remaining ECU models:

* :func:`wiper_suite`          - stalk modes, interval wiping, wash cycle,
  relay coil current,
* :func:`window_lifter_suite`  - travel, end stops, interlock, plausibility,
  travel-rate timing,
* :func:`exterior_light_suite` - manual/automatic low beam, DRL, parking
  light, DRL lamp current.

All three projects share :func:`family_status_table`, which extends the
paper's ``Off``/``Open``/``Closed``/``0``/``1``/``Lo``/``Ho`` vocabulary with
the family's CAN payload statuses - the same knowledge-reuse effect the
locking project demonstrates, now across five DUTs.

The current-measurement statuses (``NoCurrent``/``CoilCurrent``/
``LampCurrent``) and the tightened ``HalfOpen`` position window were added
to close catalogued knowledge gaps: aged drivers (``fast_relay_weak``,
``drl_dim``) still reach the ``Ho`` *voltage* window into their light loads,
and an aged window motor (``travel_slightly_slow``) still lands inside the
generous ``MidOpen`` 15..25 % window after 2 s.  Only a ``get_i`` sheet
resp. a longer, tighter-windowed travel measurement separates them from the
healthy parts - the paper's point that preserved test knowledge must keep
growing as escaped defects are understood.

The module-level harness factories (``wiper_harness`` etc.) accept an
optional (possibly faulty) ECU instance, mirroring
:func:`repro.paper.example.interior_harness`: they are the picklable
harness factories that campaign jobs on the process backend require.
"""

from __future__ import annotations

from ..core.signals import Signal, SignalDirection, SignalKind, SignalSet
from ..core.status import StatusDefinition, StatusTable
from ..core.testdef import TestDefinition, TestSuite
from ..dut.exterior_light import ExteriorLightEcu
from ..dut.harness import LoadSpec, TestHarness
from ..dut.messages import body_can_database
from ..dut.window_lifter import WindowLifterEcu
from ..dut.wiper import WiperEcu
from .example import paper_status_table

__all__ = [
    "family_status_table",
    "wiper_signal_set",
    "wiper_harness",
    "wiper_test_definitions",
    "wiper_suite",
    "window_lifter_signal_set",
    "window_lifter_harness",
    "window_lifter_test_definitions",
    "window_lifter_suite",
    "exterior_light_signal_set",
    "exterior_light_harness",
    "exterior_light_test_definitions",
    "exterior_light_suite",
]


def family_status_table() -> StatusTable:
    """The shared paper vocabulary plus the body-family payload statuses."""
    additions = StatusTable(
        (
            StatusDefinition.from_cells("IgnOn", "put_can", "data", nominal="10B",
                                        description="ignition run"),
            StatusDefinition.from_cells("WipeOff", "put_can", "data", nominal="0B",
                                        description="wiper stalk off"),
            StatusDefinition.from_cells("Interval", "put_can", "data", nominal="1B",
                                        description="wiper stalk interval position"),
            StatusDefinition.from_cells("Slow", "put_can", "data", nominal="10B",
                                        description="wiper stalk slow position"),
            StatusDefinition.from_cells("Fast", "put_can", "data", nominal="11B",
                                        description="wiper stalk fast position"),
            StatusDefinition.from_cells("SwOff", "put_can", "data", nominal="0B",
                                        description="light switch off"),
            StatusDefinition.from_cells("SwAuto", "put_can", "data", nominal="1B",
                                        description="light switch automatic"),
            StatusDefinition.from_cells("SwOn", "put_can", "data", nominal="10B",
                                        description="light switch on"),
            StatusDefinition.from_cells("Shut", "get_can", "data",
                                        minimum="0", maximum="1",
                                        description="window reported closed"),
            StatusDefinition.from_cells("MidOpen", "get_can", "data",
                                        minimum="15", maximum="25",
                                        description="window reported about 20 % open"),
            StatusDefinition.from_cells("HalfOpen", "get_can", "data",
                                        minimum="48", maximum="52",
                                        description="window reported 50 % open "
                                                    "(tight travel-rate window)"),
            # Current statuses are relative to UBATT like Lo/Ho: a driver
            # sourcing into a fixed load draws a current proportional to the
            # supply, so the same sheet holds on every stand voltage.
            StatusDefinition.from_cells("NoCurrent", "get_i", "i",
                                        nominal="0", minimum="0", maximum="0,001",
                                        description="output sources no current"),
            StatusDefinition.from_cells("CoilCurrent", "get_i", "i",
                                        variable="UBATT", nominal="0,005",
                                        minimum="0,0045", maximum="0,0055",
                                        description="relay coil at full drive "
                                                    "(200 Ohm coil)"),
            StatusDefinition.from_cells("LampCurrent", "get_i", "i",
                                        variable="UBATT", nominal="0,122",
                                        minimum="0,118", maximum="0,126",
                                        description="DRL lamp at full drive "
                                                    "(8 Ohm lamp)"),
        ),
        name="family_additions",
    )
    return paper_status_table().merged_with(additions, name="family_status")


# ---------------------------------------------------------------------------
# Wiper project
# ---------------------------------------------------------------------------

def wiper_signal_set() -> SignalSet:
    """Signal definition sheet of the wiper project."""
    return SignalSet(
        (
            Signal("IGN_ST", SignalDirection.INPUT, SignalKind.BUS,
                   message="IGN_STATUS", initial_status="Off",
                   description="ignition status over CAN"),
            Signal("WIPER", SignalDirection.INPUT, SignalKind.BUS,
                   message="WIPER_COMMAND", initial_status="WipeOff",
                   description="wiper stalk position over CAN"),
            Signal("WASH_SW", SignalDirection.INPUT, SignalKind.RESISTIVE,
                   pins=("WASH_SW",), initial_status="Closed",
                   description="washer push button"),
            Signal("WIPER_MOTOR", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("WIPER_MOTOR",), initial_status="Lo",
                   description="wiper motor supply output"),
            Signal("WIPER_FAST", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("WIPER_FAST",), initial_status="Lo",
                   description="fast-speed relay output"),
            Signal("WASH_PUMP", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("WASH_PUMP",), initial_status="Lo",
                   description="washer pump supply output"),
        ),
        dut=WiperEcu.NAME,
    )


def wiper_harness(ecu: WiperEcu | None = None, *, ubatt: float = 12.0) -> TestHarness:
    """The wiper ECU wired with its motor, pump and relay loads."""
    return TestHarness(
        ecu if ecu is not None else WiperEcu(),
        body_can_database(),
        ubatt=ubatt,
        loads=(
            LoadSpec("WIPER_MOTOR", ohms=2.0, name="wiper_motor"),
            LoadSpec("WASH_PUMP", ohms=4.0, name="wash_pump"),
            LoadSpec("WIPER_FAST", ohms=200.0, name="fast_relay_coil"),
        ),
    )


def _wiper_continuous() -> TestDefinition:
    test = TestDefinition(
        "continuous_wiping",
        signals=("IGN_ST", "WIPER", "WIPER_MOTOR", "WIPER_FAST"),
        description="Slow and fast stalk positions drive the motor continuously",
        requirement="REQ_WIPER_CONT",
    )
    test.add_step(0.5, {"IGN_ST": "Off", "WIPER": "Slow",
                        "WIPER_MOTOR": "Lo", "WIPER_FAST": "Lo"},
                  remark="no wiping without ignition")
    test.add_step(0.5, {"IGN_ST": "IgnOn", "WIPER_MOTOR": "Ho", "WIPER_FAST": "Lo"},
                  remark="ignition on: slow wiping")
    test.add_step(0.5, {"WIPER": "Fast", "WIPER_MOTOR": "Ho", "WIPER_FAST": "Ho"},
                  remark="fast adds the relay")
    test.add_step(0.5, {"WIPER": "WipeOff", "WIPER_MOTOR": "Lo", "WIPER_FAST": "Lo"},
                  remark="stalk off stops")
    return test


def _wiper_interval() -> TestDefinition:
    # Timing walk-through (healthy ECU, 1 s wipes every 5 s):
    # stalk to interval at t=0.5 -> wipe 0.5..1.5, pause 1.5..6.5, wipe 6.5..7.5.
    test = TestDefinition(
        "interval_wiping",
        signals=("IGN_ST", "WIPER", "WIPER_MOTOR"),
        description="Interval position pulses the motor: 1 s wipe every 5 s",
        requirement="REQ_WIPER_INT",
    )
    test.add_step(0.5, {"IGN_ST": "IgnOn", "WIPER": "WipeOff", "WIPER_MOTOR": "Lo"},
                  remark="ignition on, stalk off")
    test.add_step(0.5, {"WIPER": "Interval", "WIPER_MOTOR": "Ho"},
                  remark="first wipe starts at once")
    test.add_step(1.0, {"WIPER_MOTOR": "Lo"}, remark="pause after the wipe")
    test.add_step(2.0, {"WIPER_MOTOR": "Lo"}, remark="still inside the pause")
    test.add_step(3.0, {"WIPER_MOTOR": "Ho"}, remark="next interval wipe")
    test.add_step(0.5, {"WIPER": "WipeOff", "WIPER_MOTOR": "Lo"},
                  remark="stalk off cancels")
    return test


def _wiper_washing() -> TestDefinition:
    # Wash released at t=1.5 -> three 1 s after-wash wipes until t=4.5.
    test = TestDefinition(
        "wash_cycle",
        signals=("IGN_ST", "WASH_SW", "WASH_PUMP", "WIPER_MOTOR"),
        description="Washer button runs the pump and triggers after-wash wipes",
        requirement="REQ_WIPER_WASH",
    )
    test.add_step(0.5, {"IGN_ST": "IgnOn", "WASH_SW": "Closed",
                        "WASH_PUMP": "Lo", "WIPER_MOTOR": "Lo"},
                  remark="idle")
    test.add_step(1.0, {"WASH_SW": "Open", "WASH_PUMP": "Ho", "WIPER_MOTOR": "Ho"},
                  remark="washing: pump and motor")
    test.add_step(1.0, {"WASH_SW": "Closed", "WASH_PUMP": "Lo", "WIPER_MOTOR": "Ho"},
                  remark="after-wash wipes run on")
    test.add_step(3.0, {"WIPER_MOTOR": "Lo", "WASH_PUMP": "Lo"},
                  remark="after-wash wipes done")
    return test


def _wiper_relay_current() -> TestDefinition:
    # The fast relay drives a 200 Ohm coil: a healthy 1 Ohm high-side driver
    # sources UBATT/201 ~ 0.005*UBATT, an aged 50 Ohm driver only UBATT/250 =
    # 0.004*UBATT - yet both land inside the Ho *voltage* window (0.995 vs.
    # 0.8 x UBATT), which is exactly how fast_relay_weak escaped the voltage
    # sheets.  Only the CoilCurrent window separates them.
    test = TestDefinition(
        "fast_relay_current",
        signals=("IGN_ST", "WIPER", "WIPER_FAST"),
        description="Fast-relay coil current check (catches aged relay drivers)",
        requirement="REQ_WIPER_RELAY_I",
    )
    test.add_step(0.5, {"IGN_ST": "IgnOn", "WIPER": "WipeOff",
                        "WIPER_FAST": "NoCurrent"},
                  remark="relay released: no coil current")
    test.add_step(0.5, {"WIPER": "Fast", "WIPER_FAST": "CoilCurrent"},
                  remark="energised coil draws 0.005 x UBATT")
    test.add_step(0.5, {"WIPER": "WipeOff", "WIPER_FAST": "NoCurrent"},
                  remark="released again")
    return test


def wiper_test_definitions() -> tuple[TestDefinition, ...]:
    """The four test sheets of the wiper project."""
    return (_wiper_continuous(), _wiper_interval(), _wiper_washing(),
            _wiper_relay_current())


def wiper_suite() -> TestSuite:
    """The wiper project's complete suite."""
    suite = TestSuite(
        WiperEcu.NAME,
        wiper_signal_set(),
        family_status_table(),
        wiper_test_definitions(),
        description="Component tests of the wiper control ECU",
    )
    suite.validate()
    return suite


# ---------------------------------------------------------------------------
# Window lifter project
# ---------------------------------------------------------------------------

def window_lifter_signal_set() -> SignalSet:
    """Signal definition sheet of the window lifter project."""
    return SignalSet(
        (
            Signal("IGN_ST", SignalDirection.INPUT, SignalKind.BUS,
                   message="IGN_STATUS", initial_status="Off",
                   description="ignition status over CAN"),
            Signal("WIN_SW_UP", SignalDirection.INPUT, SignalKind.RESISTIVE,
                   pins=("WIN_SW_UP",), initial_status="Closed",
                   description="window switch, up direction"),
            Signal("WIN_SW_DOWN", SignalDirection.INPUT, SignalKind.RESISTIVE,
                   pins=("WIN_SW_DOWN",), initial_status="Closed",
                   description="window switch, down direction"),
            Signal("WIN_MOTOR_UP", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("WIN_MOTOR_UP",), initial_status="Lo",
                   description="motor drive, closing direction"),
            Signal("WIN_MOTOR_DOWN", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("WIN_MOTOR_DOWN",), initial_status="Lo",
                   description="motor drive, opening direction"),
            Signal("WIN_POS", SignalDirection.OUTPUT, SignalKind.BUS,
                   message="WINDOW_POSITION",
                   description="window position report over CAN"),
        ),
        dut=WindowLifterEcu.NAME,
    )


def window_lifter_harness(ecu: WindowLifterEcu | None = None, *,
                          ubatt: float = 12.0) -> TestHarness:
    """The window lifter ECU wired with its two motor loads."""
    return TestHarness(
        ecu if ecu is not None else WindowLifterEcu(),
        body_can_database(),
        ubatt=ubatt,
        loads=(
            LoadSpec("WIN_MOTOR_UP", ohms=2.0, name="motor_up"),
            LoadSpec("WIN_MOTOR_DOWN", ohms=2.0, name="motor_down"),
        ),
    )


def _window_open_and_close() -> TestDefinition:
    # Travel rate 10 %/s: down 0.5..2.5 opens to 20 %, up 4.5..6.5 closes it.
    test = TestDefinition(
        "open_and_close",
        signals=("IGN_ST", "WIN_SW_UP", "WIN_SW_DOWN",
                 "WIN_MOTOR_UP", "WIN_MOTOR_DOWN", "WIN_POS"),
        description="Window travel with position report and end-stop cut-off",
        requirement="REQ_WIN_TRAVEL",
    )
    test.add_step(0.5, {"IGN_ST": "IgnOn", "WIN_SW_UP": "Closed",
                        "WIN_SW_DOWN": "Closed", "WIN_MOTOR_UP": "Lo",
                        "WIN_MOTOR_DOWN": "Lo", "WIN_POS": "Shut"},
                  remark="ignition on, window shut")
    test.add_step(2.0, {"WIN_SW_DOWN": "Open", "WIN_MOTOR_DOWN": "Ho",
                        "WIN_MOTOR_UP": "Lo", "WIN_POS": "MidOpen"},
                  remark="opening for 2 s -> 20 %")
    test.add_step(2.0, {"WIN_SW_DOWN": "Closed", "WIN_MOTOR_DOWN": "Lo",
                        "WIN_POS": "MidOpen"},
                  remark="switch released: motor stops")
    test.add_step(1.0, {"WIN_SW_UP": "Open", "WIN_MOTOR_UP": "Ho",
                        "WIN_MOTOR_DOWN": "Lo"},
                  remark="closing again")
    test.add_step(2.0, {"WIN_MOTOR_UP": "Lo", "WIN_POS": "Shut"},
                  remark="end stop cuts the motor")
    test.add_step(0.5, {"WIN_SW_UP": "Closed", "WIN_MOTOR_UP": "Lo"},
                  remark="idle again")
    return test


def _window_interlock() -> TestDefinition:
    test = TestDefinition(
        "interlock_and_plausibility",
        signals=("IGN_ST", "WIN_SW_UP", "WIN_SW_DOWN",
                 "WIN_MOTOR_UP", "WIN_MOTOR_DOWN"),
        description="No movement without ignition or with both switches pressed",
        requirement="REQ_WIN_SAFETY",
    )
    test.add_step(0.5, {"IGN_ST": "Off", "WIN_SW_DOWN": "Open",
                        "WIN_MOTOR_DOWN": "Lo"},
                  remark="ignition off: interlock")
    test.add_step(0.5, {"IGN_ST": "IgnOn", "WIN_SW_UP": "Open",
                        "WIN_MOTOR_DOWN": "Lo", "WIN_MOTOR_UP": "Lo"},
                  remark="both pressed: no request")
    test.add_step(0.5, {"WIN_SW_UP": "Closed", "WIN_MOTOR_DOWN": "Ho"},
                  remark="down alone moves")
    test.add_step(0.5, {"WIN_SW_DOWN": "Closed", "WIN_MOTOR_DOWN": "Lo"},
                  remark="released: stops")
    return test


def _window_travel_timing() -> TestDefinition:
    # Tightened travel-rate check: over 5 s the 10 %/s healthy motor reaches
    # exactly 50 %, an aged 9 %/s motor only 45 %.  The original sheet's
    # 2 s / MidOpen (15..25 %) window still contained the aged motor's 18 %,
    # which is how travel_slightly_slow escaped; the longer stroke and the
    # HalfOpen 48..52 % window resolve the drift.
    test = TestDefinition(
        "travel_timing",
        signals=("IGN_ST", "WIN_SW_UP", "WIN_SW_DOWN",
                 "WIN_MOTOR_UP", "WIN_MOTOR_DOWN", "WIN_POS"),
        description="Tight travel-rate window over a long stroke (catches aged motors)",
        requirement="REQ_WIN_TRAVEL_RATE",
    )
    test.add_step(0.5, {"IGN_ST": "IgnOn", "WIN_SW_UP": "Closed",
                        "WIN_SW_DOWN": "Closed", "WIN_MOTOR_UP": "Lo",
                        "WIN_MOTOR_DOWN": "Lo", "WIN_POS": "Shut"},
                  remark="ignition on, window shut")
    test.add_step(5.0, {"WIN_SW_DOWN": "Open", "WIN_MOTOR_DOWN": "Ho",
                        "WIN_MOTOR_UP": "Lo", "WIN_POS": "HalfOpen"},
                  remark="5 s opening -> exactly 50 %")
    test.add_step(1.0, {"WIN_SW_DOWN": "Closed", "WIN_MOTOR_DOWN": "Lo",
                        "WIN_POS": "HalfOpen"},
                  remark="released: position holds")
    test.add_step(6.0, {"WIN_SW_UP": "Open", "WIN_MOTOR_UP": "Lo",
                        "WIN_POS": "Shut"},
                  remark="6 s closing reaches the end stop")
    test.add_step(0.5, {"WIN_SW_UP": "Closed", "WIN_MOTOR_UP": "Lo"},
                  remark="idle again")
    return test


def window_lifter_test_definitions() -> tuple[TestDefinition, ...]:
    """The three test sheets of the window lifter project."""
    return (_window_open_and_close(), _window_interlock(),
            _window_travel_timing())


def window_lifter_suite() -> TestSuite:
    """The window lifter project's complete suite."""
    suite = TestSuite(
        WindowLifterEcu.NAME,
        window_lifter_signal_set(),
        family_status_table(),
        window_lifter_test_definitions(),
        description="Component tests of the window lifter ECU",
    )
    suite.validate()
    return suite


# ---------------------------------------------------------------------------
# Exterior light project
# ---------------------------------------------------------------------------

def exterior_light_signal_set() -> SignalSet:
    """Signal definition sheet of the exterior light project."""
    return SignalSet(
        (
            Signal("IGN_ST", SignalDirection.INPUT, SignalKind.BUS,
                   message="IGN_STATUS", initial_status="Off",
                   description="ignition status over CAN"),
            Signal("LIGHT_SW", SignalDirection.INPUT, SignalKind.BUS,
                   message="LIGHT_SWITCH", initial_status="SwOff",
                   description="light switch position over CAN"),
            Signal("NIGHT", SignalDirection.INPUT, SignalKind.BUS,
                   message="LIGHT_SENSOR", initial_status="0",
                   description="night bit from the light sensor"),
            Signal("PARK_SW", SignalDirection.INPUT, SignalKind.RESISTIVE,
                   pins=("PARK_SW",), initial_status="Closed",
                   description="parking light request switch"),
            Signal("LOW_BEAM", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("LOW_BEAM",), initial_status="Lo",
                   description="low beam supply output"),
            Signal("DRL", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("DRL",), initial_status="Lo",
                   description="daytime running light output"),
            Signal("POSITION_LIGHT", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("POSITION_LIGHT",), initial_status="Lo",
                   description="position light output"),
        ),
        dut=ExteriorLightEcu.NAME,
    )


def exterior_light_harness(ecu: ExteriorLightEcu | None = None, *,
                           ubatt: float = 12.0) -> TestHarness:
    """The exterior light ECU wired with its three lamp loads."""
    return TestHarness(
        ecu if ecu is not None else ExteriorLightEcu(),
        body_can_database(),
        ubatt=ubatt,
        loads=(
            LoadSpec("LOW_BEAM", ohms=4.0, name="low_beam_lamp"),
            LoadSpec("DRL", ohms=8.0, name="drl_lamp"),
            LoadSpec("POSITION_LIGHT", ohms=20.0, name="position_lamp"),
        ),
    )


def _light_manual() -> TestDefinition:
    test = TestDefinition(
        "manual_switching",
        signals=("IGN_ST", "LIGHT_SW", "LOW_BEAM", "DRL", "POSITION_LIGHT"),
        description="Switch position 'on' drives low beam; DRL otherwise",
        requirement="REQ_LIGHT_MANUAL",
    )
    test.add_step(0.5, {"IGN_ST": "Off", "LIGHT_SW": "SwOn", "LOW_BEAM": "Lo",
                        "DRL": "Lo", "POSITION_LIGHT": "Lo"},
                  remark="no lights without ignition")
    test.add_step(0.5, {"IGN_ST": "IgnOn", "LOW_BEAM": "Ho", "DRL": "Lo",
                        "POSITION_LIGHT": "Ho"},
                  remark="low beam on, DRL off")
    test.add_step(0.5, {"LIGHT_SW": "SwOff", "LOW_BEAM": "Lo", "DRL": "Ho",
                        "POSITION_LIGHT": "Lo"},
                  remark="switch off: DRL takes over")
    return test


def _light_automatic() -> TestDefinition:
    test = TestDefinition(
        "automatic_light",
        signals=("IGN_ST", "LIGHT_SW", "NIGHT", "LOW_BEAM", "DRL"),
        description="Automatic position follows the light sensor",
        requirement="REQ_LIGHT_AUTO",
    )
    test.add_step(0.5, {"IGN_ST": "IgnOn", "LIGHT_SW": "SwAuto", "NIGHT": "0",
                        "LOW_BEAM": "Lo", "DRL": "Ho"},
                  remark="automatic by day: DRL")
    test.add_step(0.5, {"NIGHT": "1", "LOW_BEAM": "Ho", "DRL": "Lo"},
                  remark="darkness: low beam")
    test.add_step(0.5, {"NIGHT": "0", "LOW_BEAM": "Lo", "DRL": "Ho"},
                  remark="daylight again")
    return test


def _light_parking() -> TestDefinition:
    test = TestDefinition(
        "parking_light",
        signals=("IGN_ST", "PARK_SW", "POSITION_LIGHT", "LOW_BEAM"),
        description="Position light on request with ignition off",
        requirement="REQ_LIGHT_PARK",
    )
    test.add_step(0.5, {"IGN_ST": "Off", "PARK_SW": "Closed", "POSITION_LIGHT": "Lo"},
                  remark="idle, ignition off")
    test.add_step(0.5, {"PARK_SW": "Open", "POSITION_LIGHT": "Ho", "LOW_BEAM": "Lo"},
                  remark="parking light requested")
    test.add_step(0.5, {"PARK_SW": "Closed", "POSITION_LIGHT": "Lo"},
                  remark="request released")
    return test


def _light_drl_current() -> TestDefinition:
    # The 8 Ohm DRL lamp draws UBATT/8.2 ~ 0.122*UBATT from a healthy
    # 0.2 Ohm driver but only UBATT/8.8 ~ 0.114*UBATT from an aged 0.8 Ohm
    # one - while the lamp *voltage* stays inside Ho in both cases (0.976
    # vs. 0.909 x UBATT), which is how drl_dim escaped the voltage sheets.
    test = TestDefinition(
        "drl_lamp_current",
        signals=("IGN_ST", "LIGHT_SW", "DRL"),
        description="DRL lamp current check (catches fading lamps / aged drivers)",
        requirement="REQ_LIGHT_DRL_I",
    )
    test.add_step(0.5, {"IGN_ST": "Off", "LIGHT_SW": "SwOff", "DRL": "NoCurrent"},
                  remark="ignition off: lamp dark")
    test.add_step(0.5, {"IGN_ST": "IgnOn", "DRL": "LampCurrent"},
                  remark="DRL draws 0.122 x UBATT")
    test.add_step(0.5, {"LIGHT_SW": "SwOn", "DRL": "NoCurrent"},
                  remark="low beam suppresses the DRL")
    return test


def exterior_light_test_definitions() -> tuple[TestDefinition, ...]:
    """The four test sheets of the exterior light project."""
    return (_light_manual(), _light_automatic(), _light_parking(),
            _light_drl_current())


def exterior_light_suite() -> TestSuite:
    """The exterior light project's complete suite."""
    suite = TestSuite(
        ExteriorLightEcu.NAME,
        exterior_light_signal_set(),
        family_status_table(),
        exterior_light_test_definitions(),
        description="Component tests of the exterior light ECU",
    )
    suite.validate()
    return suite
