"""The instrument cluster project: a third DUT reusing the shared vocabulary.

The cluster is the *producer* side of the speed broadcast the central
locking ECU consumes, which makes it the natural partner for the
compositional campaign (see :mod:`repro.paper.composed`).  Its own
single-DUT suite follows the established pattern - shared ``Lo``/``Ho``/
``0``/``1`` statuses plus project-specific additions:

* ``speed_display``  - sensor resistance in, gauge voltage and speed
  broadcast out.  The broadcast payload is only checked on the 20 km/h
  raw-grid case; that deliberate sampling gap is what the composed-only
  ``speed_tx_truncated`` escape hides in (the fault truncates the raw
  speed to 8 bits, which is invisible below 25.6 km/h).
* ``lock_telltale``  - the telltale lamp mirrors the ``LOCK_STATUS``
  bit, stimulated synthetically by the stand (in a composition the real
  locking ECU produces it instead).
"""

from __future__ import annotations

from ..core.signals import Signal, SignalDirection, SignalKind, SignalSet
from ..core.status import StatusDefinition, StatusTable
from ..core.testdef import TestDefinition, TestSuite
from ..dut.harness import LoadSpec, TestHarness
from ..dut.instrument_cluster import InstrumentClusterEcu
from ..dut.messages import body_can_database
from .example import paper_status_table

__all__ = [
    "cluster_signal_set",
    "cluster_status_table",
    "cluster_test_definitions",
    "cluster_suite",
    "cluster_harness",
]


def cluster_signal_set() -> SignalSet:
    """Signal definition sheet of the instrument cluster project."""
    return SignalSet(
        (
            Signal("IGN_ST", SignalDirection.INPUT, SignalKind.BUS,
                   message="IGN_STATUS", initial_status="Off",
                   description="ignition status over CAN"),
            Signal("LOCK_ST", SignalDirection.INPUT, SignalKind.BUS,
                   message="LOCK_STATUS", initial_status="0",
                   description="lock status over CAN (synthesised when "
                               "tested alone, real when composed)"),
            Signal("SPEED_SENSOR", SignalDirection.INPUT, SignalKind.RESISTIVE,
                   pins=("SPEED_SENSOR",), initial_status="Standing",
                   description="wheel speed sensor, resistance coded"),
            Signal("SPEED_TX", SignalDirection.OUTPUT, SignalKind.BUS,
                   message="VEHICLE_SPEED",
                   description="speed broadcast over CAN"),
            Signal("SPEED_DISP", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("SPEED_DISP",), initial_status="Lo",
                   description="speedometer gauge output"),
            Signal("LOCK_TELLTALE", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("LOCK_TELLTALE",), initial_status="Lo",
                   description="central locking telltale lamp"),
        ),
        dut="instrument_cluster_ecu",
    )


def cluster_status_table() -> StatusTable:
    """Shared vocabulary plus the cluster-specific statuses."""
    shared = paper_status_table()
    additions = StatusTable(
        (
            StatusDefinition.from_cells("Standing", "put_r", "r", nominal="0",
                                        minimum="0", maximum="2", d1="1",
                                        description="speed sensor at standstill "
                                                    "(0 km/h)"),
            StatusDefinition.from_cells("Sense20", "put_r", "r", nominal="800",
                                        minimum="750", maximum="850", d1="40",
                                        description="speed sensor at 20 km/h "
                                                    "(40 Ohm per km/h)"),
            StatusDefinition.from_cells("Sense130", "put_r", "r", nominal="5200",
                                        minimum="5100", maximum="5300", d1="40",
                                        description="speed sensor at 130 km/h, "
                                                    "above the unlock inhibition "
                                                    "threshold"),
            StatusDefinition.from_cells("Gauge20", "get_u", "u", variable="UBATT",
                                        nominal="0,08", minimum="0,05",
                                        maximum="0,11",
                                        description="gauge shows 20 km/h "
                                                    "(20/260 x UBATT)"),
            StatusDefinition.from_cells("Gauge130", "get_u", "u", variable="UBATT",
                                        nominal="0,5", minimum="0,45",
                                        maximum="0,55",
                                        description="gauge shows 130 km/h "
                                                    "(130/260 x UBATT)"),
            StatusDefinition.from_cells("Tx0", "get_can", "data", nominal="0",
                                        description="speed broadcast reports "
                                                    "standstill"),
            StatusDefinition.from_cells("Tx20", "get_can", "data", nominal="200",
                                        description="speed broadcast reports "
                                                    "20 km/h (raw 0.1 km/h)"),
        ),
        name="cluster_additions",
    )
    return shared.merged_with(additions, name="cluster_status")


def cluster_test_definitions() -> tuple[TestDefinition, ...]:
    """The two test sheets of the instrument cluster project."""
    display = TestDefinition(
        "speed_display",
        signals=("SPEED_SENSOR", "SPEED_DISP", "SPEED_TX"),
        description="Sensor resistance in, gauge voltage and speed broadcast out",
        requirement="REQ_CLUSTER_SPEED",
    )
    display.add_step(0.5, {"SPEED_SENSOR": "Standing", "SPEED_DISP": "Lo",
                           "SPEED_TX": "Tx0"},
                     remark="standstill: gauge at zero")
    display.add_step(0.5, {"SPEED_SENSOR": "Sense20", "SPEED_DISP": "Gauge20",
                           "SPEED_TX": "Tx20"},
                     remark="20 km/h sensed and broadcast")
    display.add_step(0.5, {"SPEED_SENSOR": "Sense130", "SPEED_DISP": "Gauge130"},
                     remark="gauge tracks to 130 km/h")
    display.add_step(0.5, {"SPEED_SENSOR": "Standing", "SPEED_DISP": "Lo",
                           "SPEED_TX": "Tx0"},
                     remark="back to standstill")

    telltale = TestDefinition(
        "lock_telltale",
        signals=("LOCK_ST", "LOCK_TELLTALE"),
        description="The telltale lamp mirrors the CAN lock status",
        requirement="REQ_CLUSTER_TELLTALE",
    )
    telltale.add_step(0.5, {"LOCK_ST": "0", "LOCK_TELLTALE": "Lo"},
                      remark="unlocked: telltale dark")
    telltale.add_step(0.5, {"LOCK_ST": "1", "LOCK_TELLTALE": "Ho"},
                      remark="locked: telltale lights")
    telltale.add_step(0.5, {"LOCK_ST": "0", "LOCK_TELLTALE": "Lo"},
                      remark="unlocked again")
    return (display, telltale)


def cluster_suite() -> TestSuite:
    """The instrument cluster project's complete single-DUT suite."""
    suite = TestSuite(
        "instrument_cluster_ecu",
        cluster_signal_set(),
        cluster_status_table(),
        cluster_test_definitions(),
        description="Component tests of the instrument cluster ECU",
    )
    suite.validate()
    return suite


def cluster_harness(ecu: InstrumentClusterEcu | None = None, *,
                    ubatt: float = 12.0) -> TestHarness:
    """The cluster ECU wired with its gauge coil and telltale lamp loads.

    Like the other harness factories this accepts an optional (possibly
    faulty) ECU instance: it is the picklable harness factory used by
    instrument-cluster campaign jobs.
    """
    return TestHarness(
        ecu if ecu is not None else InstrumentClusterEcu(),
        body_can_database(),
        ubatt=ubatt,
        loads=(
            LoadSpec("SPEED_DISP", ohms=1000.0, name="gauge_coil"),
            LoadSpec("LOCK_TELLTALE", ohms=500.0, name="telltale_lamp"),
        ),
    )
