"""Extended test suites beyond the paper's single sheet.

The paper's ten-step sheet covers the headline behaviour (day vs. night,
front-left door, 300 s timeout) but - as the fault-injection campaign shows -
leaves gaps: the front-right and rear doors are never exercised at night and
the supply-voltage dependence of the ``Lo``/``Ho`` limits is never probed.
These extended sheets demonstrate how a project accumulates test knowledge
over time while reusing the very same status vocabulary and signals (the
paper's reuse argument), and they feed the E3 fault-detection benchmark:

* ``all_doors_at_night``    - every door is opened individually at night,
* ``timeout_reset``         - closing and re-opening a door re-arms the 300 s timer,
* ``undervoltage_operation``- the lamp still reaches its relative ``Ho`` window
  at a reduced supply voltage (exercises the ``(0.7*ubatt)`` relativity).

A second DUT project (central locking) with its own sheets is provided for
the reuse experiment E2; it shares the ``Open``/``Closed``/``0``/``1``
vocabulary with the interior-light project and adds lock-specific statuses.
"""

from __future__ import annotations

from ..core.signals import Signal, SignalDirection, SignalKind, SignalSet
from ..core.status import StatusDefinition, StatusTable
from ..core.testdef import TestDefinition, TestSuite
from ..dut.central_locking import CentralLockingEcu
from ..dut.harness import LoadSpec, TestHarness
from ..dut.messages import body_can_database
from .example import paper_signal_set, paper_status_table, paper_test_definition

__all__ = [
    "extended_test_definitions",
    "extended_suite",
    "locking_signal_set",
    "locking_status_table",
    "locking_test_definitions",
    "locking_suite",
    "locking_harness",
    "build_locking_harness",
]


# ---------------------------------------------------------------------------
# Interior light: additional test sheets
# ---------------------------------------------------------------------------

def _all_doors_at_night() -> TestDefinition:
    test = TestDefinition(
        "all_doors_at_night",
        signals=("NIGHT", "DS_FL", "DS_FR", "DS_RL", "DS_RR", "INT_ILL"),
        description="Each door individually switches the illumination on at night",
        requirement="REQ_INT_ILL_DOORS",
    )
    test.add_step(0.5, {"NIGHT": "1", "DS_FL": "Closed", "DS_FR": "Closed",
                        "DS_RL": "Closed", "DS_RR": "Closed", "INT_ILL": "Lo"},
                  remark="night, all doors closed")
    for door in ("DS_FL", "DS_FR", "DS_RL", "DS_RR"):
        test.add_step(0.5, {door: "Open", "INT_ILL": "Ho"},
                      remark=f"{door} opens the illumination")
        test.add_step(0.5, {door: "Closed", "INT_ILL": "Lo"},
                      remark=f"{door} closed again")
    return test


def _timeout_reset() -> TestDefinition:
    test = TestDefinition(
        "timeout_reset",
        signals=("NIGHT", "DS_FL", "INT_ILL"),
        description="Closing and re-opening a door re-arms the 300 s timer",
        requirement="REQ_INT_ILL_TIMEOUT",
    )
    test.add_step(0.5, {"NIGHT": "1", "DS_FL": "Closed", "INT_ILL": "Lo"},
                  remark="night, door closed")
    test.add_step(0.5, {"DS_FL": "Open", "INT_ILL": "Ho"}, remark="door open")
    test.add_step(250.0, {"INT_ILL": "Ho"}, remark="still inside 300 s")
    test.add_step(0.5, {"DS_FL": "Closed", "INT_ILL": "Lo"}, remark="door closed: lamp off")
    test.add_step(0.5, {"DS_FL": "Open", "INT_ILL": "Ho"}, remark="timer restarted")
    test.add_step(290.0, {"INT_ILL": "Ho"}, remark="fresh 300 s window")
    test.add_step(15.0, {"INT_ILL": "Lo"}, remark="second timeout expires")
    return test


def _undervoltage_operation() -> TestDefinition:
    test = TestDefinition(
        "undervoltage_operation",
        signals=("NIGHT", "DS_FL", "INT_ILL"),
        description="Relative Lo/Ho limits also hold at reduced supply voltage",
        requirement="REQ_INT_ILL_UBATT",
    )
    test.add_step(0.5, {"NIGHT": "1", "DS_FL": "Closed", "INT_ILL": "Lo"},
                  remark="lamp off before")
    test.add_step(1.0, {"DS_FL": "Open", "INT_ILL": "Ho"},
                  remark="lamp reaches 0.7..1.1 x UBATT")
    test.add_step(1.0, {"DS_FL": "Closed", "INT_ILL": "Lo"},
                  remark="lamp off after")
    return test


def extended_test_definitions() -> tuple[TestDefinition, ...]:
    """The additional interior-light test sheets (beyond the paper's one)."""
    return (_all_doors_at_night(), _timeout_reset(), _undervoltage_operation())


def extended_suite() -> TestSuite:
    """Paper suite plus the extended sheets (same signals, same statuses)."""
    suite = TestSuite(
        "interior_light_ecu",
        paper_signal_set(),
        paper_status_table(),
        (paper_test_definition(), *extended_test_definitions()),
        description="Interior illumination: paper sheet plus accumulated project knowledge",
    )
    suite.validate()
    return suite


# ---------------------------------------------------------------------------
# Central locking: a second project reusing the shared vocabulary
# ---------------------------------------------------------------------------

def locking_signal_set() -> SignalSet:
    """Signal definition sheet of the central locking project."""
    return SignalSet(
        (
            Signal("IGN_ST", SignalDirection.INPUT, SignalKind.BUS,
                   message="IGN_STATUS", initial_status="Off",
                   description="ignition status over CAN"),
            Signal("LOCK_REQ", SignalDirection.INPUT, SignalKind.BUS,
                   message="LOCK_COMMAND", initial_status="0",
                   description="lock / unlock request over CAN"),
            Signal("SPEED", SignalDirection.INPUT, SignalKind.BUS,
                   message="VEHICLE_SPEED", initial_status="0",
                   description="vehicle speed over CAN"),
            Signal("KEY_SW", SignalDirection.INPUT, SignalKind.RESISTIVE,
                   pins=("KEY_SW",), initial_status="Closed",
                   description="key switch, lock position"),
            Signal("UNLOCK_SW", SignalDirection.INPUT, SignalKind.RESISTIVE,
                   pins=("UNLOCK_SW",), initial_status="Closed",
                   description="key switch, unlock position"),
            Signal("LOCK_LED", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("LOCK_LED",), initial_status="Lo",
                   description="lock indicator LED output"),
            Signal("LOCKED", SignalDirection.OUTPUT, SignalKind.BUS,
                   message="LOCK_STATUS",
                   description="lock status report over CAN"),
        ),
        dut="central_locking_ecu",
    )


def locking_status_table() -> StatusTable:
    """Status table of the locking project: shared vocabulary plus lock statuses."""
    shared = paper_status_table()
    additions = StatusTable(
        (
            StatusDefinition.from_cells("Lock", "put_can", "data", nominal="01B",
                                        description="lock request"),
            StatusDefinition.from_cells("Unlock", "put_can", "data", nominal="10B",
                                        description="unlock request"),
            StatusDefinition.from_cells("Standstill", "put_can", "data", nominal="0",
                                        description="vehicle speed 0 km/h"),
            StatusDefinition.from_cells("Driving", "put_can", "data", nominal="200",
                                        description="vehicle speed 20 km/h (raw 0.1 km/h)"),
            StatusDefinition.from_cells("Autobahn", "put_can", "data", nominal="1300",
                                        description="vehicle speed 130 km/h (raw 0.1 km/h), "
                                                    "above the unlock inhibition threshold"),
            StatusDefinition.from_cells("IgnOn", "put_can", "data", nominal="10B",
                                        description="ignition run"),
            StatusDefinition.from_cells("Locked", "get_can", "data", nominal="1B",
                                        description="lock status reports locked"),
            StatusDefinition.from_cells("Unlocked", "get_can", "data", nominal="0B",
                                        description="lock status reports unlocked"),
        ),
        name="locking_additions",
    )
    return shared.merged_with(additions, name="locking_status")


def locking_test_definitions() -> tuple[TestDefinition, ...]:
    """The three test sheets of the central locking project."""
    remote = TestDefinition(
        "remote_locking",
        signals=("IGN_ST", "LOCK_REQ", "LOCK_LED", "LOCKED"),
        description="Lock and unlock by CAN request",
        requirement="REQ_LOCK_REMOTE",
    )
    remote.add_step(0.5, {"IGN_ST": "Off", "LOCK_REQ": "0", "LOCK_LED": "Lo"},
                    remark="initially unlocked")
    remote.add_step(0.5, {"LOCK_REQ": "Lock", "LOCK_LED": "Ho", "LOCKED": "Locked"},
                    remark="lock request locks")
    remote.add_step(0.5, {"LOCK_REQ": "Unlock", "LOCK_LED": "Lo", "LOCKED": "Unlocked"},
                    remark="unlock request unlocks")

    auto = TestDefinition(
        "auto_lock",
        signals=("IGN_ST", "SPEED", "KEY_SW", "LOCK_LED", "LOCKED"),
        description="Automatic locking above 15 km/h",
        requirement="REQ_LOCK_AUTO",
    )
    auto.add_step(0.5, {"IGN_ST": "IgnOn", "SPEED": "Standstill", "LOCK_LED": "Lo"},
                  remark="ignition on, standing")
    auto.add_step(0.5, {"SPEED": "Driving", "LOCK_LED": "Ho", "LOCKED": "Locked"},
                  remark="driving off locks the car")

    # The unlock inhibition above 120 km/h was a catalogued knowledge gap
    # (unlocks_at_speed): neither of the two sheets above ever requests an
    # unlock while driving fast, so a missing inhibition slipped through.
    # This sheet requests exactly that and expects the request to be refused.
    inhibit = TestDefinition(
        "unlock_inhibit_at_speed",
        signals=("IGN_ST", "SPEED", "LOCK_REQ", "LOCK_LED", "LOCKED"),
        description="Unlock requests are refused above the safety speed",
        requirement="REQ_LOCK_INHIBIT",
    )
    inhibit.add_step(0.5, {"IGN_ST": "IgnOn", "SPEED": "Autobahn", "LOCK_REQ": "0",
                           "LOCK_LED": "Ho", "LOCKED": "Locked"},
                     remark="fast driving auto-locks")
    inhibit.add_step(0.5, {"LOCK_REQ": "Unlock", "LOCK_LED": "Ho",
                           "LOCKED": "Locked"},
                     remark="unlock refused at 130 km/h")
    inhibit.add_step(0.5, {"SPEED": "Standstill", "LOCK_REQ": "0",
                           "LOCK_LED": "Ho", "LOCKED": "Locked"},
                     remark="standing, request released")
    inhibit.add_step(0.5, {"LOCK_REQ": "Unlock", "LOCK_LED": "Lo",
                           "LOCKED": "Unlocked"},
                     remark="standing: unlock works")
    return (remote, auto, inhibit)


def locking_suite() -> TestSuite:
    """The central locking project's complete suite (reuse experiment E2)."""
    suite = TestSuite(
        "central_locking_ecu",
        locking_signal_set(),
        locking_status_table(),
        locking_test_definitions(),
        description="Component tests of the central locking ECU",
    )
    suite.validate()
    return suite


def locking_harness(ecu: CentralLockingEcu | None = None, *,
                    ubatt: float = 12.0) -> TestHarness:
    """The central-locking ECU wired with its LED and actuator loads.

    Like :func:`repro.paper.example.interior_harness` this accepts an
    optional (possibly faulty) ECU instance: it is the picklable harness
    factory used by central-locking campaign jobs.
    """
    return TestHarness(
        ecu if ecu is not None else CentralLockingEcu(),
        body_can_database(),
        ubatt=ubatt,
        loads=(
            LoadSpec("LOCK_LED", ohms=500.0, name="lock_led"),
            LoadSpec("LOCK_ACT", ohms=3.0, name="lock_actuator"),
        ),
    )


def build_locking_harness(*, ubatt: float = 12.0) -> TestHarness:
    """A fresh healthy central-locking harness (kept for existing callers)."""
    return locking_harness(ubatt=ubatt)
