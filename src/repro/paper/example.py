"""The paper's worked example, reconstructed as library objects.

Everything in this module mirrors Section 3 and 4 of Brinkmeyer (DATE 2005)
as closely as the two-page paper allows:

* :func:`paper_signal_set` - the signal definition sheet of the interior
  illumination function (signals ``IGN_ST``, ``DS_FL``, ``DS_FR``, ``DS_RL``,
  ``DS_RR``, ``NIGHT``, ``INT_ILL``),
* :func:`paper_status_table` - the status table with ``Off``, ``Open``,
  ``Closed``, ``0``, ``1``, ``Lo``, ``Ho``,
* :func:`paper_test_definition` - the ten-step test definition sheet,
* :func:`paper_suite` / :func:`paper_workbook` - the complete bundle,
* :func:`build_paper_harness` - the interior-light ECU wired with the lamp
  load of the paper's test-circuit figure,
* :func:`run_paper_example` - compile the sheet, generate the XML script and
  execute it on a stand (the paper stand by default).

Interpretation notes (documented deviations)
--------------------------------------------

The paper's status table prints the numeric columns of ``Open`` and
``Closed`` in a typography that does not survive OCR unambiguously.  This
reproduction uses the physically meaningful reading:

* ``Open``  (door open, contact closed): apply a nominal contact resistance
  of 0.5 Ohm, accepted while the applied value stays within 0..2 Ohm.
* ``Closed`` (door closed, contact open): request an open circuit
  (``INF``); any realisation of at least 5000 Ohm is accepted (the paper's
  ``5000`` auxiliary columns).  A test stand may realise this either with
  the maximum value of a resistor decade or simply by disconnecting the
  pin.

The paper's resource table lists the decades with method ``get_r``; since
the decades *apply* resistances (the statuses ``Open``/``Closed`` are bound
to ``put_r``), this reproduction models them as ``put_r`` resources.
"""

from __future__ import annotations

from ..can import CanDatabase
from ..core.compiler import Compiler
from ..core.script import MethodCall, SignalAction, TestScript
from ..core.signals import Signal, SignalDirection, SignalKind, SignalSet
from ..core.status import StatusDefinition, StatusTable
from ..core.testdef import TestDefinition, TestSuite
from ..dut.harness import LoadSpec, TestHarness
from ..dut.interior_light import InteriorLightEcu
from ..dut.messages import body_can_database
from ..sheets.workbook import Workbook, suite_to_workbook
from ..teststand.interpreter import TestStandInterpreter
from ..teststand.stands import TestStand, build_paper_stand
from ..teststand.verdict import TestResult

__all__ = [
    "PAPER_TEST_NAME",
    "paper_signal_set",
    "paper_status_table",
    "paper_test_definition",
    "paper_suite",
    "paper_workbook",
    "paper_can_database",
    "build_paper_harness",
    "compile_paper_script",
    "run_paper_example",
    "paper_xml_snippet_action",
]

#: Name of the paper's test definition sheet in this reproduction.
PAPER_TEST_NAME = "interior_illumination"

#: Lamp resistance of the interior illumination bulb used in the harness [Ohm].
LAMP_RESISTANCE = 6.0


def paper_signal_set() -> SignalSet:
    """The signal definition sheet of the paper's example DUT."""
    return SignalSet(
        (
            Signal("IGN_ST", SignalDirection.INPUT, SignalKind.BUS,
                   message="IGN_STATUS", initial_status="Off",
                   description="ignition status (terminal status) over CAN"),
            Signal("DS_FL", SignalDirection.INPUT, SignalKind.RESISTIVE,
                   pins=("DS_FL",), initial_status="Closed",
                   description="door switch front left"),
            Signal("DS_FR", SignalDirection.INPUT, SignalKind.RESISTIVE,
                   pins=("DS_FR",), initial_status="Closed",
                   description="door switch front right"),
            Signal("DS_RL", SignalDirection.INPUT, SignalKind.RESISTIVE,
                   pins=("DS_RL",), initial_status="Closed",
                   description="door switch rear left"),
            Signal("DS_RR", SignalDirection.INPUT, SignalKind.RESISTIVE,
                   pins=("DS_RR",), initial_status="Closed",
                   description="door switch rear right"),
            Signal("NIGHT", SignalDirection.INPUT, SignalKind.BUS,
                   message="LIGHT_SENSOR", initial_status="0",
                   description="night bit from the light sensor"),
            Signal("INT_ILL", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("INT_ILL_F", "INT_ILL_R"), initial_status="Lo",
                   description="interior illumination lamp output"),
        ),
        dut="interior_light_ecu",
    )


def paper_status_table() -> StatusTable:
    """The paper's status table (see the module docstring for the reading used)."""
    return StatusTable(
        (
            StatusDefinition.from_cells("Off", "put_can", "data", nominal="0001B",
                                        description="ignition off"),
            StatusDefinition.from_cells("Open", "put_r", "r", nominal="0,5",
                                        minimum="0", maximum="2", d1="1",
                                        description="door open (contact closed)"),
            StatusDefinition.from_cells("Closed", "put_r", "r", nominal="INF",
                                        minimum="5000", maximum="INF", d1="5000",
                                        description="door closed (contact open)"),
            StatusDefinition.from_cells("0", "put_can", "data", nominal="0B",
                                        description="bit inactive"),
            StatusDefinition.from_cells("1", "put_can", "data", nominal="1B",
                                        description="bit active"),
            StatusDefinition.from_cells("Lo", "get_u", "u", variable="UBATT",
                                        nominal="0", minimum="0", maximum="0,3",
                                        description="output low (lamp off)"),
            StatusDefinition.from_cells("Ho", "get_u", "u", variable="UBATT",
                                        nominal="1", minimum="0,7", maximum="1,1",
                                        description="output high (lamp on)"),
        ),
        name="paper_status",
    )


def paper_test_definition() -> TestDefinition:
    """The paper's ten-step test definition sheet.

    Column order and the step timing (0.5 s steps, one 280 s and one 25 s
    step around the 300 s timeout) follow the paper's table; the remark
    column carries the paper's wording.
    """
    test = TestDefinition(
        PAPER_TEST_NAME,
        signals=("IGN_ST", "DS_FL", "DS_FR", "NIGHT", "INT_ILL"),
        description="Interior illumination as a function of doors, night bit and time",
        requirement="REQ_INT_ILL",
    )
    test.add_step(0.5, {"IGN_ST": "Off", "DS_FL": "Closed", "DS_FR": "Closed",
                        "NIGHT": "0", "INT_ILL": "Lo"},
                  remark="day: no interior")
    test.add_step(0.5, {"DS_FL": "Open", "INT_ILL": "Lo"},
                  remark="illumination, if")
    test.add_step(0.5, {"DS_FL": "Closed", "DS_FR": "Open", "INT_ILL": "Lo"},
                  remark="doors are open")
    test.add_step(0.5, {"DS_FR": "Closed", "INT_ILL": "Lo"})
    test.add_step(0.5, {"DS_FL": "Open", "NIGHT": "1", "INT_ILL": "Ho"},
                  remark="night: interior")
    test.add_step(0.5, {"DS_FL": "Closed", "INT_ILL": "Lo"},
                  remark="illumination on,")
    test.add_step(0.5, {"DS_FL": "Open", "INT_ILL": "Ho"},
                  remark="if doors are open")
    test.add_step(280.0, {"INT_ILL": "Ho"})
    test.add_step(25.0, {"INT_ILL": "Lo"},
                  remark="illumination")
    test.add_step(0.5, {"DS_FL": "Closed", "INT_ILL": "Lo"},
                  remark="off after 300s")
    return test


def paper_suite() -> TestSuite:
    """The complete test suite (signals + statuses + the one test sheet)."""
    suite = TestSuite(
        "interior_light_ecu",
        paper_signal_set(),
        paper_status_table(),
        (paper_test_definition(),),
        description="Component tests of the interior illumination ECU (paper example)",
    )
    suite.validate()
    return suite


def paper_workbook() -> Workbook:
    """The example rendered as the three-sheet workbook (CSV-persistable)."""
    return suite_to_workbook(paper_suite())


def paper_can_database() -> CanDatabase:
    """The CAN database used by the paper example (shared body catalogue)."""
    return body_can_database()


def interior_harness(ecu: InteriorLightEcu | None = None, *,
                     ubatt: float = 12.0) -> TestHarness:
    """The paper's test-circuit wiring around *ecu* (fresh healthy one if None).

    This is the canonical (module-level, hence picklable) harness factory
    for interior-light campaign jobs: pass a possibly-faulty ECU and get it
    wired exactly like the paper's figure.
    """
    return TestHarness(
        ecu if ecu is not None else InteriorLightEcu(),
        paper_can_database(),
        ubatt=ubatt,
        loads=(LoadSpec("INT_ILL_F", "INT_ILL_R", LAMP_RESISTANCE, name="interior_lamp"),),
    )


def build_paper_harness(*, ubatt: float = 12.0) -> TestHarness:
    """The interior-light ECU wired as in the paper's test-circuit figure.

    The lamp (:data:`LAMP_RESISTANCE`) sits between ``INT_ILL_F`` and
    ``INT_ILL_R``; the door switch pins are left open until a resistor decade
    connects to them; the ECU is attached to a CAN bus together with the
    test stand's CAN interface.
    """
    return interior_harness(ubatt=ubatt)


def compile_paper_script() -> TestScript:
    """Compile the paper's sheet into the stand-independent XML-able script."""
    return Compiler().compile_test(paper_suite(), PAPER_TEST_NAME)


def run_paper_example(
    stand: TestStand | None = None,
    *,
    policy: str = "first_fit",
    ubatt: float | None = None,
) -> tuple[TestScript, TestResult]:
    """Compile and execute the paper's example; returns (script, result).

    By default the script runs on the paper's own stand; pass any other
    :class:`~repro.teststand.stands.TestStand` to demonstrate portability.
    """
    stand = stand or build_paper_stand()
    harness = build_paper_harness(ubatt=ubatt if ubatt is not None else stand.supply_voltage)
    script = compile_paper_script()
    interpreter = TestStandInterpreter(stand, harness, paper_signal_set(), policy=policy)
    result = interpreter.run(script)
    return script, result


def paper_xml_snippet_action() -> SignalAction:
    """The signal action whose XML the paper prints verbatim in Section 3.

    ``<signal name="int_ill"> <get_u u_max="(1.1*ubatt)" u_min="(0.7*ubatt)"/> </signal>``
    """
    return SignalAction(
        "int_ill",
        MethodCall("get_u", {"u_max": "(1.1*ubatt)", "u_min": "(0.7*ubatt)"}),
    )
