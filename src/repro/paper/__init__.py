"""The paper's worked example and table renderings."""

from .example import (
    PAPER_TEST_NAME,
    build_paper_harness,
    interior_harness,
    compile_paper_script,
    paper_can_database,
    paper_signal_set,
    paper_status_table,
    paper_suite,
    paper_test_definition,
    paper_workbook,
    paper_xml_snippet_action,
    run_paper_example,
)
from .extended import (
    build_locking_harness,
    extended_suite,
    extended_test_definitions,
    locking_signal_set,
    locking_status_table,
    locking_suite,
    locking_test_definitions,
)
from .tables import (
    render_connection_matrix,
    render_resource_table,
    render_status_table,
    render_test_circuit,
    render_test_definition_table,
)

__all__ = [
    "PAPER_TEST_NAME",
    "paper_signal_set",
    "paper_status_table",
    "paper_test_definition",
    "paper_suite",
    "paper_workbook",
    "paper_can_database",
    "build_paper_harness",
    "interior_harness",
    "compile_paper_script",
    "run_paper_example",
    "paper_xml_snippet_action",
    "render_test_definition_table",
    "render_status_table",
    "render_resource_table",
    "render_connection_matrix",
    "render_test_circuit",
    "extended_suite",
    "extended_test_definitions",
    "locking_suite",
    "locking_signal_set",
    "locking_status_table",
    "locking_test_definitions",
    "build_locking_harness",
]
