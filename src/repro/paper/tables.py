"""Text renderings of the paper's tables and figure.

Each function regenerates one artefact of the paper from the library's data
model; the reproduction benchmarks print these next to the expected content
and assert the structural properties (row counts, key cells, routing).
"""

from __future__ import annotations

from ..core.status import StatusTable
from ..core.testdef import TestDefinition
from ..teststand.report import format_table
from ..teststand.stands import PAPER_PINS, TestStand, build_paper_stand
from .example import paper_status_table, paper_test_definition

__all__ = [
    "render_test_definition_table",
    "render_status_table",
    "render_resource_table",
    "render_connection_matrix",
    "render_test_circuit",
]


def render_test_definition_table(test: TestDefinition | None = None) -> str:
    """Paper Table 1: the test definition sheet."""
    test = test or paper_test_definition()
    return format_table(test.header(), test.rows())


def render_status_table(table: StatusTable | None = None) -> str:
    """Paper Table 2: the status table."""
    table = table or paper_status_table()
    return format_table(StatusTable.COLUMNS, table.rows())


def render_resource_table(stand: TestStand | None = None) -> str:
    """Paper Table 3: the resource table of the test stand."""
    stand = stand or build_paper_stand()
    return format_table(stand.resources.COLUMNS, stand.resource_rows())


def render_connection_matrix(stand: TestStand | None = None) -> str:
    """Paper Table 4: the connection matrix of the test stand."""
    stand = stand or build_paper_stand()
    return format_table(
        stand.connections.header(PAPER_PINS), stand.connection_rows(PAPER_PINS)
    )


def render_test_circuit(stand: TestStand | None = None) -> str:
    """Paper Figure 1: ASCII rendering of the test circuit wiring.

    The drawing is generated from the connection matrix, so any change to the
    stand definition shows up here - it is not a hard-coded picture.
    """
    stand = stand or build_paper_stand()
    lines = [f"Test circuit of stand {stand.name!r} (UBATT = {stand.supply_voltage:g} V)", ""]
    lines.append("  test stand                              DUT")
    lines.append("  ----------                              ---")
    for resource in stand.resources:
        routes = stand.connections.routes_for_resource(resource.name)
        if not routes and resource.is_bus_interface:
            lines.append(f"  {resource.name:<10} ===== CAN bus ============== CAN_H/CAN_L")
            continue
        for route in routes:
            lines.append(
                f"  {resource.name:<10} --{route.terminal:>3}--[{route.connector.label:^7}]--> {route.pin}"
            )
    return "\n".join(lines)
