"""Virtual CAN substrate: frames, signal coding, message database, bus."""

from .bus import CanBus, CanNode, DuplicateNodeError
from .codec import SignalCoding, pack_field, unpack_field
from .database import CanDatabase, MessageDefinition
from .frame import MAX_EXTENDED_ID, MAX_STANDARD_ID, CanFrame

__all__ = [
    "CanFrame",
    "MAX_STANDARD_ID",
    "MAX_EXTENDED_ID",
    "SignalCoding",
    "pack_field",
    "unpack_field",
    "MessageDefinition",
    "CanDatabase",
    "CanBus",
    "CanNode",
    "DuplicateNodeError",
]
