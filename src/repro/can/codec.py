"""Bit-level packing of signal values into CAN payloads.

Signals are placed Intel-style (little endian): ``start_bit`` counts from the
least significant bit of the little-endian payload integer, ``bit_length``
gives the field width.  Values can carry a linear scaling (``factor`` /
``offset``) which is enough for the automotive body signals this library
ships (ignition status, door states, lock states, wiper stalk positions).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ValueError_

__all__ = ["SignalCoding", "pack_field", "unpack_field"]


def pack_field(payload: int, start_bit: int, bit_length: int, raw_value: int) -> int:
    """Insert *raw_value* into *payload* at the given bit position."""
    if bit_length <= 0:
        raise ValueError_("bit_length must be positive")
    if start_bit < 0:
        raise ValueError_("start_bit must be non-negative")
    if raw_value < 0 or raw_value >= (1 << bit_length):
        raise ValueError_(
            f"raw value {raw_value} does not fit into {bit_length} bits"
        )
    mask = ((1 << bit_length) - 1) << start_bit
    return (payload & ~mask) | (raw_value << start_bit)


def unpack_field(payload: int, start_bit: int, bit_length: int) -> int:
    """Extract the raw field value from *payload*."""
    if bit_length <= 0:
        raise ValueError_("bit_length must be positive")
    if start_bit < 0:
        raise ValueError_("start_bit must be non-negative")
    return (payload >> start_bit) & ((1 << bit_length) - 1)


@dataclass(frozen=True)
class SignalCoding:
    """Placement and scaling of one signal within a CAN message payload."""

    name: str
    start_bit: int
    bit_length: int
    factor: float = 1.0
    offset: float = 0.0
    unit: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise ValueError_("signal coding needs a name")
        if self.bit_length <= 0 or self.bit_length > 64:
            raise ValueError_(f"bit_length must be 1..64, got {self.bit_length}")
        if self.start_bit < 0 or self.start_bit + self.bit_length > 64:
            raise ValueError_(
                f"signal {self.name!r} does not fit into an 8-byte payload"
            )
        if self.factor == 0:
            raise ValueError_("factor must not be zero")

    @property
    def key(self) -> str:
        return self.name.lower()

    @property
    def max_raw(self) -> int:
        """Largest raw (unscaled) value the field can hold."""
        return (1 << self.bit_length) - 1

    def encode(self, payload: int, physical_value: float) -> int:
        """Insert a physical value (scaled to raw) into *payload*."""
        raw = round((float(physical_value) - self.offset) / self.factor)
        if raw < 0 or raw > self.max_raw:
            raise ValueError_(
                f"value {physical_value} out of range for signal {self.name!r}"
            )
        return pack_field(payload, self.start_bit, self.bit_length, raw)

    def decode(self, payload: int) -> float:
        """Extract the physical value of the signal from *payload*."""
        raw = unpack_field(payload, self.start_bit, self.bit_length)
        return raw * self.factor + self.offset

    def overlaps(self, other: "SignalCoding") -> bool:
        """Whether the two signals share any payload bit."""
        start_a, end_a = self.start_bit, self.start_bit + self.bit_length
        start_b, end_b = other.start_bit, other.start_bit + other.bit_length
        return start_a < end_b and start_b < end_a
