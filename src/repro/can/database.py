"""A small CAN message database (the role a DBC file plays in practice).

Test definitions refer to bus signals by name (``IGN_ST``, ``NIGHT``); the
database records which message carries each signal and how the payload is
laid out, so the CAN interface resource can turn ``put_can data="0001B"``
into an actual frame and the ECU model can decode received frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..core.errors import ValueError_
from .codec import SignalCoding
from .frame import CanFrame

__all__ = ["MessageDefinition", "CanDatabase"]


@dataclass(frozen=True)
class MessageDefinition:
    """Layout of one CAN message: identifier, length and contained signals."""

    name: str
    can_id: int
    length: int
    signals: tuple[SignalCoding, ...] = ()
    cycle_time: float | None = None
    sender: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise ValueError_("message definition needs a name")
        if self.length < 0 or self.length > 8:
            raise ValueError_(f"message length must be 0..8 bytes, got {self.length}")
        signals = tuple(self.signals)
        object.__setattr__(self, "signals", signals)
        for index, coding in enumerate(signals):
            if coding.start_bit + coding.bit_length > 8 * self.length:
                raise ValueError_(
                    f"signal {coding.name!r} exceeds the {self.length}-byte payload "
                    f"of message {self.name!r}"
                )
            for other in signals[index + 1:]:
                if coding.key == other.key:
                    raise ValueError_(
                        f"duplicate signal {coding.name!r} in message {self.name!r}"
                    )
                if coding.overlaps(other):
                    raise ValueError_(
                        f"signals {coding.name!r} and {other.name!r} overlap in "
                        f"message {self.name!r}"
                    )

    @property
    def key(self) -> str:
        return self.name.lower()

    def signal(self, name: str) -> SignalCoding:
        wanted = str(name).lower()
        for coding in self.signals:
            if coding.key == wanted:
                return coding
        raise ValueError_(f"message {self.name!r} has no signal {name!r}")

    def signal_names(self) -> tuple[str, ...]:
        return tuple(coding.name for coding in self.signals)

    # -- encode / decode ------------------------------------------------------

    def encode(self, values: Mapping[str, float], *, base_payload: int = 0) -> CanFrame:
        """Encode physical signal values into a frame.

        Signals not mentioned keep the bits of *base_payload* (zero by
        default), which lets callers update a single signal of a cyclic
        message.
        """
        payload = base_payload
        for name, value in values.items():
            payload = self.signal(name).encode(payload, value)
        return CanFrame.from_int(self.can_id, payload, self.length)

    def encode_raw(self, payload: int) -> CanFrame:
        """Encode a raw integer payload (e.g. the literal ``0001B``)."""
        return CanFrame.from_int(self.can_id, payload, self.length)

    def decode(self, frame: CanFrame) -> dict[str, float]:
        """Decode all signal values from a frame of this message."""
        if frame.can_id != self.can_id:
            raise ValueError_(
                f"frame id {frame.can_id:#x} does not match message "
                f"{self.name!r} ({self.can_id:#x})"
            )
        payload = frame.as_int()
        return {coding.name: coding.decode(payload) for coding in self.signals}


class CanDatabase:
    """A collection of message definitions with signal-name lookup."""

    def __init__(self, messages: Iterable[MessageDefinition] = (), *, name: str = "candb"):
        self.name = name
        self._messages: dict[str, MessageDefinition] = {}
        self._by_id: dict[int, MessageDefinition] = {}
        for message in messages:
            self.add(message)

    def add(self, message: MessageDefinition) -> None:
        if message.key in self._messages:
            raise ValueError_(f"duplicate message name {message.name!r}")
        if message.can_id in self._by_id:
            raise ValueError_(f"duplicate CAN id {message.can_id:#x}")
        self._messages[message.key] = message
        self._by_id[message.can_id] = message

    def message(self, name: str) -> MessageDefinition:
        try:
            return self._messages[str(name).lower()]
        except KeyError as exc:
            raise ValueError_(f"unknown CAN message {name!r}") from exc

    def message_by_id(self, can_id: int) -> MessageDefinition:
        try:
            return self._by_id[can_id]
        except KeyError as exc:
            raise ValueError_(f"no message with CAN id {can_id:#x}") from exc

    def message_for_signal(self, signal: str) -> MessageDefinition:
        """Find the message carrying a given signal name."""
        wanted = str(signal).lower()
        for message in self._messages.values():
            if any(coding.key == wanted for coding in message.signals):
                return message
        raise ValueError_(f"no message carries signal {signal!r}")

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._messages

    def __iter__(self) -> Iterator[MessageDefinition]:
        return iter(self._messages.values())

    def __len__(self) -> int:
        return len(self._messages)

    @property
    def message_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self._messages.values())

    def merged_with(self, other: "CanDatabase") -> "CanDatabase":
        """Combine two databases (disjoint names and ids required)."""
        merged = CanDatabase(self, name=f"{self.name}+{other.name}")
        for message in other:
            merged.add(message)
        return merged
