"""A virtual CAN bus: broadcast delivery between attached nodes.

The bus is intentionally simple - no arbitration timing, no error frames -
because the component tests the paper describes operate at the level of
"send this payload" / "did the DUT report that value".  What matters for the
reproduction is that the CAN interface resource of the test stand and the
ECU model are decoupled exactly like real hardware: both only see frames.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..core.errors import ValueError_
from .frame import CanFrame

__all__ = ["CanBus", "CanNode", "DuplicateNodeError"]

Listener = Callable[[CanFrame], None]


class DuplicateNodeError(ValueError_):
    """Two nodes with the same name were attached to one bus.

    Node names identify senders in the transmit log and address receive
    histories, so a silent duplicate would make traffic unattributable.
    Stays a :class:`ValueError_` so pre-existing ``except`` clauses keep
    working; carries the bus and node names for structured handling.
    """

    def __init__(self, bus: str, node: str):
        super().__init__(f"node name {node!r} already attached to bus {bus!r}")
        self.bus = bus
        self.node = node


class CanNode:
    """One attachment point on the bus (an ECU or a test-stand interface)."""

    def __init__(self, bus: "CanBus", name: str, listener: Listener | None = None):
        self._bus = bus
        self.name = name
        self._listener = listener
        self.received: list[CanFrame] = []

    def transmit(self, frame: CanFrame) -> None:
        """Send a frame onto the bus (delivered to every other node)."""
        self._bus.transmit(frame, sender=self)

    def deliver(self, frame: CanFrame) -> None:
        """Called by the bus when another node transmitted a frame."""
        self.received.append(frame)
        if self._listener is not None:
            self._listener(frame)

    def last_frame(self, can_id: int | None = None) -> CanFrame | None:
        """Most recent received frame, optionally filtered by identifier."""
        for frame in reversed(self.received):
            if can_id is None or frame.can_id == can_id:
                return frame
        return None

    def clear(self) -> None:
        """Forget all received frames."""
        self.received.clear()


class CanBus:
    """Broadcast medium connecting :class:`CanNode` instances."""

    def __init__(self, name: str = "can0"):
        self.name = name
        self._nodes: list[CanNode] = []
        self._log: list[tuple[str, CanFrame]] = []
        self._time = 0.0

    def attach(self, name: str, listener: Listener | None = None) -> CanNode:
        """Create and attach a new node."""
        if any(node.name == name for node in self._nodes):
            raise DuplicateNodeError(self.name, name)
        node = CanNode(self, name, listener)
        self._nodes.append(node)
        return node

    def detach(self, node: CanNode) -> None:
        """Remove a node from the bus."""
        self._nodes = [n for n in self._nodes if n is not node]

    def set_time(self, seconds: float) -> None:
        """Update the bus clock used to timestamp frames."""
        self._time = float(seconds)

    def transmit(self, frame: CanFrame, *, sender: CanNode | None = None) -> CanFrame:
        """Deliver a frame to every node except the sender; returns the stamped frame."""
        stamped = CanFrame(
            can_id=frame.can_id,
            data=frame.data,
            extended=frame.extended,
            timestamp=self._time,
        )
        self._log.append((sender.name if sender else "<anonymous>", stamped))
        for node in self._nodes:
            if node is sender:
                continue
            node.deliver(stamped)
        return stamped

    @property
    def nodes(self) -> tuple[CanNode, ...]:
        return tuple(self._nodes)

    @property
    def traffic(self) -> tuple[tuple[str, CanFrame], ...]:
        """Full transmit log as (sender name, frame) pairs."""
        return tuple(self._log)

    def frames(self, can_id: int | None = None) -> tuple[CanFrame, ...]:
        """All transmitted frames, optionally filtered by identifier."""
        return tuple(
            frame for _, frame in self._log if can_id is None or frame.can_id == can_id
        )

    def clear_log(self) -> None:
        """Forget the transmit log (nodes keep their own receive history)."""
        self._log.clear()
