"""CAN frames.

The paper's example carries the ignition status and the light-sensor bit to
the DUT as CAN data (method ``put_can``).  This module models the frame
itself; encoding/decoding of signal values lives in
:mod:`repro.can.codec` and :mod:`repro.can.database`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ValueError_

__all__ = ["CanFrame", "MAX_STANDARD_ID", "MAX_EXTENDED_ID"]

#: Highest 11-bit (standard) CAN identifier.
MAX_STANDARD_ID = 0x7FF
#: Highest 29-bit (extended) CAN identifier.
MAX_EXTENDED_ID = 0x1FFF_FFFF


@dataclass(frozen=True)
class CanFrame:
    """One classical CAN data frame.

    Attributes
    ----------
    can_id:
        Arbitration identifier (11-bit standard or 29-bit extended).
    data:
        Payload bytes, at most 8 for classical CAN.
    extended:
        Whether the identifier is a 29-bit extended one.
    timestamp:
        Simulated transmit time in seconds (0.0 when unknown).
    """

    can_id: int
    data: bytes
    extended: bool = False
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        limit = MAX_EXTENDED_ID if self.extended else MAX_STANDARD_ID
        if not 0 <= self.can_id <= limit:
            raise ValueError_(
                f"CAN id {self.can_id:#x} out of range for "
                f"{'extended' if self.extended else 'standard'} frames"
            )
        data = bytes(self.data)
        if len(data) > 8:
            raise ValueError_(f"classical CAN payload limited to 8 bytes, got {len(data)}")
        object.__setattr__(self, "data", data)

    @property
    def dlc(self) -> int:
        """Data length code (payload length in bytes)."""
        return len(self.data)

    def as_int(self) -> int:
        """Payload interpreted as one little-endian unsigned integer."""
        return int.from_bytes(self.data, "little")

    @classmethod
    def from_int(
        cls,
        can_id: int,
        value: int,
        length: int,
        *,
        extended: bool = False,
        timestamp: float = 0.0,
    ) -> "CanFrame":
        """Build a frame whose payload is *value* little-endian in *length* bytes."""
        if value < 0:
            raise ValueError_("CAN payload value must be non-negative")
        if length < 0 or length > 8:
            raise ValueError_(f"CAN payload length must be 0..8, got {length}")
        if value >= (1 << (8 * length)) and length > 0:
            raise ValueError_(
                f"value {value} does not fit into {length} payload bytes"
            )
        return cls(
            can_id=can_id,
            data=value.to_bytes(length, "little"),
            extended=extended,
            timestamp=timestamp,
        )

    def __str__(self) -> str:
        payload = " ".join(f"{byte:02X}" for byte in self.data)
        return f"CAN {self.can_id:#05x} [{self.dlc}] {payload}".rstrip()
