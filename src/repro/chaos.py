"""Deterministic, seeded infrastructure fault injection ("chaos harness").

The paper argues components must be proven robust *before* they reach the
HiL bench; this module applies the same discipline to the toolchain's own
infrastructure.  A :class:`ChaosPolicy` injects the failures real labs see -
flaky instrument I/O, hung busses, glitched one-shot readings, dying pool
workers, locked result stores, crashing service workers - on a schedule
that is a pure function of ``(seed, job_id, attempt)``, so the exact same
faults fire no matter which backend (serial / thread / process / async)
runs the campaign or in which order jobs are scheduled.

Design rules
------------
* **Zero overhead when off.**  Every hook in the hot path guards on
  ``chaos.ACTIVE is not None`` - a single module-attribute load - before
  doing anything else.  ``tools/bench_trajectory.py`` gates this at <= 2 %.
* **Content-keyed determinism.**  Schedules derive from
  ``random.Random(f"{seed}:{job_id}:{attempt}")`` (CPython seeds strings
  via SHA-512, stable across processes and ``PYTHONHASHSEED``), never from
  wall clock, thread identity, or arrival order.
* **Recoverable by construction.**  With ``faulty_attempts=1`` (the
  default) injected instrument faults fire only on a job's first attempt;
  attempt two runs clean, so a retrying executor produces verdict tables
  byte-identical to an undisturbed run - the chaos parity gate in
  ``tests/test_parity_matrix.py``.
* **Picklable.**  Policies ship to process-pool workers inside the
  executor's ``ResiliencePolicy``; both are frozen dataclasses of plain
  values.

Only one policy is active per process at a time (:func:`install` /
:func:`uninstall`); the executor manages this around ``run_jobs``.
"""

from __future__ import annotations

import contextvars
import multiprocessing
import os
import random
import sqlite3
import time
from dataclasses import dataclass, replace

from .core.errors import ConfigurationError, InstrumentIOError, TransientError

__all__ = [
    "ChaosProfile",
    "ChaosPolicy",
    "PROFILES",
    "ServiceWorkerCrash",
    "install",
    "uninstall",
    "begin_job",
    "end_job",
    "on_instrument_call",
    "on_store_commit",
    "maybe_service_crash",
    "glitched",
]

#: How many of a job's first instrument calls are eligible to host an
#: injection.  The chosen ordinal is drawn from ``range(FAULT_WINDOW)``;
#: jobs with fewer calls simply see no fault that attempt.
FAULT_WINDOW = 4

#: Exit code used when chaos kills a process-pool worker, picked to be
#: recognisable in executor logs (mirrors BSD's EX_SOFTWARE).
WORKER_KILL_EXIT_CODE = 70


class ServiceWorkerCrash(TransientError):
    """Injected crash of the :class:`~repro.service.CampaignService` worker.

    Raised *between* jobs (before the queue is polled) so no submitted job
    is ever lost; the service's supervisor loop catches it, bumps
    ``worker_restarts`` and re-enters the work loop.
    """


@dataclass(frozen=True)
class ChaosProfile:
    """Fault rates for one chaos personality.

    All rates are probabilities in ``[0, 1]`` evaluated once per
    ``(job, attempt)`` schedule (instrument faults) or once per event
    (store commits, service loop iterations).
    """

    instrument_fault_rate: float = 0.0
    instrument_hang_rate: float = 0.0
    instrument_hang_seconds: float = 0.05
    glitch_rate: float = 0.0
    worker_kill_rate: float = 0.0
    store_fail_rate: float = 0.0
    service_crash_rate: float = 0.0
    #: Attempts (counted from 1) on which instrument faults, glitches and
    #: worker kills may fire.  1 keeps every injection recoverable by a
    #: single retry; raise it to exhaust retry budgets on purpose.
    faulty_attempts: int = 1


#: Named personalities for the CLI's ``--chaos-profile`` and for tests.
PROFILES: dict[str, ChaosProfile] = {
    # Recoverable-only: transient I/O faults on first attempts.  This is
    # the profile the chaos parity gate runs - verdicts must match a
    # clean run byte-for-byte.
    "flaky-instruments": ChaosProfile(instrument_fault_rate=0.8),
    # Latency-only: every job's schedule hangs one instrument call.
    # Verdict-neutral; used to stretch runs (e.g. to SIGKILL them midway).
    "slow-instruments": ChaosProfile(
        instrument_hang_rate=1.0, instrument_hang_seconds=0.05
    ),
    # Process-pool workers die mid-job; the executor must respawn the
    # pool and redeliver unfinished chunks.
    "fragile-workers": ChaosProfile(worker_kill_rate=0.5),
    # Store commits fail with one-shot "database is locked" errors that
    # the bounded write retry must absorb.
    "flaky-store": ChaosProfile(store_fail_rate=0.5),
    # Everything at once.  Not recoverable (glitches flip verdicts);
    # for soak tests, not parity gates.
    "murphy": ChaosProfile(
        instrument_fault_rate=0.4,
        instrument_hang_rate=0.1,
        instrument_hang_seconds=0.02,
        glitch_rate=0.1,
        worker_kill_rate=0.2,
        store_fail_rate=0.3,
        service_crash_rate=0.5,
    ),
}


class _JobChaos:
    """Pre-drawn fault schedule for one ``(job_id, attempt)``.

    The constructor consumes the seeded RNG in a fixed order so the
    schedule is a pure function of the key; afterwards the instance is a
    cursor over the job's instrument-call ordinals.
    """

    __slots__ = ("calls", "fault_call", "hang_call", "hang_seconds", "glitch_call", "kill_call")

    def __init__(self, policy: "ChaosPolicy", job_id: str, attempt: int, *, allow_kill: bool = True):
        rng = random.Random(f"{policy.seed}:{job_id}:{attempt}")
        profile = policy.profile
        faulty = attempt <= profile.faulty_attempts
        self.calls = 0
        self.fault_call = (
            rng.randrange(FAULT_WINDOW)
            if faulty and rng.random() < profile.instrument_fault_rate
            else -1
        )
        self.hang_call = (
            rng.randrange(FAULT_WINDOW)
            if rng.random() < profile.instrument_hang_rate
            else -1
        )
        self.hang_seconds = profile.instrument_hang_seconds
        self.glitch_call = (
            rng.randrange(FAULT_WINDOW)
            if faulty and rng.random() < profile.glitch_rate
            else -1
        )
        self.kill_call = (
            rng.randrange(FAULT_WINDOW)
            if allow_kill and faulty and rng.random() < profile.worker_kill_rate
            else -1
        )

    def next_call(self) -> tuple[float, bool]:
        """Advance the call cursor; fault, kill, or return (hang, glitch)."""
        ordinal = self.calls
        self.calls = ordinal + 1
        if ordinal == self.kill_call and multiprocessing.parent_process() is not None:
            # Simulates a segfaulting pool worker.  Only ever fires inside
            # a child process; the parent's executor must recover.
            os._exit(WORKER_KILL_EXIT_CODE)
        if ordinal == self.fault_call:
            raise InstrumentIOError(
                f"chaos: injected instrument I/O fault (call #{ordinal})"
            )
        hang = self.hang_seconds if ordinal == self.hang_call else 0.0
        return hang, ordinal == self.glitch_call


@dataclass(frozen=True)
class ChaosPolicy:
    """A seed plus a :class:`ChaosProfile`; the whole injection config."""

    seed: int = 0
    profile: ChaosProfile = ChaosProfile()
    profile_name: str = ""

    @classmethod
    def from_profile(cls, name: str, seed: int = 0) -> "ChaosPolicy":
        """Build a policy from a named profile in :data:`PROFILES`."""
        try:
            profile = PROFILES[name]
        except KeyError:
            known = ", ".join(sorted(PROFILES))
            raise ConfigurationError(
                f"unknown chaos profile {name!r} (known: {known})"
            ) from None
        return cls(seed=seed, profile=profile, profile_name=name)

    def without_worker_kill(self) -> "ChaosPolicy":
        """Copy with worker kills disabled (for redelivered chunks)."""
        if self.profile.worker_kill_rate == 0.0:
            return self
        return replace(self, profile=replace(self.profile, worker_kill_rate=0.0))

    def schedule_for(self, job_id: str, attempt: int) -> _JobChaos:
        return _JobChaos(self, job_id, attempt)


# --------------------------------------------------------------------------
# Process-global installation.
#
# ``ACTIVE`` is the zero-overhead guard: every hook checks
# ``chaos.ACTIVE is not None`` before touching anything else.  The
# remaining globals are the policy's mutable event state (store / service
# RNG streams and their consecutive-failure caps, which guarantee forward
# progress: injections never starve a bounded retry loop).

ACTIVE: ChaosPolicy | None = None

_STORE_RNG: random.Random | None = None
_STORE_CONSECUTIVE = 0
_STORE_CONSECUTIVE_CAP = 2

_SERVICE_RNG: random.Random | None = None
_SERVICE_CRASHED_LAST = False

#: Per-job schedule for the *current* logical job.  A ``ContextVar`` is
#: naturally per-thread for the thread backend and per-task for the async
#: backend (``asyncio.gather`` gives each job coroutine its own context).
_JOB: contextvars.ContextVar[_JobChaos | None] = contextvars.ContextVar(
    "repro_chaos_job", default=None
)


def install(policy: ChaosPolicy) -> None:
    """Install *policy* as the process-wide active chaos policy.

    Idempotent for the same policy value; installing a different policy
    replaces the previous one (only one campaign's chaos can be active in
    a process at a time).  The executor calls this for the duration of
    ``run_jobs`` and inside pool workers; tests may call it directly.
    """
    global ACTIVE, _STORE_RNG, _STORE_CONSECUTIVE, _SERVICE_RNG, _SERVICE_CRASHED_LAST
    if ACTIVE == policy:
        return
    ACTIVE = policy
    _STORE_RNG = random.Random(f"{policy.seed}:store")
    _STORE_CONSECUTIVE = 0
    _SERVICE_RNG = random.Random(f"{policy.seed}:service")
    _SERVICE_CRASHED_LAST = False


def uninstall() -> None:
    """Remove the active policy; all hooks become no-ops again."""
    global ACTIVE, _STORE_RNG, _SERVICE_RNG
    ACTIVE = None
    _STORE_RNG = None
    _SERVICE_RNG = None


def begin_job(policy: ChaosPolicy, job_id: str, attempt: int) -> contextvars.Token:
    """Enter a job's fault schedule; pairs with :func:`end_job`.

    Also ensure-installs *policy* - pool workers receive the policy via
    the pickled :class:`~repro.teststand.executor.ResiliencePolicy`, not
    via an inherited global.
    """
    install(policy)
    return _JOB.set(policy.schedule_for(job_id, attempt))


def end_job(token: contextvars.Token) -> None:
    _JOB.reset(token)


# --------------------------------------------------------------------------
# Hooks.  Callers guard with ``if chaos.ACTIVE is not None:`` so none of
# these run (or even get called) on the clean path.


def on_instrument_call() -> tuple[float, bool]:
    """One instrument I/O round-trip is about to run.

    Returns ``(hang_seconds, glitch)`` for this call; raises
    :class:`InstrumentIOError` when the schedule says this call faults.
    Outside any job context (no schedule) it is a no-op.
    """
    schedule = _JOB.get()
    if schedule is None:
        return 0.0, False
    return schedule.next_call()


def on_store_commit() -> None:
    """A ``ResultStore`` transaction is about to commit.

    Raises a one-shot ``sqlite3.OperationalError("database is locked")``
    at the configured rate.  At most :data:`_STORE_CONSECUTIVE_CAP`
    consecutive injections fire, so the store's bounded write retry is
    always sufficient to make progress.
    """
    global _STORE_CONSECUTIVE
    policy = ACTIVE
    if policy is None or _STORE_RNG is None:
        return
    rate = policy.profile.store_fail_rate
    if rate <= 0.0:
        return
    if _STORE_CONSECUTIVE >= _STORE_CONSECUTIVE_CAP:
        _STORE_CONSECUTIVE = 0
        return
    if _STORE_RNG.random() < rate:
        _STORE_CONSECUTIVE += 1
        raise sqlite3.OperationalError("database is locked [chaos injection]")
    _STORE_CONSECUTIVE = 0


def maybe_service_crash() -> None:
    """The service worker is between jobs; maybe crash it.

    Raises :class:`ServiceWorkerCrash` at the configured rate, never twice
    in a row (the restarted worker always makes progress).
    """
    global _SERVICE_CRASHED_LAST
    policy = ACTIVE
    if policy is None or _SERVICE_RNG is None:
        return
    rate = policy.profile.service_crash_rate
    if rate <= 0.0:
        return
    if _SERVICE_CRASHED_LAST:
        _SERVICE_CRASHED_LAST = False
        return
    if _SERVICE_RNG.random() < rate:
        _SERVICE_CRASHED_LAST = True
        raise ServiceWorkerCrash("chaos: injected service worker crash between jobs")


def glitched(outcome):
    """Return *outcome* with its verdict flipped and the glitch annotated.

    Models a one-shot corrupted reading that slips past the instrument's
    own checks.  Glitches change verdicts, so they are deliberately absent
    from the recoverable parity profile.
    """
    detail = f"{outcome.detail} [chaos: glitched reading]".strip()
    return replace(outcome, passed=not outcome.passed, detail=detail)


def sleep_hang(seconds: float) -> None:
    """Synchronous injected hang (the async paths await directly)."""
    if seconds > 0.0:
        time.sleep(seconds)
