"""Rule family M: multi-ECU composition rules.

A composition puts several registered DUTs on one shared CAN harness
(:class:`repro.targets.CompositionTarget`), which creates failure modes no
single-DUT rule can see: two members claiming the same adapter pin, two
members transmitting the same bus message, an interaction sheet naming a
signal no member owns, or the stand synthesising a message a member
produces (the stand and the member then fight over the shared bus).  These
rules prove the composed wiring statically, before a campaign builds a
single assembly.

Findings carry the *composition* name in their ``dut`` field - that is the
campaignable unit the finding belongs to.
"""

from __future__ import annotations

from ..core.signals import SignalKind
from .context import LintContext
from .findings import ERROR, WARNING, LintRule

__all__ = ["RULES"]


def _member_ecus(context: LintContext, comp):
    """(member, DutTarget, healthy ECU) triples; members that cannot be
    built are skipped (their DUT-level problems surface elsewhere)."""
    triples = []
    for member, target in context.composition_members(comp):
        if target is None:
            continue
        harness = context.harness(target)
        if harness is None:
            continue
        triples.append((member, target, harness))
    return triples


# ---------------------------------------------------------------------------
# M-PIN-COLLISION
# ---------------------------------------------------------------------------

def check_pin_collision(context: LintContext, rule: LintRule):
    """Two composed members must not share a pin name.

    The member harnesses keep per-member electrical namespaces on the
    shared stand adapter; a duplicated pin name would make stimulus and
    measurement dispatch ambiguous (``EcuAssembly`` refuses to build, and
    the union adapter pin list is undefined).
    """
    for comp in context.compositions:
        seen: dict[str, str] = {}
        for member, _target, harness in _member_ecus(context, comp):
            for pin in harness.ecu.pins:
                owner = seen.get(pin.key)
                if owner is not None:
                    yield rule.finding(
                        f"member:{member.alias} pin:{pin.name}",
                        f"pin {pin.name!r} of member {member.alias!r} "
                        f"collides with member {owner!r}",
                        hint="rename one member's pins; composed adapter "
                             "pin namespaces must be disjoint",
                        dut=comp.name,
                    )
                else:
                    seen[pin.key] = member.alias


# ---------------------------------------------------------------------------
# M-BUS-COLLISION
# ---------------------------------------------------------------------------

def check_bus_collision(context: LintContext, rule: LintRule):
    """Bus-address collisions between composed members.

    Two flavours: a message *defined* differently by two member databases
    (same name or CAN identifier, different layout - the merged database
    would be ambiguous), and a message *produced* by two members (both
    would transmit under the same identifier on the shared bus).
    Field-identical shared definitions - two members carrying the same
    body catalogue - are fine and deduplicate.
    """
    for comp in context.compositions:
        by_name: dict[str, tuple[str, object]] = {}
        by_id: dict[int, tuple[str, object]] = {}
        senders: dict[str, str] = {}
        for member, _target, harness in _member_ecus(context, comp):
            database = harness.can_db
            if database is not None:
                for message in database:
                    known = by_name.get(message.key) or by_id.get(message.can_id)
                    if known is not None:
                        owner, definition = known
                        if message != definition:
                            yield rule.finding(
                                f"member:{member.alias} message:{message.name}",
                                f"CAN message {message.name!r} "
                                f"(id 0x{message.can_id:x}) of member "
                                f"{member.alias!r} conflicts with member "
                                f"{owner!r}'s definition",
                                hint="give the members one shared message "
                                     "catalogue or disjoint identifiers",
                                dut=comp.name,
                            )
                        continue
                    by_name[message.key] = (member.alias, message)
                    by_id[message.can_id] = (member.alias, message)
            for name in harness.ecu.TX_MESSAGES:
                key = str(name).lower()
                owner = senders.get(key)
                if owner is not None and owner != member.alias:
                    yield rule.finding(
                        f"member:{member.alias} message:{name}",
                        f"members {owner!r} and {member.alias!r} both "
                        f"transmit message {name!r} on the shared bus",
                        hint="a composed message needs exactly one producer",
                        dut=comp.name,
                    )
                else:
                    senders[key] = member.alias


# ---------------------------------------------------------------------------
# M-UNRESOLVED-SIGNAL
# ---------------------------------------------------------------------------

def check_unresolved_signal(context: LintContext, rule: LintRule):
    """Every composed-sheet signal must resolve against some member.

    An electrical signal's pins must belong to exactly one member's ECU; a
    bus signal's carrying message must exist in some member's database.
    Anything else would execute as per-action ERROR verdicts at campaign
    time.
    """
    for comp in context.compositions:
        suite = context.composition_suite(comp)
        if suite is None:
            continue
        members = _member_ecus(context, comp)
        messages = {
            message.key
            for _member, _target, harness in members
            if harness.can_db is not None
            for message in harness.can_db
        }
        for signal in suite.signals:
            if signal.kind is SignalKind.BUS:
                if signal.message and signal.message.lower() not in messages:
                    yield rule.finding(
                        f"sheet:signals signal:{signal.name}",
                        f"bus signal {signal.name!r} names message "
                        f"{signal.message!r}, which no member's CAN "
                        f"database defines",
                        hint="fix the message name or extend a member's "
                             "database",
                        dut=comp.name,
                    )
                continue
            for pin in signal.pins:
                if not any(harness.ecu.has_pin(pin)
                           for _m, _t, harness in members):
                    yield rule.finding(
                        f"sheet:signals signal:{signal.name}",
                        f"signal {signal.name!r} references pin {pin!r}, "
                        f"which no composed member owns",
                        hint="fix the pin name or add the owning member",
                        dut=comp.name,
                    )


# ---------------------------------------------------------------------------
# M-STIMULATED-MEMBER-TX
# ---------------------------------------------------------------------------

def check_stimulated_member_tx(context: LintContext, rule: LintRule):
    """The stand must not synthesise messages a member produces.

    A composed sheet that keeps a single-DUT stand-in input (the locking
    sheet's ``put_can`` speed, say) while the real producer is on the bus
    makes the stand and the member fight over the same message - checks
    then pass or fail depending on frame ordering, not behaviour.  Such
    signals must be dropped from the composed sheet; the member's real
    output replaces them.
    """
    for comp in context.compositions:
        suite = context.composition_suite(comp)
        if suite is None:
            continue
        producers: dict[str, str] = {}
        for member, _target, harness in _member_ecus(context, comp):
            for name in harness.ecu.TX_MESSAGES:
                producers.setdefault(str(name).lower(), member.alias)
        for signal in suite.signals:
            if signal.kind is not SignalKind.BUS or not signal.is_input:
                continue
            producer = producers.get((signal.message or "").lower())
            if producer is not None:
                yield rule.finding(
                    f"sheet:signals signal:{signal.name}",
                    f"input bus signal {signal.name!r} has the stand "
                    f"synthesise message {signal.message!r}, which member "
                    f"{producer!r} produces on the shared bus",
                    hint="drop the stand-in from the composed sheet; the "
                         "member's real broadcast replaces it",
                    dut=comp.name,
                )


RULES = (
    LintRule(
        "M-PIN-COLLISION", ERROR,
        "composed members share a pin name",
        check_pin_collision,
    ),
    LintRule(
        "M-BUS-COLLISION", ERROR,
        "composed members collide on a CAN message",
        check_bus_collision,
    ),
    LintRule(
        "M-UNRESOLVED-SIGNAL", ERROR,
        "composed-sheet signal resolves against no member",
        check_unresolved_signal,
    ),
    LintRule(
        "M-STIMULATED-MEMBER-TX", WARNING,
        "stand synthesises a message a member produces",
        check_stimulated_member_tx,
    ),
)
