"""Lint engine: rule registry, report model, programmatic entry points.

:func:`run_lint` is the one entry point everything else goes through - the
``repro-lint`` console script, the ``--lint`` column of
``repro-campaign --list-targets`` and the ``preflight="lint"`` mode of
:func:`repro.targets.run_single` / :func:`repro.targets.build_campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.errors import ReproError
from ..methods import MethodRegistry
from ..targets import CompositionTarget, DutTarget, TargetError, get_composition
from . import composition, coverage, executor_safety, expressions, reachability
from .context import LintContext
from .findings import (
    ERROR,
    NOTE,
    WARNING,
    LintFinding,
    LintRule,
    exit_code_for,
    sort_findings,
)

__all__ = [
    "ALL_RULES",
    "LintError",
    "LintReport",
    "preflight_lint",
    "preflight_lint_composition",
    "rules_by_id",
    "run_lint",
    "select_rules",
]

#: Every registered rule, family order: expressions, reachability,
#: coverage, executor safety, composition.
ALL_RULES: tuple[LintRule, ...] = (
    expressions.RULES
    + reachability.RULES
    + coverage.RULES
    + executor_safety.RULES
    + composition.RULES
)


def rules_by_id() -> dict[str, LintRule]:
    """Mapping of upper-case rule id to rule."""
    return {rule.id: rule for rule in ALL_RULES}


def select_rules(
    rules: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> tuple[LintRule, ...]:
    """Resolve ``--rule`` / ``--ignore`` filters to a rule tuple.

    Ids are matched case-insensitively; an unknown id raises
    :class:`~repro.targets.TargetError` (a typo silently linting nothing
    would be worse than failing loudly).
    """
    known = rules_by_id()

    def resolve(names: Iterable[str]) -> tuple[str, ...]:
        resolved = []
        for name in names:
            wanted = str(name).strip().upper()
            if wanted not in known:
                raise TargetError(
                    f"unknown lint rule {name!r}; known rules: "
                    f"{', '.join(sorted(known))}"
                )
            resolved.append(wanted)
        return tuple(resolved)

    selected = resolve(rules) if rules is not None else tuple(known)
    ignored = set(resolve(ignore)) if ignore is not None else set()
    return tuple(
        known[rule_id] for rule_id in selected if rule_id not in ignored
    )


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run: the sorted findings plus derived views."""

    findings: tuple[LintFinding, ...]
    rules: tuple[str, ...] = ()

    @property
    def errors(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity == ERROR)

    @property
    def warnings(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity == WARNING)

    @property
    def notes(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity == NOTE)

    @property
    def exit_code(self) -> int:
        """``repro-lint`` exit code: 0 clean, 1 warnings, 2 errors."""
        return exit_code_for(self.findings)

    def counts(self) -> dict[str, int]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "notes": len(self.notes),
        }

    def counts_by_dut(self) -> dict[str, int]:
        """Finding count per DUT name (registry-wide findings under ``*``)."""
        per_dut: dict[str, int] = {}
        for finding in self.findings:
            key = finding.dut or "*"
            per_dut[key] = per_dut.get(key, 0) + 1
        return per_dut

    def summary(self) -> str:
        counts = self.counts()
        return (
            f"{len(self.findings)} finding(s): {counts['errors']} error(s), "
            f"{counts['warnings']} warning(s), {counts['notes']} note(s)"
        )

    def as_json_dict(self) -> dict[str, object]:
        """The ``--format json`` document."""
        return {
            "rules": list(self.rules),
            "counts": self.counts(),
            "exit_code": self.exit_code,
            "findings": [finding.as_dict() for finding in self.findings],
        }


def run_lint(
    duts: Sequence[DutTarget | str] | None = None,
    *,
    rules: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    registry: MethodRegistry | None = None,
    compositions: Sequence[CompositionTarget | str] | None = None,
) -> LintReport:
    """Statically analyse the registered targets without executing a job.

    Parameters
    ----------
    duts:
        DUT targets (or names) to analyse; default all registered DUTs.
    rules / ignore:
        Rule-id filters, see :func:`select_rules`.
    registry:
        Method registry override; default the shared default registry.
    compositions:
        Composition targets (or names) to analyse with the family-M rules;
        default all registered compositions on a whole-registry run
        (``duts=None``), none when DUTs are selected explicitly.
    """
    selected = select_rules(rules, ignore)
    context = LintContext(duts, registry=registry, compositions=compositions)
    findings: list[LintFinding] = []
    for rule in selected:
        findings.extend(rule.check(context, rule))
    return LintReport(
        findings=sort_findings(findings),
        rules=tuple(rule.id for rule in selected),
    )


class LintError(TargetError):
    """Raised by :func:`preflight_lint` when the analysis finds errors."""

    def __init__(self, message: str, findings: tuple[LintFinding, ...] = ()):
        super().__init__(message)
        self.findings = findings


def _raise_on_errors(report: LintReport) -> LintReport:
    errors = report.errors
    if errors:
        listed = "; ".join(
            f"{finding.rule} at {finding.location}" for finding in errors[:5]
        )
        if len(errors) > 5:
            listed += f"; and {len(errors) - 5} more"
        raise LintError(
            f"lint preflight found {len(errors)} error(s): {listed}",
            findings=errors,
        )
    return report


def preflight_lint(dut: DutTarget | str) -> LintReport:
    """Lint one DUT and raise :class:`LintError` on error findings.

    This is the ``preflight="lint"`` hook of
    :func:`repro.targets.run_single` and
    :func:`repro.targets.build_campaign`: warnings and notes pass, errors
    abort before any stand is built.
    """
    return _raise_on_errors(run_lint([dut]))


def preflight_lint_composition(
    composition: CompositionTarget | str,
) -> LintReport:
    """Lint one composition - its member DUTs plus the family-M composition
    rules - and raise :class:`LintError` on error findings.

    The composed ``preflight="lint"`` hook: a composed campaign is only as
    sound as its members, so their single-DUT findings gate it too.
    """
    comp = get_composition(composition) \
        if isinstance(composition, str) else composition
    return _raise_on_errors(
        run_lint([member.dut for member in comp.members],
                 compositions=[comp])
    )
