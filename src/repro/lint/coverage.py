"""Rule family C: detection-coverage proof over the fault catalogues.

For every catalogued fault these rules ask, without building a single
harness or running a single job: *can the bundled sheets observe this
defect at all, and does the catalogue's* ``expected_detected`` *flag match
what the sheets can actually see?*  The answer cross-references three
artefacts the registry already carries:

* the fault class itself, introspected down to the healthy ECU class;
* the bundled test sheets, replayed symbolically as accumulated signal
  status state (the sheets' "sparse column" convention);
* the stand capability negotiation (:attr:`StandTarget.missing_methods`,
  the same data :func:`repro.targets.method_coverage` renders) - a sheet
  that no registered stand can serve observes nothing.

Soundness scope
---------------
Only one fault category supports a *sound* negative: **masking faults**,
where a subclass shrinks a tuple-of-pins class attribute (the paper's
``ignores_ds_fr``: ``DOOR_PINS`` drops ``DS_FR``).  For those the analysis
proves from the sheets alone whether any step isolates a masked pin -
masked signal off its initial status, every sibling still initial - while
checking a measured output at a non-initial status.  Every other category
(overridden methods/properties, changed constants, opaque factories) is
treated *generously*: string literals in the override are only a hint for
which outputs the fault touches, and a fault is called undetectable only
when those outputs are never checked by any servable sheet.  The rules
therefore never claim a may-detected fault is an escape; they only flag
contradictions that hold under the generous reading too.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

from .context import LintContext
from .findings import ERROR, NOTE, WARNING, LintRule

__all__ = ["RULES"]


# ---------------------------------------------------------------------------
# Fault introspection
# ---------------------------------------------------------------------------

class _FaultShape:
    """Statically derived shape of one catalogued fault."""

    __slots__ = ("fault", "category", "masked", "siblings", "literals")

    def __init__(self, fault, category, masked=frozenset(),
                 siblings=frozenset(), literals=frozenset()):
        self.fault = fault
        #: ``masking`` (sound), ``override`` (generous) or ``opaque``.
        self.category = category
        #: Lower-case pins removed from a tuple attribute (masking only).
        self.masked = frozenset(masked)
        #: Lower-case pins the fault still evaluates (masking only).
        self.siblings = frozenset(siblings)
        #: Lower-case string literals found in overridden code/dicts.
        self.literals = frozenset(literals)


def _string_literals(value) -> set[str]:
    """Lower-case string literals inside an overridden member."""
    if isinstance(value, dict):
        found = set()
        for key, item in value.items():
            if isinstance(key, str):
                found.add(key.lower())
            if isinstance(item, str):
                found.add(item.lower())
        return found
    target = value.fget if isinstance(value, property) else value
    if not callable(target):
        return set()
    try:
        source = textwrap.dedent(inspect.getsource(target))
        tree = ast.parse(source)
    except Exception:
        return set()
    return {
        node.value.lower()
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _is_pin_tuple(value) -> bool:
    return (isinstance(value, tuple) and bool(value)
            and all(isinstance(item, str) for item in value))


def _fault_shape(fault, healthy: type | None) -> _FaultShape:
    """Classify one fault by diffing its class against the healthy ECU."""
    cls = fault.factory
    if not isinstance(cls, type) or healthy is None:
        return _FaultShape(fault, "opaque")
    literals: set[str] = set()
    for klass in cls.__mro__:
        if klass is healthy or not issubclass(klass, healthy):
            break
        for name, value in vars(klass).items():
            if name.startswith("__"):
                continue
            base_value = getattr(healthy, name, None)
            if (_is_pin_tuple(value) and _is_pin_tuple(base_value)
                    and set(value) < set(base_value)):
                masked = {pin.lower() for pin in set(base_value) - set(value)}
                siblings = {pin.lower() for pin in value}
                return _FaultShape(fault, "masking", masked, siblings)
            literals |= _string_literals(value)
    return _FaultShape(fault, "override", literals=literals)


# ---------------------------------------------------------------------------
# Symbolic sheet replay
# ---------------------------------------------------------------------------

class _SheetView:
    """One sheet plus everything the observability checks need."""

    __slots__ = ("sheet", "servable", "measured", "isolating")

    def __init__(self, sheet, servable, measured, isolating):
        self.sheet = sheet
        #: At least one registered stand covers all the sheet's methods.
        self.servable = servable
        #: Lower-case output signals the sheet checks with a measurement
        #: method at a non-initial status, in any step.
        self.measured = frozenset(measured)
        #: ``frozenset`` of (masked-candidate signal) -> the sheet has a
        #: step isolating exactly that signal while measuring; stored as a
        #: set of lower-case signal names for membership tests.
        self.isolating = isolating


def _signal_for_pin(signals, pin: str):
    try:
        return signals.signal_for_pin(pin)
    except Exception:
        return None


def _analyse_sheets(context: LintContext, dut):
    """Shared per-DUT sheet analysis, memoised for all four C rules.

    Returns ``(views, initial)`` where *views* is a list of
    :class:`_SheetView` in suite order (first entry is the primary sheet)
    and *initial* maps lower-case signal name to lower-case initial status.
    """
    def build():
        suite = context.suite(dut)
        if suite is None:
            return ([], {})
        signals = suite.signals
        statuses = suite.statuses
        initial = {
            str(name).lower(): str(status).lower()
            for name, status in signals.initial_statuses.items()
        }

        def status_def(name):
            try:
                return statuses.get(name)
            except Exception:
                return None

        def non_initial(signal_key: str, status_name: str) -> bool:
            start = initial.get(signal_key)
            if start is None:
                return True  # no declared initial status: anything counts
            return status_name.lower() != start

        views = []
        for sheet in suite:
            methods = set()
            for status_name in sheet.statuses_used():
                definition = status_def(status_name)
                if definition is not None:
                    methods.add(definition.method.lower())
            servable = any(
                not target.missing_methods(methods)
                for target in context.eligible_stands(dut)
            )
            state = dict(initial)
            measured: set[str] = set()
            isolating: set[frozenset] = set()
            for step in sheet.steps:
                for assignment in step.assignments:
                    state[assignment.signal.lower()] = assignment.status.lower()
                step_measures = False
                for assignment in step.assignments:
                    definition = status_def(assignment.status)
                    if definition is None:
                        continue
                    if not context.is_measurement(definition.method):
                        continue
                    key = assignment.signal.lower()
                    if non_initial(key, assignment.status):
                        measured.add(key)
                        step_measures = True
                if not step_measures:
                    continue
                displaced = frozenset(
                    key for key, status in state.items()
                    if initial.get(key) is not None and status != initial[key]
                )
                isolating.add(displaced)
            views.append(_SheetView(sheet, servable, measured, isolating))
        return (views, initial)
    return context.memo(("coverage-sheets", dut.key), build)


def _observes_masking(view: _SheetView, masked_signals: frozenset,
                      sibling_signals: frozenset) -> bool:
    """Whether one sheet has a step isolating a masked signal while measuring.

    A step counts when, in the accumulated sheet state, at least one masked
    signal sits off its initial status, every sibling signal is back at (or
    never left) its initial status, and the step checks some output with a
    measurement-bound non-initial status - exactly the situation where the
    healthy ECU reacts and the masked one cannot.
    """
    for displaced in view.isolating:
        if not masked_signals & displaced:
            continue
        if sibling_signals & displaced:
            continue
        return True
    return False


def _shapes(context: LintContext, dut):
    """Memoised fault shapes of the DUT's catalogue."""
    def build():
        catalogue = context.catalogue(dut)
        if catalogue is None:
            return ()
        healthy = dut.ecu_factory if isinstance(dut.ecu_factory, type) else None
        return tuple(_fault_shape(fault, healthy) for fault in catalogue)
    return context.memo(("coverage-shapes", dut.key), build)


def _masked_signals(shape: _FaultShape, suite) -> tuple[frozenset, frozenset]:
    """Map masked/sibling pins to lower-case signal names."""
    signals = suite.signals
    masked = frozenset(
        signal.key for signal in (
            _signal_for_pin(signals, pin) for pin in shape.masked
        ) if signal is not None
    )
    siblings = frozenset(
        signal.key for signal in (
            _signal_for_pin(signals, pin) for pin in shape.siblings
        ) if signal is not None
    )
    return masked, siblings


def _touched_outputs(shape: _FaultShape, suite) -> frozenset:
    """Output signals a generous fault's literals plausibly touch."""
    signals = suite.signals
    touched = set()
    for literal in shape.literals:
        for signal in signals:
            if not signal.is_output:
                continue
            if signal.key == literal:
                touched.add(signal.key)
            elif any(pin.lower() == literal for pin in signal.pins):
                touched.add(signal.key)
            elif signal.message and signal.message.lower() == literal:
                touched.add(signal.key)
    return frozenset(touched)


# ---------------------------------------------------------------------------
# The rules
# ---------------------------------------------------------------------------

def _coverage_facts(context: LintContext, dut):
    """Per-fault verdicts shared by all four C rules.

    Yields ``(shape, primary_observes, closers, provable)`` where *closers*
    is the list of non-primary servable sheets that observe the fault and
    *provable* marks the sound masking analysis (vs. the generous reading).
    """
    def build():
        suite = context.suite(dut)
        shapes = _shapes(context, dut)
        if suite is None or not shapes:
            return ()
        views, _ = _analyse_sheets(context, dut)
        servable_views = [view for view in views if view.servable]
        any_measuring = any(view.measured for view in servable_views)
        facts = []
        for shape in shapes:
            if shape.category == "masking":
                masked, siblings = _masked_signals(shape, suite)
                provable = bool(masked)
                observers = [
                    view for view in servable_views
                    if _observes_masking(view, masked, siblings)
                ]
            else:
                provable = False
                touched = _touched_outputs(shape, suite)
                if touched:
                    observers = [
                        view for view in servable_views
                        if view.measured & touched
                    ]
                    # the literals are only a hint: a fault whose named
                    # outputs are never checked may still surface through
                    # side effects, so fall back to "any measuring sheet"
                    if not observers and any_measuring:
                        observers = [
                            view for view in servable_views if view.measured
                        ]
                else:
                    observers = [
                        view for view in servable_views if view.measured
                    ]
            primary = bool(views) and views[0].servable and views[0] in observers
            closers = [
                view.sheet.name for view in observers
                if views and view is not views[0]
            ]
            facts.append((shape, primary, tuple(closers), provable))
        return tuple(facts)
    return context.memo(("coverage-facts", dut.key), build)


def check_undetectable_fault(context: LintContext, rule: LintRule):
    """Faults expected to be detected that no servable sheet can observe."""
    for dut in context.duts:
        for shape, primary, closers, provable in _coverage_facts(context, dut):
            if not shape.fault.expected_detected:
                continue
            if primary or closers:
                continue
            kind = ("proven by masking analysis" if provable
                    else "no servable sheet checks the outputs it touches")
            yield rule.finding(
                f"fault:{shape.fault.name}",
                f"catalogued as detected, but no bundled sheet can observe "
                f"it on any registered stand ({kind})",
                hint="add a sheet exercising the faulty behaviour or mark "
                     "the fault expected_detected=False",
                dut=dut.name,
            )


def check_stale_escape(context: LintContext, rule: LintRule):
    """Documented escapes the primary sheet provably observes."""
    for dut in context.duts:
        for shape, primary, closers, provable in _coverage_facts(context, dut):
            if shape.fault.expected_detected or not provable or not primary:
                continue
            yield rule.finding(
                f"fault:{shape.fault.name}",
                f"catalogued as a detection escape, but the primary sheet "
                f"isolates the masked signal and checks a measured output - "
                f"the escape entry is stale",
                hint="flip the fault to expected_detected=True",
                dut=dut.name,
            )


def check_documented_escape(context: LintContext, rule: LintRule):
    """Machine-derived confirmation of a documented escape.

    The sound masking analysis re-derives, from the sheets alone, that the
    primary sheet misses the fault; the note records which later sheets
    close the gap so the catalogue comment stays a checked fact.
    """
    for dut in context.duts:
        for shape, primary, closers, provable in _coverage_facts(context, dut):
            if shape.fault.expected_detected or not provable or primary:
                continue
            closing = (f"closed by: {', '.join(closers)}" if closers
                       else "no bundled sheet closes it")
            yield rule.finding(
                f"fault:{shape.fault.name}",
                f"detection escape statically confirmed: the primary sheet "
                f"never isolates the masked signal "
                f"({', '.join(sorted(shape.masked)) or 'n/a'}) while "
                f"checking a measured output; {closing}",
                dut=dut.name,
            )


def check_unverified_escape(context: LintContext, rule: LintRule):
    """Documented escapes the analysis cannot statically confirm."""
    for dut in context.duts:
        for shape, primary, closers, provable in _coverage_facts(context, dut):
            if shape.fault.expected_detected or provable:
                continue
            yield rule.finding(
                f"fault:{shape.fault.name}",
                f"catalogued as a detection escape, but the fault's "
                f"{shape.category} shape is outside the sound masking "
                f"analysis - the escape rests on run-time evidence only",
                hint="re-shape the fault as a masked-pin subclass or keep a "
                     "campaign regression test for it",
                dut=dut.name,
            )


RULES = (
    LintRule(
        "C-UNDETECTABLE-FAULT", ERROR,
        "a fault expected to be detected is observable by no servable sheet",
        check_undetectable_fault,
    ),
    LintRule(
        "C-STALE-ESCAPE", ERROR,
        "a documented escape is provably observed by the primary sheet",
        check_stale_escape,
    ),
    LintRule(
        "C-DOCUMENTED-ESCAPE", NOTE,
        "a documented escape is statically confirmed (with closing sheets)",
        check_documented_escape,
    ),
    LintRule(
        "C-UNVERIFIED-ESCAPE", WARNING,
        "a documented escape cannot be statically confirmed",
        check_unverified_escape,
    ),
)
