"""Diagnostic model of the static analyzer.

A :class:`LintFinding` is one structured diagnostic: a rule id, a severity,
a location inside the registry (``dut:interior_light_ecu sheet:...``), a
message and an optional fix hint.  Findings are plain immutable data - the
engine produces them, the CLI renders them as text or JSON, and
:func:`repro.lint.preflight_lint` raises on the error-severity ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "ERROR",
    "WARNING",
    "NOTE",
    "SEVERITIES",
    "EXIT_CLEAN",
    "EXIT_WARNINGS",
    "EXIT_ERRORS",
    "LintFinding",
    "LintRule",
    "sort_findings",
    "exit_code_for",
]

#: Severity levels, most severe first.  ``note`` findings are informational
#: (machine-derived facts such as a documented detection escape) and never
#: affect the exit code.
ERROR = "error"
WARNING = "warning"
NOTE = "note"
SEVERITIES = (ERROR, WARNING, NOTE)

_SEVERITY_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}

#: ``repro-lint`` exit codes: clean / warnings only / at least one error.
EXIT_CLEAN = 0
EXIT_WARNINGS = 1
EXIT_ERRORS = 2


@dataclass(frozen=True)
class LintFinding:
    """One structured diagnostic emitted by a lint rule.

    Attributes
    ----------
    rule:
        Rule identifier, e.g. ``E-UNKNOWN-VARIABLE`` (documented in
        ``docs/lint-rules.md``).
    severity:
        One of :data:`SEVERITIES`.
    location:
        Where inside the registry the problem sits, e.g.
        ``sheet:interior_illumination step:3`` - always without the DUT,
        which travels separately in ``dut``.
    message:
        Human-readable statement of the problem.
    hint:
        Optional one-line fix suggestion.
    dut:
        Name of the registered DUT the finding belongs to, or ``None`` for
        registry-/stand-/library-wide findings.
    """

    rule: str
    severity: str
    location: str
    message: str
    hint: str = ""
    dut: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"finding severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )

    def render(self) -> str:
        """One text line, the ``--format text`` representation."""
        where = f"dut:{self.dut} {self.location}" if self.dut else self.location
        line = f"{self.severity.upper():<7} {self.rule:<26} {where}: {self.message}"
        if self.hint:
            line += f"  [fix: {self.hint}]"
        return line

    def as_dict(self) -> dict[str, object]:
        """JSON-ready mapping, the ``--format json`` representation."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "dut": self.dut,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class LintRule:
    """One registered lint rule: identity, default severity, check function.

    ``check(context, rule)`` walks the :class:`~repro.lint.context.LintContext`
    and yields :class:`LintFinding` objects, normally built through
    :meth:`finding` so the rule id and severity stay consistent with the
    registration.  Rules of one family may share expensive analyses through
    ``context.memo``.
    """

    id: str
    severity: str
    summary: str
    check: Callable[..., Iterable[LintFinding]]

    def finding(self, location: str, message: str, *, hint: str = "",
                dut: str | None = None,
                severity: str | None = None) -> LintFinding:
        """Build a finding carrying this rule's id and (default) severity."""
        return LintFinding(
            rule=self.id,
            severity=severity or self.severity,
            location=location,
            message=message,
            hint=hint,
            dut=dut,
        )


def sort_findings(findings) -> tuple[LintFinding, ...]:
    """Stable ordering: most severe first, then by DUT, location, rule."""
    return tuple(sorted(
        findings,
        key=lambda f: (
            _SEVERITY_RANK.get(f.severity, len(SEVERITIES)),
            f.dut or "",
            f.location,
            f.rule,
        ),
    ))


def exit_code_for(findings) -> int:
    """Map a finding collection to the ``repro-lint`` exit code.

    Errors dominate warnings; ``note`` findings never affect the code.
    """
    worst = EXIT_CLEAN
    for finding in findings:
        if finding.severity == ERROR:
            return EXIT_ERRORS
        if finding.severity == WARNING:
            worst = EXIT_WARNINGS
    return worst
