"""Rule family X: executor-safety rules.

The async and process executor backends impose contracts no type checker
enforces: campaign jobs must pickle (process backend), ``arun()`` paths
must never call a blocking ``execute`` (async backend), and the plan cache
is only correct when fingerprints are stable across rebuilds of the same
stand or script.  The persistent result store adds a fourth: names that
only differ in case merge silently under its case-insensitive queries.
The bytecode VM adds a fifth: a (sheet x stand) pair the VM cannot
compile silently runs on the classic interpreter forever.  The
resilience machinery adds a sixth: the retry classifier
(:func:`repro.core.errors.is_transient`) treats *unknown* exception
types as transient, so an instrument ``_perform`` core that raises a
bare ``Exception`` / ``RuntimeError`` for a permanent defect silently
burns retry attempts and backoff time on every occurrence.  These rules
verify all six statically.
"""

from __future__ import annotations

import ast
import inspect
import pickle
import textwrap

from ..core.compiler import Compiler
from ..teststand.plan import compile_plan, script_fingerprint, stand_fingerprint
from .context import LintContext
from .findings import ERROR, WARNING, LintRule

__all__ = ["RULES", "blocking_execute_calls", "unclassified_raises"]


# ---------------------------------------------------------------------------
# X-UNPICKLABLE-FACTORY
# ---------------------------------------------------------------------------

def _pickle_problem(value) -> str | None:
    """Why *value* would break the process backend, or ``None``."""
    qualname = getattr(value, "__qualname__", "")
    if "<locals>" in qualname:
        return (
            f"defined inside a function body ({qualname}); the process "
            f"backend pickles jobs by reference and cannot import it"
        )
    try:
        pickle.dumps(value)
    except Exception as exc:
        return f"not picklable: {exc}"
    return None


def _dut_factories(dut):
    yield "ecu_factory", dut.ecu_factory
    yield "harness_factory", dut.harness_factory
    yield "signals_factory", dut.signals_factory
    if dut.faults_factory is not None:
        yield "faults_factory", dut.faults_factory
    if dut.suite_factory is not None:
        yield "suite_factory", dut.suite_factory


def check_unpicklable_factory(context: LintContext, rule: LintRule):
    """Registered factories the process backend could not ship to workers."""
    for dut in context.duts:
        for name, factory in _dut_factories(dut):
            problem = _pickle_problem(factory)
            if problem is None:
                continue
            yield rule.finding(
                f"factory:{name}",
                f"registered {name} would break the process executor "
                f"backend: {problem}",
                hint="move the factory to module level (a def or "
                     "functools.partial of one)",
                dut=dut.name,
            )
        catalogue = context.catalogue(dut)
        if catalogue is None:
            continue
        for fault in catalogue:
            problem = _pickle_problem(fault.factory)
            if problem is None:
                continue
            yield rule.finding(
                f"fault:{fault.name}",
                f"fault factory would break the process executor backend: "
                f"{problem}",
                hint="define the faulty ECU as a module-level class",
                dut=dut.name,
            )
    for stand in context.stands:
        problem = _pickle_problem(stand.builder)
        if problem is None:
            continue
        yield rule.finding(
            f"stand:{stand.name} builder",
            f"stand builder would break the process executor backend: "
            f"{problem}",
            hint="register a module-level builder function",
        )


# ---------------------------------------------------------------------------
# X-BLOCKING-EXECUTE-IN-ASYNC
# ---------------------------------------------------------------------------

class _AsyncExecuteVisitor(ast.NodeVisitor):
    """Find ``.execute(`` attribute calls lexically inside ``async def``.

    A stack of function kinds keeps nested *sync* helpers defined inside an
    async function from being flagged: only calls whose innermost enclosing
    function is async block the event loop.
    """

    def __init__(self):
        self.stack: list[bool] = []
        self.calls: list[tuple[int, str]] = []

    def visit_FunctionDef(self, node):
        self.stack.append(False)
        self.generic_visit(node)
        self.stack.pop()

    def visit_AsyncFunctionDef(self, node):
        self.stack.append(True)
        self.generic_visit(node)
        self.stack.pop()

    def visit_Call(self, node):
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "execute"
                and self.stack and self.stack[-1]):
            self.calls.append((node.lineno, ast.unparse(func)))
        self.generic_visit(node)


def blocking_execute_calls(source: str) -> tuple[tuple[int, str], ...]:
    """``(lineno, call)`` for blocking ``.execute(`` calls in async defs.

    Exposed for test fixtures; the rule applies it to the interpreter,
    executor and instrument-base sources.
    """
    visitor = _AsyncExecuteVisitor()
    visitor.visit(ast.parse(textwrap.dedent(source)))
    return tuple(visitor.calls)


def check_blocking_execute(context: LintContext, rule: LintRule):
    """Blocking instrument calls reachable from the async run path."""
    from ..instruments import base as instruments_base
    from ..teststand import executor, interpreter, vm

    for module in (interpreter, executor, vm, instruments_base):
        try:
            source = inspect.getsource(module)
        except Exception:
            continue
        for lineno, call in blocking_execute_calls(source):
            yield rule.finding(
                f"module:{module.__name__} line:{lineno}",
                f"async function calls blocking {call}(...); on the async "
                f"backend this stalls the event loop for the instrument's "
                f"full settle time",
                hint="await the instrument's aexecute() instead",
            )


# ---------------------------------------------------------------------------
# X-UNSTABLE-FINGERPRINT
# ---------------------------------------------------------------------------

def check_unstable_fingerprint(context: LintContext, rule: LintRule):
    """Fingerprints that change across rebuilds poison the plan cache.

    The plan cache keys on (script, stand, registry) *content*
    fingerprints.  A stand builder or suite factory that produces different
    content on every call - a timestamp in a variable, a random resource
    ordering - makes every campaign run recompile all plans and silently
    grow the cache.  Building twice and comparing is the cheapest honest
    check.
    """
    for stand in context.stands:
        try:
            first, second = stand.builder(), stand.builder()
        except Exception:
            continue  # registration already reports broken builders
        try:
            stable = stand_fingerprint(first) == stand_fingerprint(second)
        except Exception:
            continue
        if stable:
            continue
        yield rule.finding(
            f"stand:{stand.name}",
            f"two builds of the stand produce different content "
            f"fingerprints; every execution plan cache lookup misses",
            hint="make the builder deterministic (stable resource order, "
                 "no per-build timestamps in variables)",
        )
    for dut in context.duts:
        if dut.suite_factory is None:
            continue
        try:
            suites = (dut.suite_factory(), dut.suite_factory())
            signal_sets = (dut.signals_factory(), dut.signals_factory())
            compiled = [
                {
                    script.name: script_fingerprint(script, signals)
                    for script in Compiler(
                        registry=context.registry).compile_suite(suite)
                }
                for suite, signals in zip(suites, signal_sets)
            ]
        except Exception:
            continue
        for name, fingerprint in compiled[0].items():
            other = compiled[1].get(name)
            if other is None or fingerprint == other:
                continue
            yield rule.finding(
                f"sheet:{name}",
                f"two compilations of the sheet produce different script "
                f"fingerprints; its execution plans can never be reused "
                f"from the cache",
                hint="make the suite factory deterministic (stable step "
                     "and parameter ordering)",
                dut=dut.name,
            )


# ---------------------------------------------------------------------------
# X-UNSTORABLE-RESULT
# ---------------------------------------------------------------------------

def check_unstorable_result(context: LintContext, rule: LintRule):
    """Names that would silently merge rows in the persistent result store.

    The result store (:mod:`repro.store`) and the campaign machinery match
    names case-insensitively: ``ResultStore.query`` compares DUT, stand and
    group names with ``LOWER(...)``, and run-vs-run diffs key rows on the
    ``group/sheet`` job id.  Two registered sheets or two campaign groups
    whose names differ only in case therefore land in the *same* query
    bucket - their stored verdicts merge without any error.  The built-in
    :class:`~repro.core.suite.TestSuite` and
    :class:`~repro.analysis.faults.FaultCatalogue` already reject such
    duplicates at registration, so in practice this fires for duck-typed
    suite factories and for a fault model named ``"Baseline"``, which
    collides with the implicit healthy-ECU campaign group.
    """
    from ..analysis.campaign import BASELINE_GROUP

    for dut in context.duts:
        seen_sheets: dict[str, str] = {}
        for script in context.scripts(dut):
            key = script.name.strip().lower()
            other = seen_sheets.setdefault(key, script.name)
            if other == script.name:
                continue
            yield rule.finding(
                f"sheet:{script.name}",
                f"sheet name collides case-insensitively with sheet "
                f"{other!r}; the result store matches names "
                f"case-insensitively, so their stored verdict rows merge "
                f"silently",
                hint="rename one of the sheets so the names differ by more "
                     "than case",
                dut=dut.name,
            )
        catalogue = context.catalogue(dut)
        if catalogue is None:
            continue
        groups: dict[str, str] = {BASELINE_GROUP.lower(): BASELINE_GROUP}
        for fault in catalogue:
            key = fault.name.strip().lower()
            other = groups.setdefault(key, fault.name)
            if other == fault.name:
                continue
            if other == BASELINE_GROUP:
                message = (
                    f"fault-model name collides case-insensitively with the "
                    f"implicit {BASELINE_GROUP!r} campaign group; its stored "
                    f"rows merge with the healthy-ECU baseline in store "
                    f"queries and run diffs"
                )
                hint = "rename the fault model (the baseline group name " \
                       "is reserved)"
            else:
                message = (
                    f"fault-model name collides case-insensitively with "
                    f"fault {other!r}; the result store matches group names "
                    f"case-insensitively, so their stored verdict rows "
                    f"merge silently"
                )
                hint = "rename one of the fault models so the names " \
                       "differ by more than case"
            yield rule.finding(
                f"fault:{fault.name}", message, hint=hint, dut=dut.name,
            )


# ---------------------------------------------------------------------------
# X-UNCOMPILABLE-SCRIPT
# ---------------------------------------------------------------------------

def check_uncompilable_script(context: LintContext, rule: LintRule):
    """(sheet x stand) pairs the bytecode VM cannot compile.

    Compiles every registered combination pre-flight exactly the way the
    plan cache would on first run.  A combination whose plan carries no
    ``program`` silently takes the classic interpreter on every run - the
    campaign still produces correct verdicts, but the ``--vm`` speedup the
    operator asked for never materialises.  Only pairs the stand can
    actually serve are judged: a stand missing the sheet's methods is
    R-UNSERVABLE-STEP territory, not a VM gap.
    """
    for dut in context.duts:
        try:
            signals = dut.signals_factory()
        except Exception:
            continue
        for script in context.scripts(dut):
            methods = script.methods_used()
            for target in context.eligible_stands(dut):
                if target.missing_methods(methods):
                    continue
                instance = context.stand_instance(target, dut)
                if instance is None:
                    continue
                try:
                    plan = compile_plan(
                        script, signals, instance,
                        policy="first_fit", registry=context.registry,
                        variables=context.stand_variables(instance),
                    )
                except Exception as exc:
                    reason = f"plan compilation raised {exc!r}"
                else:
                    if plan.program is not None:
                        continue
                    if any(entry.kind == "fail" for entry in plan.entries):
                        # The combination errors identically on the classic
                        # path - that is R-UNSERVABLE-STEP territory, not a
                        # VM expressibility gap.
                        continue
                    reason = plan.vm_reason or "no reason recorded"
                yield rule.finding(
                    f"sheet:{script.name} stand:{target.name}",
                    f"the bytecode VM cannot compile this sheet for stand "
                    f"{target.name!r} ({reason}); every run of the "
                    f"combination degrades to the classic interpreter",
                    hint="rewrite the failing op in VM-expressible form "
                         "(numeric wait durations, resolvable signals) or "
                         "accept the classic-path cost with --no-vm",
                    dut=dut.name,
                )


# ---------------------------------------------------------------------------
# X-UNCLASSIFIED-RAISE
# ---------------------------------------------------------------------------

#: Exception names whose raise carries no retry classification: the
#: executor's :func:`~repro.core.errors.is_transient` retries anything it
#: does not recognise, so these retry even when the defect is permanent.
_UNCLASSIFIED_NAMES = ("Exception", "RuntimeError")


class _UnclassifiedRaiseVisitor(ast.NodeVisitor):
    """Find ``raise Exception(...)`` / ``raise RuntimeError(...)`` statements."""

    def __init__(self):
        self.raises: list[tuple[int, str]] = []

    def visit_Raise(self, node):
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Name) and target.id in _UNCLASSIFIED_NAMES:
            self.raises.append((node.lineno, target.id))
        self.generic_visit(node)


def unclassified_raises(source: str) -> tuple[tuple[int, str], ...]:
    """``(lineno, exception name)`` for unclassified raises in *source*.

    Exposed for test fixtures; the rule applies it to the ``_perform`` /
    ``_aperform`` cores of every instrument class found on a registered
    stand.
    """
    visitor = _UnclassifiedRaiseVisitor()
    visitor.visit(ast.parse(textwrap.dedent(source)))
    return tuple(visitor.raises)


def check_unclassified_raise(context: LintContext, rule: LintRule):
    """Instrument cores whose failures the retry classifier cannot read.

    Walks the instruments of every registered stand and AST-scans the
    ``_perform`` / ``_aperform`` methods each class defines itself.  A
    ``raise Exception(...)`` or ``raise RuntimeError(...)`` there is
    invisible to :func:`repro.core.errors.is_transient` - unknown types
    default to *transient*, so a permanent instrument defect gets retried
    with backoff on every job instead of failing fast.
    """
    seen: set[type] = set()
    for stand in context.stands:
        try:
            instance = stand.builder()
        except Exception:
            continue  # registration already reports broken builders
        for resource in instance.resources:
            cls = type(resource.instrument)
            if cls in seen:
                continue
            seen.add(cls)
            for method_name in ("_perform", "_aperform"):
                method = vars(cls).get(method_name)
                if method is None:
                    continue
                try:
                    source = inspect.getsource(method)
                except Exception:
                    continue
                for lineno, name in unclassified_raises(source):
                    yield rule.finding(
                        f"instrument:{cls.__name__}.{method_name} "
                        f"line:{lineno}",
                        f"instrument core raises bare {name}; the retry "
                        f"classifier treats unknown exception types as "
                        f"transient, so this failure is retried with "
                        f"backoff even when it is permanent",
                        hint="raise InstrumentIOError for transient I/O "
                             "faults, or a permanent classified error "
                             "(InstrumentError, ConfigurationError) for "
                             "real defects",
                    )


RULES = (
    LintRule(
        "X-UNPICKLABLE-FACTORY", ERROR,
        "a registered factory would break the process executor backend",
        check_unpicklable_factory,
    ),
    LintRule(
        "X-BLOCKING-EXECUTE-IN-ASYNC", WARNING,
        "a blocking execute() call is reachable from the async run path",
        check_blocking_execute,
    ),
    LintRule(
        "X-UNSTABLE-FINGERPRINT", WARNING,
        "rebuilding a stand or suite changes its plan-cache fingerprint",
        check_unstable_fingerprint,
    ),
    LintRule(
        "X-UNSTORABLE-RESULT", WARNING,
        "sheet or fault-group names collide case-insensitively and would "
        "merge rows in the result store",
        check_unstorable_result,
    ),
    LintRule(
        "X-UNCOMPILABLE-SCRIPT", WARNING,
        "the bytecode VM cannot compile a (sheet x stand) pair; its runs "
        "silently degrade to the classic interpreter",
        check_uncompilable_script,
    ),
    LintRule(
        "X-UNCLASSIFIED-RAISE", WARNING,
        "an instrument core raises bare Exception/RuntimeError, which the "
        "retry classifier must treat as transient",
        check_unclassified_raise,
    ),
)
