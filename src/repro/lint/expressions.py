"""Rule family E: expression and type checking of compiled limit parameters.

Every limit expression a sheet compiles into its script is parsed through
:func:`~repro.core.values.compile_expression` and checked against the
variable environments the registered stands actually provide - so an
unknown variable, an unparsable limit, an empty acceptance interval or a
status whose attribute contradicts its method all surface before any
hardware (or simulated hardware) runs.

The E-UNRESOLVED-SIGNAL rule re-derives, at lint time, exactly the
condition :func:`repro.targets.derive_signal_set` warns about at run time;
both share :func:`repro.targets.unresolved_signal_message` so the wording
has a single source of truth.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..core.script import SignalAction, TestScript
from ..core.values import compile_expression, format_number, parse_number
from ..methods.base import ParameterRole
from ..targets import unresolved_signal_message
from .context import LintContext
from .findings import ERROR, WARNING, LintFinding, LintRule

__all__ = ["RULES"]

#: Parameter roles whose values must be numbers or limit expressions.
#: PAYLOAD literals (``0001B``) are binary/hex spellings, not expressions.
_NUMERIC_ROLES = (
    ParameterRole.NOMINAL,
    ParameterRole.MINIMUM,
    ParameterRole.MAXIMUM,
    ParameterRole.DURATION,
    ParameterRole.AUXILIARY,
)


def _iter_actions(script: TestScript) -> Iterator[tuple[str, SignalAction]]:
    """Every action with its location label (``setup`` / ``step:N``)."""
    for action in script.setup:
        yield "setup", action
    for step in script.steps:
        for action in step.actions:
            yield f"step:{step.number}", action


def _constant_value(text: str | None) -> float | None:
    """Evaluate a parameter text statically, ``None`` when not constant."""
    if text is None:
        return None
    stripped = str(text).strip()
    if not stripped:
        return None
    try:
        return parse_number(stripped)
    except Exception:
        pass
    try:
        expression = compile_expression(stripped)
    except Exception:
        return None
    if not expression.is_constant:
        return None
    try:
        return expression.evaluate({})
    except Exception:
        return None


def check_bad_expression(context: LintContext, rule: LintRule):
    """Numeric-role parameters that are neither numbers nor expressions."""
    for dut in context.duts:
        for script in context.scripts(dut):
            for label, action in _iter_actions(script):
                if action.method not in context.registry:
                    continue
                spec = context.registry.get(action.method)
                for name, raw in action.call.params.items():
                    try:
                        parameter = spec.parameter(name)
                    except Exception:
                        continue
                    if parameter.role not in _NUMERIC_ROLES:
                        continue
                    text = str(raw).strip()
                    if not text:
                        continue
                    try:
                        parse_number(text)
                        continue
                    except Exception:
                        pass
                    try:
                        compile_expression(text)
                    except Exception:
                        yield rule.finding(
                            f"sheet:{script.name} {label} "
                            f"{action.signal}.{action.method}",
                            f"parameter {name!r} value {text!r} is neither a "
                            f"number nor a valid limit expression",
                            hint="use a number, INF, or an expression over "
                                 "stand variables like (0.7*ubatt)",
                            dut=dut.name,
                        )


def check_unknown_variable(context: LintContext, rule: LintRule):
    """Script variables no eligible stand's environment provides."""
    for dut in context.duts:
        environments: list[tuple[str, set[str]]] = []
        for stand in context.eligible_stands(dut):
            instance = context.stand_instance(stand, dut)
            if instance is None:
                continue
            environments.append(
                (stand.name, set(context.stand_variables(instance)))
            )
        if not environments:
            continue  # nothing to check against; R rules report the gap
        checked = ", ".join(name for name, _ in environments)
        for script in context.scripts(dut):
            for variable in script.variables:
                if any(variable in env for _, env in environments):
                    continue
                yield rule.finding(
                    f"sheet:{script.name}",
                    f"limit expressions reference variable {variable!r}, "
                    f"which no registered stand provides (checked: {checked})",
                    hint="fix the status table's variable column or declare "
                         "the variable on a stand",
                    dut=dut.name,
                )


def check_empty_interval(context: LintContext, rule: LintRule):
    """Acceptance intervals that are empty as written (min > max).

    Checked both at the status-table level and on the compiled constant
    parameters - :func:`repro.methods.base.limits_from_params` silently
    swaps inverted run-time bounds, so without this rule the authoring
    error would never surface.
    """
    for dut in context.duts:
        seen: set[tuple] = set()
        suite = context.suite(dut)
        if suite is not None:
            for name in suite.statuses_used():
                try:
                    status = suite.statuses.get(name)
                except Exception:
                    continue
                if (status.minimum is None or status.maximum is None
                        or not status.minimum > status.maximum):
                    continue
                key = (status.attribute.lower(), status.minimum, status.maximum)
                seen.add(key)
                yield rule.finding(
                    f"status:{status.name}",
                    f"acceptance interval is empty: minimum "
                    f"{format_number(status.minimum)} exceeds maximum "
                    f"{format_number(status.maximum)}; the run-time "
                    f"normalisation would silently swap the bounds",
                    hint="swap the min/max columns of the status table",
                    dut=dut.name,
                )
        for script in context.scripts(dut):
            for label, action in _iter_actions(script):
                if action.method not in context.registry:
                    continue
                attribute = context.registry.get(action.method).attribute
                if not attribute:
                    continue
                low = _constant_value(action.call.param(f"{attribute}_min"))
                high = _constant_value(action.call.param(f"{attribute}_max"))
                if low is None or high is None or not low > high:
                    continue
                key = (attribute.lower(), low, high)
                if key in seen:
                    continue  # already reported at the status level
                seen.add(key)
                yield rule.finding(
                    f"sheet:{script.name} {label} "
                    f"{action.signal}.{action.method}",
                    f"compiled acceptance interval is empty: "
                    f"{attribute}_min={format_number(low)} exceeds "
                    f"{attribute}_max={format_number(high)}",
                    hint="swap the limits in the sheet or XML",
                    dut=dut.name,
                )


def check_unit_mismatch(context: LintContext, rule: LintRule):
    """Statuses whose declared attribute contradicts their method's."""
    for dut in context.duts:
        suite = context.suite(dut)
        if suite is None:
            continue
        for name in suite.statuses_used():
            try:
                status = suite.statuses.get(name)
            except Exception:
                continue
            if status.method not in context.registry:
                continue
            spec = context.registry.get(status.method)
            if (not status.attribute or not spec.attribute
                    or status.attribute.lower() == spec.attribute.lower()):
                continue
            yield rule.finding(
                f"status:{status.name}",
                f"status declares attribute {status.attribute!r} but its "
                f"method {spec.name!r} measures/applies {spec.attribute!r} - "
                f"the limits compare against a different quantity than the "
                f"sheet suggests",
                hint="align the status table's attribute column with the "
                     "bound method",
                dut=dut.name,
            )


def check_unresolved_signal(context: LintContext, rule: LintRule):
    """Signals that resolve to neither a DUT pin nor a CAN message.

    Same condition :func:`repro.targets.derive_signal_set` reports at run
    time, applied to the registered signal set (declared pins must exist on
    the ECU model, declared bus messages in the harness database) and to
    script signals the registered set does not cover.
    """
    for dut in context.duts:
        harness = context.harness(dut)
        if harness is None:
            continue
        ecu = harness.ecu
        try:
            registered = dut.signals_factory()
        except Exception:
            registered = None

        def resolves_by_name(name: str) -> bool:
            if ecu.has_pin(name):
                return True
            if harness.can_db is None:
                return False
            try:
                harness.can_db.message_for_signal(name)
                return True
            except Exception:
                return False

        if registered is not None:
            for signal in registered:
                problem = None
                if signal.pins:
                    unknown = [p for p in signal.pins if not ecu.has_pin(p)]
                    if unknown:
                        problem = f"unknown pin(s): {', '.join(unknown)}"
                elif signal.is_bus:
                    if harness.can_db is None:
                        problem = "the harness has no CAN database"
                    else:
                        try:
                            harness.can_db.message(signal.message)
                        except Exception:
                            problem = f"unknown CAN message {signal.message!r}"
                if problem is None:
                    continue
                yield rule.finding(
                    f"signal:{signal.name}",
                    unresolved_signal_message(
                        signal.name, "the registered signal set", ecu.name)
                    + f" ({problem}); executing any sheet that touches it "
                    f"yields ERROR verdicts",
                    hint="fix the signal definition sheet or the ECU model's "
                         "pin table",
                    dut=dut.name,
                )
        for script in context.scripts(dut):
            for name in script.signals_used():
                if registered is not None and name in registered:
                    continue
                if resolves_by_name(name):
                    continue
                yield rule.finding(
                    f"sheet:{script.name} signal:{name}",
                    unresolved_signal_message(
                        name, f"script {script.name!r}", ecu.name)
                    + "; it would be dropped from the derived signal set "
                    "and its actions error at run time",
                    hint="add the signal to the signal definition sheet or "
                         "rename it after a DUT pin / CAN signal",
                    dut=dut.name,
                )


RULES = (
    LintRule(
        "E-BAD-EXPRESSION", ERROR,
        "a numeric parameter is neither a number nor a valid limit expression",
        check_bad_expression,
    ),
    LintRule(
        "E-UNKNOWN-VARIABLE", ERROR,
        "a limit expression references a variable no registered stand provides",
        check_unknown_variable,
    ),
    LintRule(
        "E-EMPTY-INTERVAL", ERROR,
        "an acceptance interval is empty as written (min > max)",
        check_empty_interval,
    ),
    LintRule(
        "E-UNIT-MISMATCH", WARNING,
        "a status declares a different attribute than its method measures",
        check_unit_mismatch,
    ),
    LintRule(
        "E-UNRESOLVED-SIGNAL", WARNING,
        "a signal resolves to neither a DUT pin nor a CAN message",
        check_unresolved_signal,
    ),
)
