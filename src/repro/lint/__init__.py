"""repro.lint: whole-program static analysis of the registered targets.

The analyzer walks every registered DUT, stand, suite, sheet and fault
catalogue **without executing a single job** and emits structured
:class:`~repro.lint.findings.LintFinding` diagnostics across four rule
families:

* **E** - expression/type checking of compiled limit parameters
  (:mod:`repro.lint.expressions`);
* **R** - reachability and dead-step analysis against the stands'
  allocation model (:mod:`repro.lint.reachability`);
* **C** - detection-coverage proof over the fault catalogues
  (:mod:`repro.lint.coverage`);
* **X** - executor-safety contracts: pickling, async run path, plan-cache
  fingerprint stability (:mod:`repro.lint.executor_safety`).

Every rule is documented in ``docs/lint-rules.md``.  Front ends: the
``repro-lint`` console script (:mod:`repro.lint.cli`), the
``preflight="lint"`` mode of :func:`repro.targets.run_single` /
:func:`repro.targets.build_campaign` (via :func:`preflight_lint`) and the
``--lint`` flag of ``repro-campaign --list-targets``.
"""

from .context import LintContext
from .engine import (
    ALL_RULES,
    LintError,
    LintReport,
    preflight_lint,
    preflight_lint_composition,
    rules_by_id,
    run_lint,
    select_rules,
)
from .executor_safety import blocking_execute_calls
from .findings import (
    ERROR,
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    NOTE,
    SEVERITIES,
    WARNING,
    LintFinding,
    LintRule,
    exit_code_for,
    sort_findings,
)

__all__ = [
    "ALL_RULES",
    "ERROR",
    "EXIT_CLEAN",
    "EXIT_ERRORS",
    "EXIT_WARNINGS",
    "LintContext",
    "LintError",
    "LintFinding",
    "LintReport",
    "LintRule",
    "NOTE",
    "SEVERITIES",
    "WARNING",
    "blocking_execute_calls",
    "exit_code_for",
    "preflight_lint",
    "preflight_lint_composition",
    "rules_by_id",
    "run_lint",
    "select_rules",
    "sort_findings",
]
