"""Shared, memoised view of the registry for the lint rules.

Every rule needs some subset of the same expensive artefacts: the bundled
suite of a DUT, its compiled scripts, a built instance of every stand, the
variable environment a stand provides.  :class:`LintContext` builds each of
those at most once per lint run and hands the rules a consistent snapshot -
nothing here executes a script or touches an instrument beyond building the
stand object itself (the same probe :class:`~repro.targets.StandTarget`
performs at registration time).

Factory failures are recorded as ``None`` instead of raising: a broken
factory must surface as lint findings from the rules that need the
artefact, not abort the whole analysis.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..core.compiler import Compiler
from ..core.script import TestScript
from ..core.testdef import TestSuite
from ..methods import MethodRegistry, default_registry
from ..targets import (
    CompositionMember,
    CompositionTarget,
    DutTarget,
    StandTarget,
    get_composition,
    get_dut,
    iter_compositions,
    iter_duts,
    iter_stands,
)
from ..teststand.stands import TestStand

__all__ = ["LintContext"]

_UNSET = object()


class LintContext:
    """One lint run's memoised view of the registered targets."""

    def __init__(
        self,
        duts: Iterable[DutTarget | str] | None = None,
        stands: Iterable[StandTarget] | None = None,
        *,
        registry: MethodRegistry | None = None,
        compositions: Iterable[CompositionTarget | str] | None = None,
    ):
        if duts is None:
            self.duts: tuple[DutTarget, ...] = iter_duts()
        else:
            self.duts = tuple(
                get_dut(d) if isinstance(d, str) else d for d in duts
            )
        # A whole-registry run (duts=None) lints every registered
        # composition too; an explicit DUT selection lints only those DUTs
        # unless compositions are selected explicitly as well.
        if compositions is None:
            self.compositions: tuple[CompositionTarget, ...] = (
                iter_compositions() if duts is None else ()
            )
        else:
            self.compositions = tuple(
                get_composition(c) if isinstance(c, str) else c
                for c in compositions
            )
        self.stands: tuple[StandTarget, ...] = (
            iter_stands() if stands is None else tuple(stands)
        )
        self.registry = registry if registry is not None else default_registry()
        self._memo: dict[tuple, object] = {}

    # -- generic memoisation -------------------------------------------------

    def memo(self, key: tuple, compute: Callable[[], object]) -> object:
        """Compute-once storage rules share (e.g. the reachability walk)."""
        value = self._memo.get(key, _UNSET)
        if value is _UNSET:
            value = compute()
            self._memo[key] = value
        return value

    # -- per-DUT artefacts ---------------------------------------------------

    def suite(self, dut: DutTarget) -> TestSuite | None:
        """The DUT's bundled suite, or ``None`` (not bundled / factory failed)."""
        def build():
            if dut.suite_factory is None:
                return None
            try:
                return dut.suite_factory()
            except Exception:
                return None
        return self.memo(("suite", dut.key), build)

    def scripts(self, dut: DutTarget) -> tuple[TestScript, ...]:
        """The compiled scripts of the DUT's bundled suite (empty on failure)."""
        def build():
            suite = self.suite(dut)
            if suite is None:
                return ()
            try:
                return tuple(
                    Compiler(registry=self.registry).compile_suite(suite)
                )
            except Exception:
                return ()
        return self.memo(("scripts", dut.key), build)

    def harness(self, dut: DutTarget):
        """A built healthy harness (ECU + wiring), or ``None`` on failure."""
        def build():
            try:
                return dut.build_harness()
            except Exception:
                return None
        return self.memo(("harness", dut.key), build)

    def catalogue(self, dut: DutTarget):
        """The DUT's fault catalogue, or ``None`` (not bundled / failed)."""
        def build():
            if dut.faults_factory is None:
                return None
            try:
                return dut.faults_factory()
            except Exception:
                return None
        return self.memo(("catalogue", dut.key), build)

    # -- per-composition artefacts -------------------------------------------

    def composition_suite(self, comp: CompositionTarget) -> TestSuite | None:
        """The composition's interaction suite, or ``None`` on failure."""
        def build():
            try:
                return comp.suite_factory()
            except Exception:
                return None
        return self.memo(("comp_suite", comp.key), build)

    def composition_members(
        self, comp: CompositionTarget
    ) -> tuple[tuple[CompositionMember, DutTarget | None], ...]:
        """(member, registered DUT target) pairs; ``None`` for unknown DUTs."""
        def build():
            pairs = []
            for member in comp.members:
                try:
                    pairs.append((member, get_dut(member.dut)))
                except Exception:
                    pairs.append((member, None))
            return tuple(pairs)
        return self.memo(("comp_members", comp.key), build)

    # -- stands --------------------------------------------------------------

    def eligible_stands(self, dut: DutTarget) -> tuple[StandTarget, ...]:
        """Stands that can physically carry the DUT (adapter pinning)."""
        return tuple(
            stand for stand in self.stands
            if dut.pins is None or stand.adaptable
        )

    def stand_instance(self, stand: StandTarget,
                       dut: DutTarget) -> TestStand | None:
        """A built stand wired to the DUT's pins, or ``None`` on failure."""
        def build():
            try:
                return stand.factory_for(dut.pins)()
            except Exception:
                return None
        return self.memo(("stand", stand.key, dut.pins), build)

    def stand_variables(self, stand: TestStand) -> dict[str, float]:
        """The variable environment the interpreter would hand the scripts.

        Mirrors ``TestStandInterpreter._variables``: the harness always
        provides ``ubatt`` and the clock ``t``, the stand adds its own
        variables and pins ``ubatt`` to its supply voltage.  ``t`` starts
        at 0 - fine for satisfiability checks, which only need *a* value.
        """
        variables: dict[str, float] = {"ubatt": 12.0, "t": 0.0}
        variables.update({
            str(k).lower(): float(v) for k, v in stand.variables.items()
        })
        variables["ubatt"] = float(stand.supply_voltage)
        return variables

    # -- method vocabulary ---------------------------------------------------

    def is_measurement(self, method: str) -> bool:
        """Registry verdict with the interpreter's ``get_*`` fallback."""
        if method in self.registry:
            return self.registry.get(method).is_measurement
        return str(method).lower().startswith("get")
