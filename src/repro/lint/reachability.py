"""Rule family R: reachability and dead-step analysis.

These rules replay the exact allocation walk that
:func:`repro.teststand.plan.compile_plan` performs - setup actions first,
then per step stimuli before expectations, open circuits released instead
of allocated - against a *simulated* allocator for every stand that could
physically carry the DUT.  An action that no registered stand can serve is
statically unsatisfiable: it will produce an ERROR verdict on every run
that will ever happen, and under ``stop_on_error`` it shadows every later
step of the sheet.

Nothing here executes a job; the allocator is the same pure capability
model the plan compiler uses.
"""

from __future__ import annotations

import math

from ..core.errors import AllocationError
from ..core.script import TestScript
from ..core.values import compile_expression, parse_number
from ..teststand.allocator import Allocator
from ..teststand.plan import action_is_measurement, open_circuit_requested
from .context import LintContext
from .findings import ERROR, WARNING, LintRule

__all__ = ["RULES"]


class _ActionFailure:
    """One action that failed allocation on one candidate stand."""

    __slots__ = ("label", "step_number", "signal", "method", "reason")

    def __init__(self, label, step_number, signal, method, reason):
        self.label = label
        self.step_number = step_number
        self.signal = signal
        self.method = method
        self.reason = reason

    @property
    def key(self) -> tuple:
        """Identity of the action irrespective of the stand it failed on."""
        return (self.label, self.signal, self.method)


def _walk_stand(script: TestScript, signals, stand, registry, variables):
    """Replay the plan compiler's allocation walk on one stand.

    Returns the list of :class:`_ActionFailure` for actions the stand's
    allocator rejects.  Mirrors :func:`repro.teststand.plan.compile_plan`
    action for action: unknown signals and ``wait`` are skipped, open
    circuits release the signal's allocation instead of requesting one.
    *variables* is the interpreter environment the stand would provide
    (see :meth:`~repro.lint.context.LintContext.stand_variables`).
    """
    allocator = Allocator(
        stand.resources, stand.connections,
        policy="first_fit", registry=registry,
    )
    failures: list[_ActionFailure] = []

    def visit(label: str, step_number: int | None, action) -> None:
        try:
            signal = signals.get(action.signal)
        except Exception:
            return  # E-UNRESOLVED-SIGNAL reports this
        if action.method.lower() == "wait":
            return
        if open_circuit_requested(action, signal, variables):
            allocator.release(signal.key)
            return
        try:
            allocator.allocate(signal, action.call, variables)
        except AllocationError as exc:
            failures.append(_ActionFailure(
                label, step_number, signal.key, action.method.lower(),
                str(exc),
            ))

    for action in script.setup:
        visit("setup", None, action)
    for step in script.steps:
        expectations = []
        for action in step.actions:
            if action_is_measurement(registry, action.method):
                expectations.append(action)
            else:
                visit(f"step:{step.number}", step.number, action)
        for action in expectations:
            visit(f"step:{step.number}", step.number, action)
    return failures


def _reachability(context: LintContext, dut):
    """Shared analysis: per-script unservable actions across all stands.

    Returns ``{script.name: (uncovered, common_failures)}`` where
    *uncovered* is the list of stand names that lacked required methods
    (empty when at least one stand covers the script) and
    *common_failures* maps action keys to the :class:`_ActionFailure`
    observed on the *first* usable stand, for actions that failed on
    **every** usable stand.
    """
    def build():
        results = {}
        for script in context.scripts(dut):
            try:
                signals = dut.signals_factory()
            except Exception:
                results[script.name] = ([], {})
                continue
            methods = script.methods_used()
            candidates = []
            rejected = []
            for target in context.eligible_stands(dut):
                if target.missing_methods(methods):
                    rejected.append(target.name)
                    continue
                instance = context.stand_instance(target, dut)
                if instance is None:
                    continue
                candidates.append((target.name, instance))
            if not candidates:
                results[script.name] = (rejected, {})
                continue
            common: dict[tuple, _ActionFailure] = {}
            for index, (_, instance) in enumerate(candidates):
                failures = _walk_stand(
                    script, signals, instance, context.registry,
                    context.stand_variables(instance))
                found = {failure.key: failure for failure in failures}
                if index == 0:
                    common = found
                else:
                    common = {
                        key: failure for key, failure in common.items()
                        if key in found
                    }
                if not common:
                    break
            results[script.name] = ([], common)
        return results
    return context.memo(("reachability", dut.key), build)


def check_unservable_step(context: LintContext, rule: LintRule):
    """Actions no registered stand can ever serve."""
    for dut in context.duts:
        analysis = _reachability(context, dut)
        for script in context.scripts(dut):
            rejected, common = analysis.get(script.name, ([], {}))
            if rejected:
                yield rule.finding(
                    f"sheet:{script.name}",
                    f"no registered stand covers the sheet's methods "
                    f"({', '.join(script.methods_used())}); every eligible "
                    f"stand rejected it: {', '.join(rejected)}",
                    hint="add the missing method's instrument to a stand or "
                         "bind the statuses to supported methods",
                    dut=dut.name,
                )
                continue
            for failure in common.values():
                stands = ", ".join(
                    target.name for target in context.eligible_stands(dut)
                )
                yield rule.finding(
                    f"sheet:{script.name} {failure.label} "
                    f"{failure.signal}.{failure.method}",
                    f"statically unsatisfiable on every registered stand "
                    f"({stands}): {failure.reason}",
                    hint="widen the stand's resource capability or relax "
                         "the sheet's limits",
                    dut=dut.name,
                )


def check_dead_step(context: LintContext, rule: LintRule):
    """Steps shadowed by an earlier always-failing step.

    Under ``stop_on_error`` the interpreter aborts the run at the first
    ERROR verdict, so every step after an R-UNSERVABLE-STEP action never
    executes on any stand - the sheet's tail is dead as written.
    """
    for dut in context.duts:
        analysis = _reachability(context, dut)
        for script in context.scripts(dut):
            rejected, common = analysis.get(script.name, ([], {}))
            if rejected or not common:
                continue
            numbered = [
                failure.step_number for failure in common.values()
                if failure.step_number is not None
            ]
            if numbered:
                first = min(numbered)
                dead = [
                    step.number for step in script.steps
                    if step.number > first
                ]
                origin = f"step {first}"
            else:
                # a setup action fails: the whole sheet body is dead
                dead = [step.number for step in script.steps]
                origin = "the setup phase"
            if not dead:
                continue
            listed = ", ".join(str(number) for number in dead)
            yield rule.finding(
                f"sheet:{script.name}",
                f"step(s) {listed} are dead under stop_on_error: {origin} "
                f"fails allocation on every registered stand, so execution "
                f"never reaches them",
                hint="fix the unservable action first; the shadowed steps "
                     "are untested until then",
                dut=dut.name,
            )


def _constant(text) -> float | None:
    if text is None:
        return None
    stripped = str(text).strip()
    if not stripped:
        return None
    try:
        return parse_number(stripped)
    except Exception:
        pass
    try:
        expression = compile_expression(stripped)
        if expression.is_constant:
            return expression.evaluate({})
    except Exception:
        pass
    return None


def check_unreachable_open(context: LintContext, rule: LintRule):
    """Open-circuit requests that can never take the open-circuit branch.

    ``put_r r="INF"`` only becomes a physical disconnect when the
    acceptance window is unbounded above (see
    :func:`repro.teststand.plan.open_circuit_requested`).  A finite
    ``r_max`` next to an infinite request means the author wrote an open
    circuit but the interpreter will route it to the allocator - where an
    infinite resistance can never pass a finite capability window.
    """
    for dut in context.duts:
        try:
            signals = dut.signals_factory()
        except Exception:
            continue
        for script in context.scripts(dut):
            for label, action in _iter_labelled(script):
                if action.method.lower() != "put_r":
                    continue
                try:
                    signal = signals.get(action.signal)
                except Exception:
                    continue
                if signal.is_bus:
                    continue
                requested = _constant(action.call.param("r"))
                if requested is None or not math.isinf(requested):
                    continue
                high = _constant(action.call.param("r_max"))
                if high is None or math.isinf(high):
                    continue
                yield rule.finding(
                    f"sheet:{script.name} {label} "
                    f"{action.signal}.{action.method}",
                    f"open-circuit branch is unreachable: r=INF is "
                    f"requested but r_max is finite, so the action goes to "
                    f"the allocator instead of disconnecting the pin",
                    hint="drop r_max (or set it to INF) to realise the "
                         "open circuit",
                    dut=dut.name,
                )


def _iter_labelled(script: TestScript):
    for action in script.setup:
        yield "setup", action
    for step in script.steps:
        for action in step.actions:
            yield f"step:{step.number}", action


RULES = (
    LintRule(
        "R-UNSERVABLE-STEP", ERROR,
        "an action is statically unsatisfiable on every registered stand",
        check_unservable_step,
    ),
    LintRule(
        "R-DEAD-STEP", WARNING,
        "steps are shadowed by an earlier always-failing step",
        check_dead_step,
    ),
    LintRule(
        "R-UNREACHABLE-OPEN", WARNING,
        "an open-circuit request can never take the open-circuit branch",
        check_unreachable_open,
    ),
)
