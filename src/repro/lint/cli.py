"""``repro-lint``: the static analyzer's command line front end.

Exit codes: 0 clean (notes allowed), 1 warnings, 2 errors (or a broken
invocation).  ``--format json`` emits one machine-readable document, the
shape CI consumes.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..targets import TargetError
from .engine import ALL_RULES, run_lint
from .findings import EXIT_ERRORS

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Statically analyse the registered DUTs, stands, suites, sheets "
            "and fault catalogues without executing a single job."
        ),
    )
    parser.add_argument(
        "--dut", action="append", metavar="NAME",
        help="limit the analysis to this DUT (repeatable; default: all)",
    )
    parser.add_argument(
        "--composition", action="append", metavar="NAME",
        help="limit the family-M analysis to this composition (repeatable; "
             "default: all on a whole-registry run, none with --dut)",
    )
    parser.add_argument(
        "--rule", action="append", metavar="ID",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="ID",
        help="skip this rule id (repeatable)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list all rule ids with severity and summary, then exit",
    )
    return parser


def _list_rules() -> int:
    for rule in ALL_RULES:
        print(f"{rule.severity.upper():<7} {rule.id:<26} {rule.summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the exit code (also usable programmatically)."""
    options = _build_parser().parse_args(argv)
    if options.list_rules:
        return _list_rules()
    try:
        report = run_lint(
            duts=options.dut,
            rules=options.rule,
            ignore=options.ignore,
            compositions=options.composition,
        )
    except TargetError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_ERRORS
    if options.format == "json":
        print(json.dumps(report.as_json_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        print(report.summary())
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
