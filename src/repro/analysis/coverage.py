"""Coverage analysis of test suites.

The paper's motivation is that written requirements are "normally
incomplete" and that test knowledge gets lost between projects.  A first,
cheap counter-measure is to measure what a suite actually exercises:

* which signals are stimulated / checked at all,
* which statuses of the shared vocabulary are used,
* how often every (signal, status) pair occurs,
* which requirements (when the sheets carry requirement ids) are touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.testdef import TestSuite

__all__ = ["CoverageReport", "compute_coverage"]


@dataclass(frozen=True)
class CoverageReport:
    """Result of :func:`compute_coverage`."""

    dut: str
    signal_stimulated: Mapping[str, int]
    signal_checked: Mapping[str, int]
    status_usage: Mapping[str, int]
    pair_usage: Mapping[tuple[str, str], int]
    requirements: Mapping[str, int]
    unused_statuses: tuple[str, ...]
    unstimulated_inputs: tuple[str, ...]
    unchecked_outputs: tuple[str, ...]

    @property
    def signal_coverage(self) -> float:
        """Fraction of signals touched (stimulated or checked) at least once."""
        total = len(self.signal_stimulated) + len(self.signal_checked)
        if total == 0:
            return 1.0
        touched = sum(1 for count in self.signal_stimulated.values() if count > 0)
        touched += sum(1 for count in self.signal_checked.values() if count > 0)
        return touched / total

    @property
    def status_coverage(self) -> float:
        """Fraction of defined statuses that are used at least once."""
        if not self.status_usage:
            return 1.0
        used = sum(1 for count in self.status_usage.values() if count > 0)
        return used / len(self.status_usage)

    def summary(self) -> str:
        """Short human-readable summary."""
        return (
            f"coverage of {self.dut}: "
            f"{self.signal_coverage:.0%} signals, {self.status_coverage:.0%} statuses, "
            f"{len(self.unstimulated_inputs)} inputs never stimulated, "
            f"{len(self.unchecked_outputs)} outputs never checked, "
            f"{len(self.requirements)} requirements referenced"
        )


def compute_coverage(suite: TestSuite) -> CoverageReport:
    """Compute signal / status / requirement coverage of *suite*."""
    stimulated = {signal.name: 0 for signal in suite.signals.inputs}
    checked = {signal.name: 0 for signal in suite.signals.outputs}
    status_usage = {definition.name: 0 for definition in suite.statuses}
    pair_usage: dict[tuple[str, str], int] = {}
    requirements: dict[str, int] = {}

    for test in suite:
        if test.requirement:
            requirements[test.requirement] = requirements.get(test.requirement, 0)
        for step in test:
            if step.requirement:
                requirements[step.requirement] = requirements.get(step.requirement, 0) + 1
            elif test.requirement:
                requirements[test.requirement] = requirements.get(test.requirement, 0) + 1
            for assignment in step.assignments:
                signal = suite.signals.get(assignment.signal)
                status = suite.statuses.get(assignment.status)
                if signal.is_input and signal.name in stimulated:
                    stimulated[signal.name] += 1
                if signal.is_output and signal.name in checked:
                    checked[signal.name] += 1
                status_usage[status.name] = status_usage.get(status.name, 0) + 1
                pair = (signal.name, status.name)
                pair_usage[pair] = pair_usage.get(pair, 0) + 1

    unused_statuses = tuple(name for name, count in status_usage.items() if count == 0)
    unstimulated = tuple(name for name, count in stimulated.items() if count == 0)
    unchecked = tuple(name for name, count in checked.items() if count == 0)

    return CoverageReport(
        dut=suite.dut,
        signal_stimulated=stimulated,
        signal_checked=checked,
        status_usage=status_usage,
        pair_usage=pair_usage,
        requirements=requirements,
        unused_statuses=unused_statuses,
        unstimulated_inputs=unstimulated,
        unchecked_outputs=unchecked,
    )
