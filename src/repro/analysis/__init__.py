"""Analysis extensions: coverage, traceability, reuse metrics, fault injection."""

from .campaign import CampaignResult, FaultCampaign, FaultRunOutcome
from .coverage import CoverageReport, compute_coverage
from .faults import (
    FaultCatalogue,
    FaultModel,
    central_locking_faults,
    exterior_light_faults,
    interior_light_faults,
    window_lifter_faults,
    wiper_faults,
)
from .reuse import ReuseReport, compare_suites, script_portability, vocabulary_reuse
from .traceability import (
    Requirement,
    RequirementCatalogue,
    TraceabilityReport,
    trace_requirements,
)

__all__ = [
    "CoverageReport",
    "compute_coverage",
    "Requirement",
    "RequirementCatalogue",
    "TraceabilityReport",
    "trace_requirements",
    "ReuseReport",
    "compare_suites",
    "vocabulary_reuse",
    "script_portability",
    "FaultModel",
    "FaultCatalogue",
    "interior_light_faults",
    "central_locking_faults",
    "wiper_faults",
    "window_lifter_faults",
    "exterior_light_faults",
    "FaultCampaign",
    "FaultRunOutcome",
    "CampaignResult",
]
