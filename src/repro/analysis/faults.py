"""Fault injection: seeded defects in the behavioural ECU models.

The paper motivates its method with "bugs, that have occurred in the past"
whose knowledge should be preserved in reusable test cases.  To evaluate how
well the paper's test sheet (and extended suites) actually detect such bugs,
this module provides *fault models*: factory-built variants of the ECU
models whose behaviour deviates in a specific, realistic way (a dead timer,
an inverted sensor polarity, an ignored door contact...).

A fault is *detected* by a test when at least one step of the test fails on
the faulty ECU while the same test passes on the healthy one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..core.errors import ReproError
from ..dut.base import EcuModel
from ..dut.central_locking import CentralLockingEcu
from ..dut.interior_light import InteriorLightEcu
from ..dut.pins import OutputDrive

__all__ = ["FaultModel", "FaultCatalogue", "interior_light_faults", "central_locking_faults"]


@dataclass(frozen=True)
class FaultModel:
    """One seeded defect: a name, a description and an ECU factory."""

    name: str
    description: str
    factory: Callable[[], EcuModel]
    expected_detected: bool = True

    def build(self) -> EcuModel:
        """Instantiate the faulty ECU."""
        ecu = self.factory()
        if not isinstance(ecu, EcuModel):
            raise ReproError(f"fault {self.name!r} factory did not return an EcuModel")
        return ecu

    def __str__(self) -> str:
        return self.name


class FaultCatalogue:
    """Ordered collection of fault models for one ECU type."""

    def __init__(self, ecu_name: str, faults: Iterable[FaultModel] = ()):
        self.ecu_name = ecu_name
        self._faults: dict[str, FaultModel] = {}
        for fault in faults:
            self.add(fault)

    def add(self, fault: FaultModel) -> None:
        if fault.name.lower() in self._faults:
            raise ReproError(f"duplicate fault model {fault.name!r}")
        self._faults[fault.name.lower()] = fault

    def get(self, name: str) -> FaultModel:
        try:
            return self._faults[str(name).lower()]
        except KeyError as exc:
            raise ReproError(f"unknown fault model {name!r}") from exc

    def __iter__(self) -> Iterator[FaultModel]:
        return iter(self._faults.values())

    def __len__(self) -> int:
        return len(self._faults)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(fault.name for fault in self._faults.values())


# ---------------------------------------------------------------------------
# Interior illumination ECU faults
# ---------------------------------------------------------------------------

class _IntLightLampStuckOff(InteriorLightEcu):
    """Output driver broken: the lamp can never be switched on."""

    def _apply_outputs(self) -> None:  # noqa: D102 - documented by class docstring
        self.drive_output("INT_ILL_F", OutputDrive.floating())
        self.drive_output("INT_ILL_R", OutputDrive.low_side(0.1))


class _IntLightLampStuckOn(InteriorLightEcu):
    """Output driver shorted: the lamp is always on."""

    def _apply_outputs(self) -> None:
        self.drive_output("INT_ILL_F", OutputDrive.high_side(self.DRIVER_RESISTANCE))
        self.drive_output("INT_ILL_R", OutputDrive.low_side(0.1))


class _IntLightTimerNeverExpires(InteriorLightEcu):
    """The 300 s switch-off timer never fires (timer service dead)."""

    TIMEOUT_S = math.inf


class _IntLightTimerTooShort(InteriorLightEcu):
    """The switch-off timer expires after 60 s instead of 300 s."""

    TIMEOUT_S = 60.0


class _IntLightTimerTooLong(InteriorLightEcu):
    """The switch-off timer expires only after 600 s (outside the spec)."""

    TIMEOUT_S = 600.0


class _IntLightInvertedNight(InteriorLightEcu):
    """The NIGHT bit is evaluated with inverted polarity."""

    @property
    def night(self) -> bool:
        return not super().night


class _IntLightIgnoresFrontRightDoor(InteriorLightEcu):
    """The front-right door contact is not evaluated (harness pin swapped)."""

    DOOR_PINS = ("DS_FL", "DS_RL", "DS_RR")


class _IntLightWorksInDaylight(InteriorLightEcu):
    """The illumination ignores the light sensor and also lights up by day."""

    @property
    def night(self) -> bool:
        return True


class _IntLightWrongDoorThreshold(InteriorLightEcu):
    """The door-contact threshold is far too low; real contacts are missed."""

    DOOR_CONTACT_THRESHOLD = 0.05


def interior_light_faults() -> FaultCatalogue:
    """The fault catalogue of the interior illumination ECU (campaign E3)."""
    return FaultCatalogue(
        InteriorLightEcu.NAME,
        (
            FaultModel("lamp_stuck_off", "output driver broken, lamp never lights",
                       _IntLightLampStuckOff),
            FaultModel("lamp_stuck_on", "output driver shorted, lamp always on",
                       _IntLightLampStuckOn),
            FaultModel("timer_never_expires", "300 s switch-off timer never fires",
                       _IntLightTimerNeverExpires),
            FaultModel("timer_too_short", "switch-off already after 60 s",
                       _IntLightTimerTooShort),
            FaultModel("timer_too_long", "switch-off only after 600 s",
                       _IntLightTimerTooLong),
            FaultModel("inverted_night", "NIGHT bit evaluated with wrong polarity",
                       _IntLightInvertedNight),
            # The paper's own ten-step sheet only exercises DS_FR by day, so
            # this defect slips through it; the extended suite
            # (repro.paper.extended) adds the night-time DS_FR test that
            # catches it - a concrete illustration of the paper's point that
            # preserved test knowledge must keep growing.
            FaultModel("ignores_ds_fr", "front-right door contact not evaluated",
                       _IntLightIgnoresFrontRightDoor, expected_detected=False),
            FaultModel("daylight_illumination", "illumination also lights up by day",
                       _IntLightWorksInDaylight),
            FaultModel("door_threshold_too_low", "door contact threshold far too low",
                       _IntLightWrongDoorThreshold),
        ),
    )


# ---------------------------------------------------------------------------
# Central locking ECU faults
# ---------------------------------------------------------------------------

class _LockIgnoresCanCommand(CentralLockingEcu):
    """CAN lock/unlock requests are ignored (gateway filter misconfigured)."""

    def _evaluate(self) -> None:
        self._rx_values.pop("lock_command", None)
        super()._evaluate()


class _LockNoAutoLock(CentralLockingEcu):
    """The speed-dependent auto lock never triggers."""

    AUTO_LOCK_SPEED = math.inf


class _LockUnlocksAtSpeed(CentralLockingEcu):
    """The unlock inhibition above 120 km/h is missing."""

    UNLOCK_INHIBIT_SPEED = math.inf


class _LockLedStuckOff(CentralLockingEcu):
    """The lock LED output is broken."""

    def _evaluate(self) -> None:
        super()._evaluate()
        self.drive_output("LOCK_LED", OutputDrive.floating())


def central_locking_faults() -> FaultCatalogue:
    """The fault catalogue of the central locking ECU."""
    return FaultCatalogue(
        CentralLockingEcu.NAME,
        (
            FaultModel("ignores_can_command", "CAN lock/unlock requests ignored",
                       _LockIgnoresCanCommand),
            FaultModel("no_auto_lock", "speed-dependent auto lock missing",
                       _LockNoAutoLock),
            # The bundled locking suite never requests an unlock above
            # 120 km/h, so the missing inhibition slips through - the same
            # knowledge gap the paper's ignores_ds_fr example illustrates:
            # a future sheet has to be added to catch it.
            FaultModel("unlocks_at_speed", "unlock inhibition at speed missing",
                       _LockUnlocksAtSpeed, expected_detected=False),
            FaultModel("led_stuck_off", "lock LED output broken",
                       _LockLedStuckOff),
        ),
    )
