"""Fault injection: seeded defects in the behavioural ECU models.

The paper motivates its method with "bugs, that have occurred in the past"
whose knowledge should be preserved in reusable test cases.  To evaluate how
well the paper's test sheet (and extended suites) actually detect such bugs,
this module provides *fault models*: factory-built variants of the ECU
models whose behaviour deviates in a specific, realistic way (a dead timer,
an inverted sensor polarity, an ignored door contact...).

A fault is *detected* by a test when at least one step of the test fails on
the faulty ECU while the same test passes on the healthy one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..core.errors import ReproError
from ..dut.base import EcuModel
from ..dut.central_locking import CentralLockingEcu
from ..dut.composition import EcuAssembly
from ..dut.exterior_light import ExteriorLightEcu
from ..dut.instrument_cluster import InstrumentClusterEcu
from ..dut.interior_light import InteriorLightEcu
from ..dut.pins import OutputDrive
from ..dut.window_lifter import WindowLifterEcu
from ..dut.wiper import WiperEcu

__all__ = [
    "FaultModel",
    "FaultCatalogue",
    "interior_light_faults",
    "central_locking_faults",
    "wiper_faults",
    "window_lifter_faults",
    "exterior_light_faults",
    "instrument_cluster_faults",
    "interaction_faults",
]


@dataclass(frozen=True)
class FaultModel:
    """One seeded defect: a name, a description and an ECU factory."""

    name: str
    description: str
    factory: Callable[[], EcuModel]
    expected_detected: bool = True

    def build(self) -> EcuModel:
        """Instantiate the faulty ECU (or, for composed faults, assembly)."""
        ecu = self.factory()
        if not isinstance(ecu, (EcuModel, EcuAssembly)):
            raise ReproError(
                f"fault {self.name!r} factory did not return an EcuModel "
                f"or EcuAssembly"
            )
        return ecu

    def __str__(self) -> str:
        return self.name


class FaultCatalogue:
    """Ordered collection of fault models for one ECU type."""

    def __init__(self, ecu_name: str, faults: Iterable[FaultModel] = ()):
        self.ecu_name = ecu_name
        self._faults: dict[str, FaultModel] = {}
        for fault in faults:
            self.add(fault)

    def add(self, fault: FaultModel) -> None:
        if fault.name.lower() in self._faults:
            raise ReproError(f"duplicate fault model {fault.name!r}")
        self._faults[fault.name.lower()] = fault

    def get(self, name: str) -> FaultModel:
        try:
            return self._faults[str(name).lower()]
        except KeyError as exc:
            raise ReproError(f"unknown fault model {name!r}") from exc

    def __iter__(self) -> Iterator[FaultModel]:
        return iter(self._faults.values())

    def __len__(self) -> int:
        return len(self._faults)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(fault.name for fault in self._faults.values())


# ---------------------------------------------------------------------------
# Interior illumination ECU faults
# ---------------------------------------------------------------------------

class _IntLightLampStuckOff(InteriorLightEcu):
    """Output driver broken: the lamp can never be switched on."""

    def _apply_outputs(self) -> None:  # noqa: D102 - documented by class docstring
        self.drive_output("INT_ILL_F", OutputDrive.floating())
        self.drive_output("INT_ILL_R", OutputDrive.low_side(0.1))


class _IntLightLampStuckOn(InteriorLightEcu):
    """Output driver shorted: the lamp is always on."""

    def _apply_outputs(self) -> None:
        self.drive_output("INT_ILL_F", OutputDrive.high_side(self.DRIVER_RESISTANCE))
        self.drive_output("INT_ILL_R", OutputDrive.low_side(0.1))


class _IntLightTimerNeverExpires(InteriorLightEcu):
    """The 300 s switch-off timer never fires (timer service dead)."""

    TIMEOUT_S = math.inf


class _IntLightTimerTooShort(InteriorLightEcu):
    """The switch-off timer expires after 60 s instead of 300 s."""

    TIMEOUT_S = 60.0


class _IntLightTimerTooLong(InteriorLightEcu):
    """The switch-off timer expires only after 600 s (outside the spec)."""

    TIMEOUT_S = 600.0


class _IntLightInvertedNight(InteriorLightEcu):
    """The NIGHT bit is evaluated with inverted polarity."""

    @property
    def night(self) -> bool:
        return not super().night


class _IntLightIgnoresFrontRightDoor(InteriorLightEcu):
    """The front-right door contact is not evaluated (harness pin swapped)."""

    DOOR_PINS = ("DS_FL", "DS_RL", "DS_RR")


class _IntLightWorksInDaylight(InteriorLightEcu):
    """The illumination ignores the light sensor and also lights up by day."""

    @property
    def night(self) -> bool:
        return True


class _IntLightWrongDoorThreshold(InteriorLightEcu):
    """The door-contact threshold is far too low; real contacts are missed."""

    DOOR_CONTACT_THRESHOLD = 0.05


def interior_light_faults() -> FaultCatalogue:
    """The fault catalogue of the interior illumination ECU (campaign E3)."""
    return FaultCatalogue(
        InteriorLightEcu.NAME,
        (
            FaultModel("lamp_stuck_off", "output driver broken, lamp never lights",
                       _IntLightLampStuckOff),
            FaultModel("lamp_stuck_on", "output driver shorted, lamp always on",
                       _IntLightLampStuckOn),
            FaultModel("timer_never_expires", "300 s switch-off timer never fires",
                       _IntLightTimerNeverExpires),
            FaultModel("timer_too_short", "switch-off already after 60 s",
                       _IntLightTimerTooShort),
            FaultModel("timer_too_long", "switch-off only after 600 s",
                       _IntLightTimerTooLong),
            FaultModel("inverted_night", "NIGHT bit evaluated with wrong polarity",
                       _IntLightInvertedNight),
            # This escape is a machine-derived fact: the static analyzer's
            # C-DOCUMENTED-ESCAPE rule (repro.lint) proves from the sheets
            # alone that the paper's ten-step sheet never isolates DS_FR
            # with a checked non-initial illumination, and that the
            # extended suite's all_doors_at_night sheet closes the gap.
            # tests/test_lint.py guards that this stays the registry's
            # sole detection escape.
            FaultModel("ignores_ds_fr", "front-right door contact not evaluated",
                       _IntLightIgnoresFrontRightDoor, expected_detected=False),
            FaultModel("daylight_illumination", "illumination also lights up by day",
                       _IntLightWorksInDaylight),
            FaultModel("door_threshold_too_low", "door contact threshold far too low",
                       _IntLightWrongDoorThreshold),
        ),
    )


# ---------------------------------------------------------------------------
# Central locking ECU faults
# ---------------------------------------------------------------------------

class _LockIgnoresCanCommand(CentralLockingEcu):
    """CAN lock/unlock requests are ignored (gateway filter misconfigured)."""

    def _evaluate(self) -> None:
        self._rx_values.pop("lock_command", None)
        super()._evaluate()


class _LockNoAutoLock(CentralLockingEcu):
    """The speed-dependent auto lock never triggers."""

    AUTO_LOCK_SPEED = math.inf


class _LockUnlocksAtSpeed(CentralLockingEcu):
    """The unlock inhibition above 120 km/h is missing."""

    UNLOCK_INHIBIT_SPEED = math.inf


class _LockLedStuckOff(CentralLockingEcu):
    """The lock LED output is broken."""

    def _evaluate(self) -> None:
        super()._evaluate()
        self.drive_output("LOCK_LED", OutputDrive.floating())


def central_locking_faults() -> FaultCatalogue:
    """The fault catalogue of the central locking ECU."""
    return FaultCatalogue(
        CentralLockingEcu.NAME,
        (
            FaultModel("ignores_can_command", "CAN lock/unlock requests ignored",
                       _LockIgnoresCanCommand),
            FaultModel("no_auto_lock", "speed-dependent auto lock missing",
                       _LockNoAutoLock),
            # Formerly a catalogued knowledge gap: the original two sheets
            # never requested an unlock above 120 km/h.  The
            # unlock_inhibit_at_speed sheet (repro.paper.extended) now asks
            # for exactly that at 130 km/h and expects the request to be
            # refused, so the missing inhibition is caught.
            FaultModel("unlocks_at_speed", "unlock inhibition at speed missing",
                       _LockUnlocksAtSpeed),
            FaultModel("led_stuck_off", "lock LED output broken",
                       _LockLedStuckOff),
        ),
    )


# ---------------------------------------------------------------------------
# Wiper ECU faults
# ---------------------------------------------------------------------------

class _WiperMotorStuckOff(WiperEcu):
    """The wiper motor driver is broken: the motor never turns."""

    def _apply_outputs(self) -> None:
        super()._apply_outputs()
        self.drive_output("WIPER_MOTOR", OutputDrive.floating())


class _WiperNoFastRelay(WiperEcu):
    """The fast-speed relay output is never asserted."""

    def _apply_outputs(self) -> None:
        super()._apply_outputs()
        self.drive_output("WIPER_FAST", OutputDrive.floating())


class _WiperFastRelayWeak(WiperEcu):
    """The relay driver has aged to a high on-resistance.

    The 200 Ohm relay coil barely loads the weak driver, so the voltage
    check still sees a value inside the ``Ho`` window - only the
    ``fast_relay_current`` ``get_i`` sheet catches this one.
    """

    def _apply_outputs(self) -> None:
        super()._apply_outputs()
        if self._mode == 3 and self.ignition_on:
            self.drive_output("WIPER_FAST", OutputDrive.high_side(50.0))


class _WiperIntervalTooShort(WiperEcu):
    """The interval pause is 2 s instead of 5 s."""

    INTERVAL_S = 2.0


class _WiperIntervalNeverRepeats(WiperEcu):
    """The interval timer service is dead: only the first wipe runs."""

    def _end_wipe(self) -> None:
        self._interval_wiping = False
        self._wipe_end_event = None
        self._apply_outputs()


class _WiperPumpStuckOn(WiperEcu):
    """The washer pump driver is shorted: the pump runs with the ignition."""

    def _apply_outputs(self) -> None:
        super()._apply_outputs()
        if self.ignition_on:
            self.drive_output("WASH_PUMP", OutputDrive.high_side(0.5))


class _WiperIgnoresWashSwitch(WiperEcu):
    """The resistive wash button threshold is far too low; presses are missed."""

    CONTACT_THRESHOLD = 0.05


class _WiperWipesWithoutIgnition(WiperEcu):
    """The ignition interlock is missing: the wiper runs with ignition off."""

    @property
    def ignition_on(self) -> bool:
        return True


def wiper_faults() -> FaultCatalogue:
    """The fault catalogue of the wiper ECU."""
    return FaultCatalogue(
        WiperEcu.NAME,
        (
            FaultModel("motor_stuck_off", "wiper motor driver broken",
                       _WiperMotorStuckOff),
            FaultModel("no_fast_relay", "fast-speed relay never asserted",
                       _WiperNoFastRelay),
            # Formerly a catalogued knowledge gap: the weak driver still
            # reaches the Ho *voltage* window into the light coil load.  The
            # fast_relay_current get_i sheet (repro.paper.family) measures
            # the coil current (0.004 vs. the healthy 0.005 x UBATT), which
            # the CoilCurrent window resolves.
            FaultModel("fast_relay_weak", "relay driver on-resistance aged",
                       _WiperFastRelayWeak),
            FaultModel("interval_too_short", "interval pause 2 s instead of 5 s",
                       _WiperIntervalTooShort),
            FaultModel("interval_never_repeats", "interval timer never re-arms",
                       _WiperIntervalNeverRepeats),
            FaultModel("pump_stuck_on", "washer pump runs with ignition",
                       _WiperPumpStuckOn),
            FaultModel("ignores_wash_switch", "wash button threshold far too low",
                       _WiperIgnoresWashSwitch),
            FaultModel("wipes_without_ignition", "ignition interlock missing",
                       _WiperWipesWithoutIgnition),
        ),
    )


# ---------------------------------------------------------------------------
# Window lifter ECU faults
# ---------------------------------------------------------------------------

class _WinMotorUpDead(WindowLifterEcu):
    """The closing-direction motor driver is broken."""

    def _evaluate(self) -> None:
        super()._evaluate()
        self.drive_output("WIN_MOTOR_UP", OutputDrive.floating())


class _WinSwappedMotorOutputs(WindowLifterEcu):
    """The two motor outputs are swapped in the harness connector."""

    _SWAP = {"win_motor_up": "win_motor_down", "win_motor_down": "win_motor_up"}

    def drive_output(self, pin: str, drive: OutputDrive) -> None:
        super().drive_output(self._SWAP.get(str(pin).lower(), pin), drive)


class _WinIgnoresInterlock(WindowLifterEcu):
    """The ignition interlock is missing: the window moves with ignition off."""

    @property
    def ignition_on(self) -> bool:
        return True


class _WinNoEndStopCut(WindowLifterEcu):
    """The end-stop detection is broken: the motor keeps driving at the stop."""

    def _evaluate(self) -> None:
        super()._evaluate()
        if (self.ignition_on
                and self.contact_closed("WIN_SW_UP", self.CONTACT_THRESHOLD)
                and self._position <= 0.0):
            self.drive_output("WIN_MOTOR_UP", OutputDrive.high_side(0.3))


class _WinTravelTooFast(WindowLifterEcu):
    """The window travels at triple speed (wrong motor gearing constant)."""

    TRAVEL_RATE = 30.0


class _WinTravelSlightlySlow(WindowLifterEcu):
    """An aged motor travels at 9 %/s instead of 10 %/s.

    The original position acceptance window (15..25 % after 2 s) still
    contains the 18 % an aged motor reaches; the ``travel_timing`` sheet's
    long stroke with its tight 48..52 % window catches the drift.
    """

    TRAVEL_RATE = 9.0


class _WinPositionNotReported(WindowLifterEcu):
    """The position broadcast is missing (transmit path broken)."""

    def transmit(self, message: str, values) -> None:
        if str(message).lower() == "window_position":
            return
        super().transmit(message, values)


def window_lifter_faults() -> FaultCatalogue:
    """The fault catalogue of the window lifter ECU."""
    return FaultCatalogue(
        WindowLifterEcu.NAME,
        (
            FaultModel("motor_up_dead", "closing-direction driver broken",
                       _WinMotorUpDead),
            FaultModel("swapped_motor_outputs", "motor outputs swapped",
                       _WinSwappedMotorOutputs),
            FaultModel("ignores_interlock", "ignition interlock missing",
                       _WinIgnoresInterlock),
            FaultModel("no_end_stop_cut", "motor keeps driving at the end stop",
                       _WinNoEndStopCut),
            FaultModel("travel_too_fast", "window travels at triple speed",
                       _WinTravelTooFast),
            # Formerly a catalogued knowledge gap: 18 % after 2 s still sits
            # inside the generous MidOpen 15..25 % window.  The travel_timing
            # sheet (repro.paper.family) measures a 5 s stroke against the
            # tight HalfOpen 48..52 % window; the aged motor's 45 % falls
            # outside it.
            FaultModel("travel_slightly_slow", "aged motor, 9 %/s instead of 10 %/s",
                       _WinTravelSlightlySlow),
            FaultModel("position_not_reported", "position broadcast missing",
                       _WinPositionNotReported),
        ),
    )


# ---------------------------------------------------------------------------
# Exterior light ECU faults
# ---------------------------------------------------------------------------

class _ExtLowBeamDead(ExteriorLightEcu):
    """The low beam driver is broken."""

    def _evaluate(self) -> None:
        super()._evaluate()
        self.drive_output("LOW_BEAM", OutputDrive.floating())


class _ExtAutoIgnoresSensor(ExteriorLightEcu):
    """The automatic position never sees darkness (sensor input dead)."""

    @property
    def night(self) -> bool:
        return False


class _ExtDrlAlwaysOn(ExteriorLightEcu):
    """The DRL is not suppressed while the low beam is on."""

    def _evaluate(self) -> None:
        super()._evaluate()
        if self.ignition >= 2:
            self.drive_output("DRL", OutputDrive.high_side(0.2))


class _ExtDrlDim(ExteriorLightEcu):
    """The DRL driver has aged to a higher on-resistance.

    Into the 8 Ohm lamp the dimmed output still reads ~0.9 x UBATT, inside
    the ``Ho`` window, so the voltage sheets miss the fading lamp - the
    ``drl_lamp_current`` ``get_i`` sheet catches it.
    """

    def _evaluate(self) -> None:
        super()._evaluate()
        if self.drl_on:
            self.drive_output("DRL", OutputDrive.high_side(0.8))


class _ExtIgnoresParkSwitch(ExteriorLightEcu):
    """The parking light switch threshold is far too low; requests are missed."""

    CONTACT_THRESHOLD = 0.05


class _ExtPositionOnlyWithPark(ExteriorLightEcu):
    """The position light no longer follows the low beam."""

    def _evaluate(self) -> None:
        super()._evaluate()
        park = self.contact_closed("PARK_SW", self.CONTACT_THRESHOLD)
        self.drive_output(
            "POSITION_LIGHT",
            OutputDrive.high_side(0.5) if park else OutputDrive.floating(),
        )


def exterior_light_faults() -> FaultCatalogue:
    """The fault catalogue of the exterior light ECU."""
    return FaultCatalogue(
        ExteriorLightEcu.NAME,
        (
            FaultModel("low_beam_dead", "low beam driver broken",
                       _ExtLowBeamDead),
            FaultModel("auto_ignores_sensor", "automatic never sees darkness",
                       _ExtAutoIgnoresSensor),
            FaultModel("drl_always_on", "DRL not suppressed with low beam",
                       _ExtDrlAlwaysOn),
            # Formerly a catalogued knowledge gap: the dimmed driver still
            # reaches the Ho *voltage* window into the lamp load.  The
            # drl_lamp_current get_i sheet (repro.paper.family) measures the
            # lamp current (0.114 vs. the healthy 0.122 x UBATT), which the
            # LampCurrent window resolves.
            FaultModel("drl_dim", "DRL driver on-resistance aged",
                       _ExtDrlDim),
            FaultModel("ignores_park_switch", "parking light requests missed",
                       _ExtIgnoresParkSwitch),
            FaultModel("position_without_low_beam", "position light decoupled from low beam",
                       _ExtPositionOnlyWithPark),
        ),
    )


# ---------------------------------------------------------------------------
# Instrument cluster ECU faults
# ---------------------------------------------------------------------------

class _ClusterTelltaleDead(InstrumentClusterEcu):
    """The central-locking telltale lamp driver is broken."""

    def _evaluate(self) -> None:
        super()._evaluate()
        self.drive_output("LOCK_TELLTALE", OutputDrive.floating())


class _ClusterGaugeStuckZero(InstrumentClusterEcu):
    """The speedometer gauge output is stuck at zero."""

    def _evaluate(self) -> None:
        super()._evaluate()
        self.drive_output(
            "SPEED_DISP",
            OutputDrive(level=0.0, resistance=self.GAUGE_RESISTANCE),
        )


class _ClusterSpeedScaleWrong(InstrumentClusterEcu):
    """The sensor decoding uses 80 Ohm per km/h: all speeds read halved."""

    OHMS_PER_KMH = 80.0


class _ClusterSpeedTxTruncated(InstrumentClusterEcu):
    """The broadcast raw speed (0.1 km/h units) is truncated to 8 bits.

    Below 25.6 km/h the truncation is a no-op, so the cluster's own
    ``speed_display`` sheet - which only checks the broadcast payload at 0
    and 20 km/h - passes, and so does every other single-DUT suite (the
    locking ECU's speed arrives as a stand-synthesised ``put_can``).  Only
    a composed campaign, where the locking ECU consumes the *real*
    broadcast at 130 km/h (raw 1300 -> 20 -> 2.0 km/h seen), catches it:
    the auto lock never engages.  This is the bundled composition-only
    escape; it deliberately lives in the *interaction* catalogue
    (:func:`interaction_faults`), not in the cluster's own catalogue.
    """

    def transmit(self, message: str, values) -> None:
        if str(message).lower() == "vehicle_speed":
            raw = int(round(float(values.get("SPEED", 0.0)) * 10.0)) & 0xFF
            values = dict(values, SPEED=raw / 10.0)
        super().transmit(message, values)


def instrument_cluster_faults() -> FaultCatalogue:
    """The fault catalogue of the instrument cluster ECU."""
    return FaultCatalogue(
        InstrumentClusterEcu.NAME,
        (
            FaultModel("telltale_dead", "locking telltale lamp driver broken",
                       _ClusterTelltaleDead),
            FaultModel("gauge_stuck_zero", "speedometer gauge stuck at zero",
                       _ClusterGaugeStuckZero),
            FaultModel("speed_scale_wrong", "sensor decoded at half scale",
                       _ClusterSpeedScaleWrong),
        ),
    )


def _cluster_interaction_faults() -> FaultCatalogue:
    return FaultCatalogue(
        InstrumentClusterEcu.NAME,
        (
            FaultModel("speed_tx_truncated",
                       "broadcast raw speed truncated to 8 bits",
                       _ClusterSpeedTxTruncated),
        ),
    )


#: Per-ECU factories for *interaction* fault catalogues: seeded defects
#: that are provably invisible to the ECU's own single-DUT suite and only
#: detectable in a multi-ECU composition.  Kept separate from the bundled
#: per-DUT catalogues so single-DUT campaign reports (and the lint
#: coverage rules) are not polluted with faults their sheets cannot see.
_INTERACTION_FAULTS = {
    InstrumentClusterEcu.NAME: _cluster_interaction_faults,
}


def interaction_faults(ecu_name: str) -> FaultCatalogue:
    """Interaction fault catalogue for *ecu_name* (empty when none seeded)."""
    factory = _INTERACTION_FAULTS.get(str(ecu_name).lower())
    if factory is None:
        return FaultCatalogue(str(ecu_name))
    return factory()
