"""Reuse metrics: quantifying the paper's knowledge-preservation claim.

The paper argues that test definitions phrased against component
requirements (instead of against a test stand) let OEM and suppliers build
up and share test knowledge over many projects: *"there is a need for test
cases that are specified in a way, so that a high percentage of them can be
reused"*.  This module measures that percentage for concrete suites:

* vocabulary reuse - which statuses, methods and signal names recur,
* step reuse - which (signal, status) assignments recur between projects,
* stand independence - which fraction of a compiled script's content refers
  to stand-specific entities (by construction of the tool chain: none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.script import TestScript
from ..core.testdef import TestSuite

__all__ = ["ReuseReport", "compare_suites", "vocabulary_reuse", "script_portability"]


def _jaccard(a: set, b: set) -> float:
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


@dataclass(frozen=True)
class ReuseReport:
    """Pairwise reuse metrics between two test suites."""

    suite_a: str
    suite_b: str
    shared_statuses: tuple[str, ...]
    shared_methods: tuple[str, ...]
    shared_signals: tuple[str, ...]
    status_jaccard: float
    method_jaccard: float
    assignment_jaccard: float

    def summary(self) -> str:
        return (
            f"{self.suite_a} vs {self.suite_b}: "
            f"{len(self.shared_statuses)} shared statuses "
            f"(J={self.status_jaccard:.2f}), "
            f"{len(self.shared_methods)} shared methods "
            f"(J={self.method_jaccard:.2f}), "
            f"assignment reuse J={self.assignment_jaccard:.2f}"
        )


def _assignments(suite: TestSuite) -> set[tuple[str, str]]:
    pairs: set[tuple[str, str]] = set()
    for test in suite:
        for step in test:
            for assignment in step.assignments:
                pairs.add((assignment.signal.lower(), assignment.status.lower()))
    return pairs


def compare_suites(suite_a: TestSuite, suite_b: TestSuite) -> ReuseReport:
    """Compute the reuse metrics between two suites (two "projects")."""
    statuses_a = {name.lower() for name in suite_a.statuses.names}
    statuses_b = {name.lower() for name in suite_b.statuses.names}
    methods_a = set(suite_a.statuses.methods_used())
    methods_b = set(suite_b.statuses.methods_used())
    signals_a = {name.lower() for name in suite_a.signals.names}
    signals_b = {name.lower() for name in suite_b.signals.names}

    shared_statuses = tuple(sorted(statuses_a & statuses_b))
    shared_methods = tuple(sorted(methods_a & methods_b))
    shared_signals = tuple(sorted(signals_a & signals_b))

    return ReuseReport(
        suite_a=suite_a.dut,
        suite_b=suite_b.dut,
        shared_statuses=shared_statuses,
        shared_methods=shared_methods,
        shared_signals=shared_signals,
        status_jaccard=_jaccard(statuses_a, statuses_b),
        method_jaccard=_jaccard(methods_a, methods_b),
        assignment_jaccard=_jaccard(_assignments(suite_a), _assignments(suite_b)),
    )


def vocabulary_reuse(suites: Sequence[TestSuite]) -> Mapping[str, float]:
    """Fraction of projects using each status of the combined vocabulary.

    A value of 1.0 means the status is reused by every project - the
    knowledge-preservation sweet spot the paper aims for.
    """
    usage: dict[str, int] = {}
    for suite in suites:
        for name in {status.lower() for status in suite.statuses.names}:
            usage[name] = usage.get(name, 0) + 1
    if not suites:
        return {}
    return {name: count / len(suites) for name, count in sorted(usage.items())}


def script_portability(script: TestScript, stand_entities: Iterable[str]) -> float:
    """Fraction of the script's identifiers that are *not* stand-specific.

    *stand_entities* are the names a concrete stand introduces (resource
    names, connector labels).  Because the compiler never emits them, the
    result is 1.0 for scripts produced by this tool chain - the quantified
    form of the paper's independence claim.  Hand-written scripts that
    hard-code resources score lower.
    """
    stand_names = {str(name).lower() for name in stand_entities}
    identifiers: set[str] = set()
    for step in script.steps:
        for action in step.actions:
            identifiers.add(action.signal.lower())
            identifiers.add(action.method.lower())
            for key, value in action.call.params.items():
                identifiers.add(str(key).lower())
                identifiers.add(str(value).lower())
    for action in script.setup:
        identifiers.add(action.signal.lower())
        identifiers.add(action.method.lower())
    if not identifiers:
        return 1.0
    clean = {identifier for identifier in identifiers if identifier not in stand_names}
    return len(clean) / len(identifiers)
