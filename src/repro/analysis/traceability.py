"""Requirement traceability.

Component requirements live outside the sheets (specification documents);
this module links them to the test definitions.  Requirement identifiers can
be attached to whole test sheets or to individual steps (an extension of the
paper's sheet layout), and a small catalogue object records the requirement
texts so reports can spell out what is and is not covered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..core.errors import DefinitionError
from ..core.testdef import TestSuite

__all__ = ["Requirement", "RequirementCatalogue", "TraceabilityReport", "trace_requirements"]


@dataclass(frozen=True)
class Requirement:
    """One requirement of the component specification."""

    identifier: str
    text: str
    chapter: str = ""

    def __post_init__(self) -> None:
        if not str(self.identifier).strip():
            raise DefinitionError("requirement needs an identifier")

    @property
    def key(self) -> str:
        return self.identifier.lower()


class RequirementCatalogue:
    """Ordered collection of requirements for one component."""

    def __init__(self, requirements: Iterable[Requirement] = (), *, component: str = ""):
        self.component = component
        self._requirements: dict[str, Requirement] = {}
        for requirement in requirements:
            self.add(requirement)

    def add(self, requirement: Requirement) -> None:
        if requirement.key in self._requirements:
            raise DefinitionError(f"duplicate requirement {requirement.identifier!r}")
        self._requirements[requirement.key] = requirement

    def get(self, identifier: str) -> Requirement:
        try:
            return self._requirements[str(identifier).lower()]
        except KeyError as exc:
            raise DefinitionError(f"unknown requirement {identifier!r}") from exc

    def __contains__(self, identifier: object) -> bool:
        return str(identifier).lower() in self._requirements

    def __iter__(self) -> Iterator[Requirement]:
        return iter(self._requirements.values())

    def __len__(self) -> int:
        return len(self._requirements)

    @property
    def identifiers(self) -> tuple[str, ...]:
        return tuple(req.identifier for req in self._requirements.values())


@dataclass(frozen=True)
class TraceabilityReport:
    """Mapping between requirements and the tests/steps touching them."""

    component: str
    links: Mapping[str, tuple[tuple[str, int], ...]]
    covered: tuple[str, ...]
    uncovered: tuple[str, ...]
    dangling: tuple[str, ...]

    @property
    def coverage(self) -> float:
        """Fraction of catalogued requirements referenced by at least one step."""
        total = len(self.covered) + len(self.uncovered)
        if total == 0:
            return 1.0
        return len(self.covered) / total

    def summary(self) -> str:
        return (
            f"traceability of {self.component}: {self.coverage:.0%} of requirements covered, "
            f"{len(self.uncovered)} uncovered, {len(self.dangling)} dangling references"
        )


def trace_requirements(
    suite: TestSuite, catalogue: RequirementCatalogue
) -> TraceabilityReport:
    """Link the requirement references of *suite* against *catalogue*.

    Returns which requirements are covered (referenced by at least one test
    or step), which are uncovered, and which references in the sheets do not
    exist in the catalogue ("dangling" - typically a typo in the sheet).
    """
    links: dict[str, list[tuple[str, int]]] = {}
    dangling: dict[str, None] = {}

    def record(identifier: str, test_name: str, step_number: int) -> None:
        if identifier not in catalogue:
            dangling.setdefault(identifier, None)
            return
        canonical = catalogue.get(identifier).identifier
        links.setdefault(canonical, []).append((test_name, step_number))

    for test in suite:
        for step in test:
            identifier = step.requirement or test.requirement
            if identifier:
                record(identifier, test.name, step.number)

    covered = tuple(identifier for identifier in catalogue.identifiers if identifier in links)
    uncovered = tuple(
        identifier for identifier in catalogue.identifiers if identifier not in links
    )
    return TraceabilityReport(
        component=catalogue.component or suite.dut,
        links={key: tuple(value) for key, value in links.items()},
        covered=covered,
        uncovered=uncovered,
        dangling=tuple(dangling),
    )
