"""Fault-injection campaigns: running suites against seeded defects.

A campaign answers the question the paper's motivation raises: *do the
preserved test cases actually catch the bugs that have occurred in the
past?*  For every fault model the campaign executes every script of the
suite on a fresh faulty ECU and records whether any step failed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from ..core.script import TestScript
from ..core.signals import SignalSet
from ..dut.base import EcuModel
from ..dut.harness import TestHarness
from ..teststand.interpreter import TestStandInterpreter
from ..teststand.report import format_table
from ..teststand.stands import TestStand
from ..teststand.verdict import TestResult, Verdict
from .faults import FaultCatalogue, FaultModel

__all__ = ["FaultRunOutcome", "CampaignResult", "FaultCampaign"]

HarnessFactory = Callable[[EcuModel], TestHarness]
StandFactory = Callable[[], TestStand]


@dataclass(frozen=True)
class FaultRunOutcome:
    """Result of running the whole suite against one fault model."""

    fault: FaultModel
    results: tuple[TestResult, ...]

    @property
    def detected(self) -> bool:
        """The fault counts as detected when at least one step failed."""
        return any(not result.passed for result in self.results)

    @property
    def failing_tests(self) -> tuple[str, ...]:
        return tuple(result.script.name for result in self.results if not result.passed)

    @property
    def as_expected(self) -> bool:
        """Whether detection matches the catalogue's expectation."""
        return self.detected == self.fault.expected_detected


class CampaignResult:
    """Aggregate of a fault-injection campaign."""

    def __init__(
        self,
        baseline: tuple[TestResult, ...],
        outcomes: Sequence[FaultRunOutcome],
    ):
        self.baseline = baseline
        self.outcomes = tuple(outcomes)

    @property
    def baseline_clean(self) -> bool:
        """Whether the healthy ECU passes every test (sanity precondition)."""
        return all(result.passed for result in self.baseline)

    @property
    def detection_rate(self) -> float:
        """Fraction of injected faults detected by the suite."""
        if not self.outcomes:
            return 1.0
        return sum(1 for outcome in self.outcomes if outcome.detected) / len(self.outcomes)

    @property
    def detected(self) -> tuple[str, ...]:
        return tuple(outcome.fault.name for outcome in self.outcomes if outcome.detected)

    @property
    def undetected(self) -> tuple[str, ...]:
        return tuple(outcome.fault.name for outcome in self.outcomes if not outcome.detected)

    def table(self) -> str:
        """Text table: one row per fault model."""
        header = ("fault", "detected", "expected", "failing tests", "description")
        rows = []
        for outcome in self.outcomes:
            rows.append((
                outcome.fault.name,
                "yes" if outcome.detected else "NO",
                "yes" if outcome.fault.expected_detected else "no",
                ", ".join(outcome.failing_tests) or "-",
                outcome.fault.description,
            ))
        return format_table(header, rows)

    def summary(self) -> str:
        return (
            f"fault campaign: {len(self.outcomes)} faults, "
            f"{len(self.detected)} detected ({self.detection_rate:.0%}), "
            f"baseline {'clean' if self.baseline_clean else 'NOT clean'}"
        )


class FaultCampaign:
    """Runs a set of scripts against a healthy ECU and a fault catalogue."""

    def __init__(
        self,
        scripts: Sequence[TestScript],
        signals: SignalSet,
        stand_factory: StandFactory,
        harness_factory: HarnessFactory,
        healthy_factory: Callable[[], EcuModel],
        *,
        policy: str = "first_fit",
    ):
        self.scripts = tuple(scripts)
        self.signals = signals
        self.stand_factory = stand_factory
        self.harness_factory = harness_factory
        self.healthy_factory = healthy_factory
        self.policy = policy

    def _run_all(self, ecu_factory: Callable[[], EcuModel]) -> tuple[TestResult, ...]:
        results = []
        for script in self.scripts:
            # A fresh ECU, harness, stand and interpreter per script keeps
            # runs independent, like re-cabling the bench between tests.
            ecu = ecu_factory()
            harness = self.harness_factory(ecu)
            stand = self.stand_factory()
            interpreter = TestStandInterpreter(
                stand, harness, self.signals, policy=self.policy
            )
            results.append(interpreter.run(script))
        return tuple(results)

    def run(self, faults: FaultCatalogue | Iterable[FaultModel]) -> CampaignResult:
        """Execute the campaign and return its aggregated result."""
        baseline = self._run_all(self.healthy_factory)
        outcomes = [
            FaultRunOutcome(fault, self._run_all(fault.build))
            for fault in faults
        ]
        return CampaignResult(baseline, outcomes)
