"""Fault-injection campaigns: running suites against seeded defects.

A campaign answers the question the paper's motivation raises: *do the
preserved test cases actually catch the bugs that have occurred in the
past?*  For every fault model the campaign executes every script of the
suite on a fresh faulty ECU and records whether any step failed.

Execution is delegated to the job-based engine in
:mod:`repro.teststand.executor`: the campaign expands into one job per
(script x ECU variant), and any backend - serial, thread pool, process
pool or the single-worker async multiplexer - produces the identical,
insertion-ordered verdict aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from ..core.errors import ReproError
from ..core.script import TestScript
from ..core.signals import SignalSet
from ..dut.base import EcuModel
from ..dut.harness import TestHarness
from ..teststand.executor import (
    ExecutionReport,
    Executor,
    JobResult,
    ResiliencePolicy,
    expand_jobs,
    run_jobs,
)
from ..teststand.report import format_table
from ..teststand.stands import TestStand
from ..teststand.verdict import TestResult
from .faults import FaultModel

__all__ = ["FaultRunOutcome", "CampaignResult", "FaultCampaign"]

HarnessFactory = Callable[[EcuModel], TestHarness]
StandFactory = Callable[[], TestStand]

#: Group label of the healthy-ECU jobs in the expanded campaign.
BASELINE_GROUP = "baseline"


@dataclass(frozen=True)
class FaultRunOutcome:
    """Result of running the whole suite against one fault model."""

    fault: FaultModel
    results: tuple[TestResult, ...]

    @property
    def detected(self) -> bool:
        """The fault counts as detected when at least one step failed."""
        return any(not result.passed for result in self.results)

    @property
    def failing_tests(self) -> tuple[str, ...]:
        return tuple(result.script.name for result in self.results if not result.passed)

    @property
    def as_expected(self) -> bool:
        """Whether detection matches the catalogue's expectation."""
        return self.detected == self.fault.expected_detected


class CampaignResult:
    """Aggregate of a fault-injection campaign."""

    #: Run id assigned by the persistent result store when this result was
    #: recorded (``CampaignSpec(store=...)`` / ``repro-campaign --store``);
    #: ``None`` for unrecorded results.  Set by
    #: :func:`repro.targets.run_campaign`, read by the CLI and the service.
    store_run_id: int | None = None

    def __init__(
        self,
        baseline: tuple[TestResult, ...],
        outcomes: Sequence[FaultRunOutcome],
        *,
        execution: ExecutionReport | None = None,
    ):
        self.baseline = baseline
        self.outcomes = tuple(outcomes)
        #: Execution metadata (backend, wall time, retries); None for results
        #: assembled outside the executor.
        self.execution = execution

    @property
    def baseline_clean(self) -> bool:
        """Whether the healthy ECU passes every test (sanity precondition)."""
        return all(result.passed for result in self.baseline)

    @property
    def detection_rate(self) -> float:
        """Fraction of injected faults detected by the suite."""
        if not self.outcomes:
            return 1.0
        return sum(1 for outcome in self.outcomes if outcome.detected) / len(self.outcomes)

    @property
    def detected(self) -> tuple[str, ...]:
        return tuple(outcome.fault.name for outcome in self.outcomes if outcome.detected)

    @property
    def undetected(self) -> tuple[str, ...]:
        return tuple(outcome.fault.name for outcome in self.outcomes if not outcome.detected)

    def table(self) -> str:
        """Text table: one row per fault model."""
        header = ("fault", "detected", "expected", "failing tests", "description")
        rows = []
        for outcome in self.outcomes:
            rows.append((
                outcome.fault.name,
                "yes" if outcome.detected else "NO",
                "yes" if outcome.fault.expected_detected else "no",
                ", ".join(outcome.failing_tests) or "-",
                outcome.fault.description,
            ))
        return format_table(header, rows)

    def summary(self) -> str:
        return (
            f"fault campaign: {len(self.outcomes)} faults, "
            f"{len(self.detected)} detected ({self.detection_rate:.0%}), "
            f"baseline {'clean' if self.baseline_clean else 'NOT clean'}"
        )


class FaultCampaign:
    """Runs a set of scripts against a healthy ECU and a fault catalogue.

    The campaign itself only *describes* the work; the (scripts x ECU
    variants) cross product is expanded into independent jobs and handed to
    an :class:`~repro.teststand.executor.Executor`.  Passing a parallel
    executor changes the wall time, never the verdicts: results are
    re-assembled in catalogue order.
    """

    def __init__(
        self,
        scripts: Sequence[TestScript],
        signals: SignalSet,
        stand_factory: StandFactory,
        harness_factory: HarnessFactory,
        healthy_factory: Callable[[], EcuModel],
        *,
        policy: str = "first_fit",
        executor: Executor | None = None,
        max_attempts: int = 2,
        resilience: ResiliencePolicy | None = None,
        use_plans: bool = True,
        reuse_stands: bool = True,
        use_vm: bool = True,
    ):
        self.scripts = tuple(scripts)
        self.signals = signals
        self.stand_factory = stand_factory
        self.harness_factory = harness_factory
        self.healthy_factory = healthy_factory
        self.policy = policy
        self.executor = executor
        self.max_attempts = max_attempts
        #: Full executor resilience policy (backoff, deadline, quarantine,
        #: chaos); overrides ``max_attempts`` when set.
        self.resilience = resilience
        #: Compile-once-run-many switches forwarded to every job (see
        #: :class:`repro.teststand.executor.Job`); off only for A/B timing.
        self.use_plans = bool(use_plans)
        self.reuse_stands = bool(reuse_stands)
        self.use_vm = bool(use_vm)

    def _expand(self, faults: Sequence[FaultModel]):
        """One job per (ECU variant x script): baseline first, catalogue order."""
        groups: dict[str, Callable[[], EcuModel]] = {BASELINE_GROUP: self.healthy_factory}
        for fault in faults:
            if fault.name in groups:
                raise ReproError(
                    f"fault model name {fault.name!r} collides with another "
                    "campaign group"
                )
            groups[fault.name] = fault.build
        return expand_jobs(
            self.scripts,
            self.signals,
            {"": self.stand_factory},
            self.harness_factory,
            groups,
            policy=self.policy,
            use_plans=self.use_plans,
            reuse_stands=self.reuse_stands,
            use_vm=self.use_vm,
        )

    def run(
        self,
        faults: Iterable[FaultModel],
        *,
        executor: Executor | None = None,
        resilience: ResiliencePolicy | None = None,
        completed: Mapping[str, JobResult] | None = None,
        on_result: Callable[[JobResult], None] | None = None,
    ) -> CampaignResult:
        """Execute the campaign and return its aggregated result.

        *resilience*, *completed* and *on_result* forward to
        :func:`~repro.teststand.executor.run_jobs`: the full resilience
        policy, previously checkpointed results to skip, and a streaming
        callback (e.g. a checkpoint writer) for fresh results.
        """
        catalogue = tuple(faults)
        report = run_jobs(
            self._expand(catalogue),
            executor or self.executor,
            max_attempts=self.max_attempts,
            resilience=resilience if resilience is not None else self.resilience,
            completed=completed,
            on_result=on_result,
        )
        report.test_results()  # raise early when a job failed terminally
        by_group = report.by_group()
        baseline = tuple(jr.result for jr in by_group.get(BASELINE_GROUP, ()))
        outcomes = [
            FaultRunOutcome(
                fault, tuple(jr.result for jr in by_group.get(fault.name, ()))
            )
            for fault in catalogue
        ]
        return CampaignResult(baseline, outcomes, execution=report)
