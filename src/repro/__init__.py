"""repro - test-stand-independent component testing.

A from-scratch reproduction of the tool chain described in

    Horst Brinkmeyer, "A New Approach to Component Testing",
    Proceedings of DATE 2005.

The package is organised along the paper's own split between test
*definition* and test *execution*:

``repro.core``
    signal / status / test-definition model, compiler, XML generation and
    parsing, validation - the paper's contribution.
``repro.sheets``
    the worksheet front-end (three sheet types, CSV persistence).
``repro.methods``
    the shared method vocabulary (``put_r``, ``get_u``, ``put_can``, ...).
``repro.teststand``
    resources, connection matrix, allocation, interpreter, reports, and the
    job-based campaign executor: because compiled scripts are
    stand-independent and every run uses a fresh DUT/harness/stand, the
    (scripts x stands x fault models) cross product expands into independent
    ``Job`` specs that run on interchangeable serial / thread / process
    backends with a deterministic, insertion-ordered verdict aggregate
    (``repro-campaign <workbook dir> --jobs N`` on the command line).
``repro.instruments``
    virtual instruments (DVM, resistor decade, power supply, CAN ...).
``repro.dut``
    behavioural ECU models, electrical network, harness, CAN bus wiring.
``repro.can``
    frames, signal coding, message database, virtual bus.
``repro.analysis``
    coverage, traceability, reuse metrics, fault injection campaigns.
``repro.paper``
    the paper's worked example and table/figure renderings.
"""

from . import analysis, can, core, dut, instruments, methods, paper, sheets, teststand
from .core import (
    Compiler,
    CompileOptions,
    Signal,
    SignalDirection,
    SignalKind,
    SignalSet,
    StatusDefinition,
    StatusTable,
    TestDefinition,
    TestScript,
    TestSuite,
    compile_suite,
    compile_test,
    parse_script,
    read_script,
    script_to_string,
    write_script,
)
from .teststand import (
    TestStand,
    TestStandInterpreter,
    build_big_rack,
    build_minimal_bench,
    build_paper_stand,
    run_script,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "core", "sheets", "methods", "teststand", "instruments", "dut", "can",
    "analysis", "paper",
    "Signal", "SignalDirection", "SignalKind", "SignalSet",
    "StatusDefinition", "StatusTable", "TestDefinition", "TestSuite", "TestScript",
    "Compiler", "CompileOptions", "compile_test", "compile_suite",
    "script_to_string", "write_script", "parse_script", "read_script",
    "TestStand", "TestStandInterpreter", "run_script",
    "build_paper_stand", "build_big_rack", "build_minimal_bench",
]
