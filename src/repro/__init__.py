"""repro - test-stand-independent component testing.

A from-scratch reproduction of the tool chain described in

    Horst Brinkmeyer, "A New Approach to Component Testing",
    Proceedings of DATE 2005.

The package is organised along the paper's own split between test
*definition* and test *execution*, plus a registry layer that binds the two
together per device under test:

``repro.core``
    signal / status / test-definition model, compiler, XML generation and
    parsing, validation - the paper's contribution.
``repro.sheets``
    the worksheet front-end (three sheet types, CSV persistence).
``repro.methods``
    the shared method vocabulary (``put_r``, ``get_u``, ``put_can``, ...).
``repro.teststand``
    resources, connection matrix, allocation, interpreter, reports, and the
    job-based campaign executor: because compiled scripts are
    stand-independent and every run uses a fresh DUT/harness/stand, the
    (scripts x stands x fault models) cross product expands into independent
    ``Job`` specs that run on interchangeable serial / thread / process /
    async backends with a deterministic, insertion-ordered verdict
    aggregate (the async backend multiplexes many latency-simulated stands
    on one worker by awaiting instrument I/O).
``repro.instruments``
    virtual instruments (DVM, resistor decade, power supply, CAN ...),
    each with capability ranges and a per-call ``io_delay`` latency model.
``repro.dut``
    behavioural ECU models, electrical network, harness, CAN bus wiring.
``repro.can``
    frames, signal coding, message database, virtual bus.
``repro.analysis``
    coverage, traceability, reuse metrics, fault injection campaigns.
``repro.paper``
    the paper's worked example, the extended / second-project suites, the
    body-electronics family suites and the table/figure renderings.
``repro.targets``
    the public target registry and declarative campaign API: a
    :class:`~repro.targets.DutTarget` bundles everything execution needs to
    know about one DUT (ECU / harness / signal-set / fault-catalogue
    factories plus stand adapter pins), ``register_dut`` / ``register_stand``
    extend the registry, and :func:`~repro.targets.run_single` /
    :func:`~repro.targets.run_campaign` expand declarative
    :class:`~repro.targets.RunSpec` / :class:`~repro.targets.CampaignSpec`
    objects through the executor engine.  All five bundled body-electronics
    ECUs (interior light, central locking, window lifter, wiper, exterior
    light) are registered with fault catalogues, so
    ``repro-campaign --dut <name>`` covers the whole family.
``repro.store``
    the persistent result store: execution reports and campaign results
    recorded into a normalized stdlib-``sqlite3`` database
    (``repro-campaign --store``, ``CampaignSpec(store=...)``), queryable
    and diffable, re-rendering verdict tables byte-identically.
``repro.service``
    campaign-as-a-service: a worker-thread job queue over the registry
    (``CampaignService``), a WSGI JSON API (``repro-serve``) and a static
    HTML report generator - not imported here so the base import stays
    light; ``import repro.service`` explicitly.
``repro.chaos``
    deterministic, seeded infrastructure fault injection (flaky
    instruments, hangs, glitched readings, dying pool workers, locked
    stores, crashing service workers) used to exercise the execution
    stack's resilience machinery - classified retries with backoff,
    per-job deadlines, stand quarantine and campaign checkpoint/resume
    (``repro-campaign --chaos-seed/--chaos-profile/--deadline/--resume``,
    see ``docs/robustness.md``).
"""

from . import analysis, can, chaos, core, dut, instruments, methods, paper, sheets, teststand
from . import targets
from . import store
from .core import (
    Compiler,
    CompileOptions,
    Signal,
    SignalDirection,
    SignalKind,
    SignalSet,
    StatusDefinition,
    StatusTable,
    TestDefinition,
    TestScript,
    TestSuite,
    compile_suite,
    compile_test,
    parse_script,
    read_script,
    script_to_string,
    write_script,
)
from .targets import (
    CampaignSpec,
    CapabilityGapError,
    DutTarget,
    RunSpec,
    SignalDerivationWarning,
    StandTarget,
    TargetError,
    method_coverage,
    register_dut,
    register_stand,
    run_campaign,
    run_single,
)
from .chaos import ChaosPolicy, ChaosProfile
from .teststand import (
    ResiliencePolicy,
    TestStand,
    TestStandInterpreter,
    build_big_rack,
    build_minimal_bench,
    build_paper_stand,
    run_script,
)

__version__ = "1.8.0"

__all__ = [
    "__version__",
    "core", "sheets", "methods", "teststand", "instruments", "dut", "can",
    "analysis", "paper", "targets", "store", "chaos",
    "Signal", "SignalDirection", "SignalKind", "SignalSet",
    "StatusDefinition", "StatusTable", "TestDefinition", "TestSuite", "TestScript",
    "Compiler", "CompileOptions", "compile_test", "compile_suite",
    "script_to_string", "write_script", "parse_script", "read_script",
    "TestStand", "TestStandInterpreter", "run_script",
    "build_paper_stand", "build_big_rack", "build_minimal_bench",
    "DutTarget", "StandTarget", "TargetError", "CapabilityGapError",
    "SignalDerivationWarning", "method_coverage",
    "register_dut", "register_stand",
    "RunSpec", "CampaignSpec", "run_single", "run_campaign",
    "ResiliencePolicy", "ChaosPolicy", "ChaosProfile",
]
