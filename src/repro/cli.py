"""Command-line entry points.

Four small tools mirror the paper's workflow:

``repro-compile <workbook dir> <output dir>``
    read a CSV workbook (signal / status / test sheets) and generate one XML
    test script per test definition sheet,
``repro-run <script.xml> [--stand NAME] [--policy NAME]``
    execute an XML test script on one of the bundled virtual test stands
    against the matching simulated DUT and print the report,
``repro-report <script.xml>``
    print a static summary of a script (signals, methods, duration) without
    executing it,
``repro-campaign <workbook dir> [--stand NAME] [--jobs N] [--faults A,B]``
    compile the workbook and run the full fault-injection campaign for its
    DUT across a configurable worker pool.  The verdict tables on stdout are
    byte-identical for any ``--jobs`` / ``--backend`` combination; timing
    goes to stderr.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, NamedTuple, Sequence

from .core.xmlgen import write_script
from .core.xmlparse import read_script
from .core.compiler import Compiler
from .dut.central_locking import CentralLockingEcu
from .dut.exterior_light import ExteriorLightEcu
from .dut.harness import LoadSpec, TestHarness
from .dut.interior_light import InteriorLightEcu
from .dut.messages import body_can_database
from .dut.window_lifter import WindowLifterEcu
from .dut.wiper import WiperEcu
from .analysis.campaign import FaultCampaign
from .analysis.faults import (
    FaultCatalogue,
    central_locking_faults,
    interior_light_faults,
)
from .paper.example import build_paper_harness, interior_harness, paper_signal_set
from .paper.extended import locking_signal_set
from .sheets.workbook import load_suite
from .teststand.allocator import ALLOCATION_POLICIES
from .teststand.executor import EXECUTION_BACKENDS, make_executor
from .teststand.interpreter import TestStandInterpreter
from .teststand.report import summary_line, text_report
from .teststand.stands import build_big_rack, build_minimal_bench, build_paper_stand

__all__ = ["main_compile", "main_run", "main_report", "main_campaign"]

#: Builders for the bundled virtual test stands, selectable with ``--stand``.
STAND_BUILDERS: dict[str, Callable[[], object]] = {
    "paper": build_paper_stand,
    "big_rack": build_big_rack,
    "minimal": build_minimal_bench,
}


def _dut_registry() -> dict[str, Callable[[], TestHarness]]:
    """Factories building a ready-wired harness per known DUT name."""
    def interior() -> TestHarness:
        return build_paper_harness()

    def locking() -> TestHarness:
        return _central_locking_harness(CentralLockingEcu())

    def window() -> TestHarness:
        return TestHarness(WindowLifterEcu(), body_can_database(),
                           loads=(LoadSpec("WIN_MOTOR_UP", ohms=2.0),
                                  LoadSpec("WIN_MOTOR_DOWN", ohms=2.0)))

    def wiper() -> TestHarness:
        return TestHarness(WiperEcu(), body_can_database(),
                           loads=(LoadSpec("WIPER_MOTOR", ohms=2.0),
                                  LoadSpec("WASH_PUMP", ohms=4.0),
                                  LoadSpec("WIPER_FAST", ohms=200.0)))

    def exterior() -> TestHarness:
        return TestHarness(ExteriorLightEcu(), body_can_database(),
                           loads=(LoadSpec("LOW_BEAM", ohms=4.0),
                                  LoadSpec("DRL", ohms=8.0),
                                  LoadSpec("POSITION_LIGHT", ohms=20.0)))

    return {
        "interior_light_ecu": interior,
        "central_locking_ecu": locking,
        "window_lifter_ecu": window,
        "wiper_ecu": wiper,
        "exterior_light_ecu": exterior,
    }


def main_compile(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-compile``."""
    parser = argparse.ArgumentParser(
        prog="repro-compile",
        description="Generate XML test scripts from a CSV workbook directory.",
    )
    parser.add_argument("workbook", help="directory containing signals.csv, status.csv, test_*.csv")
    parser.add_argument("output", help="directory to write the generated XML scripts into")
    args = parser.parse_args(argv)

    suite = load_suite(args.workbook)
    compiler = Compiler()
    os.makedirs(args.output, exist_ok=True)
    written = []
    for test in suite:
        script = compiler.compile_test(suite, test)
        path = os.path.join(args.output, f"{script.name}.xml")
        write_script(script, path)
        written.append(path)
    print(f"compiled {len(written)} test script(s) from {args.workbook!r}:")
    for path in written:
        print(f"  {path}")
    return 0


def main_run(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-run``."""
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Execute an XML test script on a bundled virtual test stand.",
    )
    parser.add_argument("script", help="path of the XML test script")
    parser.add_argument("--stand", choices=sorted(STAND_BUILDERS), default="paper",
                        help="which virtual test stand to use (default: paper)")
    parser.add_argument("--policy", choices=ALLOCATION_POLICIES,
                        default="first_fit", help="resource allocation policy")
    parser.add_argument("--quiet", action="store_true", help="print only the summary line")
    args = parser.parse_args(argv)

    script = read_script(args.script)
    registry = _dut_registry()
    if script.dut not in registry:
        print(f"error: unknown DUT {script.dut!r}; known DUTs: {sorted(registry)}",
              file=sys.stderr)
        return 2
    harness = registry[script.dut]()
    stand = STAND_BUILDERS[args.stand]()

    # Signal definitions for the paper DUT are bundled; for the other DUTs a
    # minimal signal set is derived from the script itself (pins = signal name).
    if script.dut == "interior_light_ecu":
        signals = paper_signal_set()
    else:
        from .core.signals import Signal, SignalDirection, SignalKind, SignalSet

        db = body_can_database()
        derived = []
        for name in script.signals_used():
            ecu = harness.ecu
            if ecu.has_pin(name):
                pin = ecu.pin(name)
                direction = SignalDirection.OUTPUT if pin.is_output else SignalDirection.INPUT
                kind = SignalKind.ANALOG if pin.is_output else SignalKind.RESISTIVE
                derived.append(Signal(name, direction, kind, pins=(name,)))
            else:
                try:
                    message = db.message_for_signal(name).name
                except Exception:
                    continue
                derived.append(Signal(name, SignalDirection.INPUT, SignalKind.BUS,
                                      message=message))
        signals = SignalSet(derived, dut=script.dut)

    interpreter = TestStandInterpreter(stand, harness, signals, policy=args.policy)
    result = interpreter.run(script)
    if args.quiet:
        print(summary_line(result))
    else:
        print(text_report(result))
    return 0 if result.passed else 1


# -- fault campaigns ------------------------------------------------------------

class CampaignTarget(NamedTuple):
    """Everything ``repro-campaign`` needs to campaign one DUT type.

    ``pins`` is the DUT adapter: the pin list the configurable stands
    (big rack, minimal bench) must be wired to.  ``None`` means the DUT
    uses the paper's default pinning, which every bundled stand carries.
    """

    ecu_factory: Callable[[], object]
    harness_factory: Callable[[object], TestHarness]
    signals_factory: Callable[[], object]
    faults_factory: Callable[[], FaultCatalogue]
    pins: tuple[str, ...] | None = None


def _central_locking_harness(ecu) -> TestHarness:
    return TestHarness(ecu, body_can_database(),
                       loads=(LoadSpec("LOCK_LED", ohms=500.0),
                              LoadSpec("LOCK_ACT", ohms=3.0)))


#: DUTs with a bundled fault catalogue, campaignable via ``repro-campaign``.
#: All factories are module-level so the process backend can pickle jobs.
CAMPAIGN_TARGETS: dict[str, CampaignTarget] = {
    "interior_light_ecu": CampaignTarget(
        InteriorLightEcu, interior_harness,
        paper_signal_set, interior_light_faults,
    ),
    "central_locking_ecu": CampaignTarget(
        CentralLockingEcu, _central_locking_harness,
        locking_signal_set, central_locking_faults,
        pins=("KEY_SW", "UNLOCK_SW", "LOCK_LED", "LOCK_ACT"),
    ),
}

#: Stands whose builder accepts a DUT adapter pin list (the paper stand's
#: switching matrix is fixed to the paper pinning).
ADAPTABLE_STANDS = ("big_rack", "minimal")


def _campaign_stand_factory(stand: str, target: CampaignTarget):
    """The stand factory for a campaign, wired to the DUT's adapter pins."""
    if target.pins is None:
        return STAND_BUILDERS[stand]
    if stand not in ADAPTABLE_STANDS:
        return None
    # functools.partial of a module-level builder stays picklable for the
    # process backend.
    import functools

    return functools.partial(STAND_BUILDERS[stand], target.pins)


def main_campaign(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-campaign``."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Compile a CSV workbook and run its fault-injection "
                    "campaign across a worker pool.",
    )
    parser.add_argument("workbook",
                        help="directory containing signals.csv, status.csv, test_*.csv")
    parser.add_argument("--stand", choices=sorted(STAND_BUILDERS), default="paper",
                        help="which virtual test stand to use (default: paper)")
    parser.add_argument("--policy", choices=ALLOCATION_POLICIES,
                        default="first_fit", help="resource allocation policy")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker count for parallel execution (default: 1)")
    parser.add_argument("--backend", choices=EXECUTION_BACKENDS + ("auto",),
                        default="auto",
                        help="execution backend (default: auto = serial for "
                             "--jobs 1, threads otherwise)")
    parser.add_argument("--faults", default="",
                        help="comma-separated fault names to inject "
                             "(default: the DUT's whole catalogue)")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="extra attempts per job after a transient error "
                             "(default: 1; 0 disables retrying)")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the campaign summary line")
    args = parser.parse_args(argv)

    try:
        suite = load_suite(args.workbook)
    except Exception as exc:
        print(f"error: cannot load workbook {args.workbook!r}: {exc}", file=sys.stderr)
        return 2
    target = CAMPAIGN_TARGETS.get(suite.dut)
    if target is None:
        print(f"error: no fault catalogue for DUT {suite.dut!r}; "
              f"campaignable DUTs: {sorted(CAMPAIGN_TARGETS)}", file=sys.stderr)
        return 2

    scripts = Compiler().compile_suite(suite)
    catalogue = target.faults_factory()
    if args.faults:
        names = [name.strip() for name in args.faults.split(",") if name.strip()]
        try:
            faults = [catalogue.get(name)
                      for name in dict.fromkeys(names)]  # dedupe, keep order
        except Exception as exc:
            print(f"error: {exc}; known faults: {', '.join(catalogue.names)}",
                  file=sys.stderr)
            return 2
    else:
        faults = list(catalogue)

    stand_factory = _campaign_stand_factory(args.stand, target)
    if stand_factory is None:
        print(f"error: stand {args.stand!r} has no adapter for DUT "
              f"{suite.dut!r}; use one of {sorted(ADAPTABLE_STANDS)}",
              file=sys.stderr)
        return 2

    campaign = FaultCampaign(
        scripts,
        target.signals_factory(),
        stand_factory,
        target.harness_factory,
        target.ecu_factory,
        policy=args.policy,
        executor=make_executor(args.backend, args.jobs),
        max_attempts=1 + max(0, args.retries),
    )
    try:
        result = campaign.run(faults)
    except Exception as exc:
        print(f"error: campaign failed: {exc}", file=sys.stderr)
        return 1

    if not args.quiet:
        print(result.table())
    print(result.summary())
    if result.execution is not None:
        # Timing is scheduling-dependent, so it goes to stderr: stdout stays
        # byte-identical across --jobs / --backend choices.
        print(result.execution.summary(), file=sys.stderr)
    # Exit 1 only for genuine regressions: a dirty baseline, or a fault the
    # catalogue expects the suite to catch slipping through.  Detecting a
    # fault that was *not* expected to be caught is a pleasant surprise (a
    # richer suite closed a knowledge gap), never a failure.
    missed = [o for o in result.outcomes if o.fault.expected_detected and not o.detected]
    return 0 if result.baseline_clean and not missed else 1


def main_report(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-report``."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Summarise an XML test script without executing it.",
    )
    parser.add_argument("script", help="path of the XML test script")
    args = parser.parse_args(argv)

    script = read_script(args.script)
    print(f"script    : {script.name}")
    print(f"DUT       : {script.dut}")
    print(f"steps     : {len(script.steps)}")
    print(f"actions   : {script.action_count()}")
    print(f"duration  : {script.total_duration:g} s (simulated)")
    print(f"signals   : {', '.join(script.signals_used())}")
    print(f"methods   : {', '.join(script.methods_used())}")
    print(f"variables : {', '.join(script.variables) or '-'}")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_run())
