"""Command-line entry points.

Four small tools mirror the paper's workflow; all of them are thin layers
over the public target registry in :mod:`repro.targets`:

``repro-compile <workbook dir> <output dir>``
    read a CSV workbook (signal / status / test sheets) and generate one XML
    test script per test definition sheet,
``repro-run <script.xml> [--stand NAME] [--policy NAME]``
    execute an XML test script on one of the registered virtual test stands
    against the matching registered DUT and print the report,
``repro-report <script.xml>``
    print a static summary of a script (signals, methods, duration) without
    executing it; with ``--store PATH`` it reads the persistent result
    store instead (``--list`` runs, ``--run ID`` byte-identical re-render,
    ``--diff A B`` per-sheet verdict deltas, ``--html DIR`` static report
    site),
``repro-campaign [<workbook dir>] [--dut NAME] [--stand NAME] [--jobs N]``
    run a fault-injection campaign for a DUT across a configurable worker
    pool, either from a compiled CSV workbook or - with ``--dut`` - from the
    DUT's bundled suite.  ``--backend`` picks one of the serial / thread /
    process / async execution backends (``--backend async --concurrency N``
    multiplexes up to N stands on one worker by awaiting instrument I/O).
    ``--list-targets`` prints every registered DUT and stand.
    ``--profile`` adds a per-phase timing breakdown (job expansion /
    allocation / instrument I/O / aggregation, plan-cache hit rate) on
    stderr.  ``--store PATH`` records the finished campaign into the
    persistent result store (see :mod:`repro.store`), ``--format json``
    emits a JSON document (rendered table + full execution report) instead
    of the text table.  The verdict tables on stdout are byte-identical
    for any ``--jobs`` / ``--backend`` / ``--concurrency`` combination;
    timing goes to stderr.

Exit codes distinguish verdicts from infrastructure problems so CI
consumers can tell DUT regressions from broken setups:

* ``0`` - the run / campaign passed,
* ``1`` - the DUT misbehaved (a FAIL verdict, a dirty campaign baseline, or
  a fault the catalogue expects to be caught slipping through),
* ``2`` - the test could not be executed (unknown DUT / stand / fault,
  unreadable script or workbook, no stand adapter, an ERROR verdict).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, NamedTuple, Sequence

from .core.xmlgen import write_script
from .core.xmlparse import read_script
from .core.compiler import Compiler
from .dut.harness import TestHarness
from .analysis.faults import FaultCatalogue
from .sheets.workbook import load_suite
from .teststand.allocator import ALLOCATION_POLICIES
from .teststand.executor import EXECUTION_BACKENDS
from .teststand.report import summary_line, text_report
from .teststand.verdict import Verdict
from . import chaos as chaos_mod
from . import targets
from .targets import CampaignSpec, RunSpec, TargetError

__all__ = [
    "main_compile",
    "main_run",
    "main_report",
    "main_campaign",
    # deprecated shims, see below
    "CampaignTarget",
    "CAMPAIGN_TARGETS",
    "STAND_BUILDERS",
    "ADAPTABLE_STANDS",
]

#: Exit code for infrastructure errors (vs. 1 for genuine DUT regressions).
EXIT_ERROR = 2


def main_compile(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-compile``: workbook directory -> XML scripts.

    Loads the CSV workbook (``signals.csv``, ``status.csv``, ``test_*.csv``),
    compiles every test definition sheet and writes one XML test script per
    sheet into the output directory.  Returns 0 on success, 2 when the
    workbook cannot be loaded or the scripts cannot be written.
    """
    parser = argparse.ArgumentParser(
        prog="repro-compile",
        description="Generate XML test scripts from a CSV workbook directory.",
    )
    parser.add_argument("workbook", help="directory containing signals.csv, status.csv, test_*.csv")
    parser.add_argument("output", help="directory to write the generated XML scripts into")
    args = parser.parse_args(argv)

    try:
        suite = load_suite(args.workbook)
    except Exception as exc:
        print(f"error: cannot load workbook {args.workbook!r}: {exc}", file=sys.stderr)
        return EXIT_ERROR
    compiler = Compiler()
    written = []
    try:
        os.makedirs(args.output, exist_ok=True)
        for test in suite:
            script = compiler.compile_test(suite, test)
            path = os.path.join(args.output, f"{script.name}.xml")
            write_script(script, path)
            written.append(path)
    except Exception as exc:
        print(f"error: cannot write scripts to {args.output!r}: {exc}",
              file=sys.stderr)
        return EXIT_ERROR
    print(f"compiled {len(written)} test script(s) from {args.workbook!r}:")
    for path in written:
        print(f"  {path}")
    return 0


def main_run(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-run``: execute one XML script on one stand.

    Expands a :class:`~repro.targets.RunSpec` through the registry (the
    script's own DUT name picks the registered target; ``--stand`` defaults
    to a stand carrying that DUT's adapter) and prints the step-by-step
    report.  Returns 0 when the script passed, 1 on a FAIL verdict, 2 when
    the script could not be executed at all.
    """
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Execute an XML test script on a registered virtual test stand.",
    )
    parser.add_argument("script", help="path of the XML test script")
    parser.add_argument("--stand", choices=targets.stand_names(), default=None,
                        help="which virtual test stand to use (default: one "
                             "that carries the DUT's adapter)")
    parser.add_argument("--policy", choices=ALLOCATION_POLICIES,
                        default="first_fit", help="resource allocation policy")
    parser.add_argument("--quiet", action="store_true", help="print only the summary line")
    args = parser.parse_args(argv)

    try:
        script = read_script(args.script)
    except Exception as exc:
        print(f"error: cannot read script {args.script!r}: {exc}", file=sys.stderr)
        return EXIT_ERROR
    try:
        result = targets.run_single(
            RunSpec(script=script, stand=args.stand, policy=args.policy)
        )
    except TargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except Exception as exc:
        # A crashing (possibly third-party) factory or stand builder is an
        # infrastructure problem; keep the documented exit-2 contract.
        print(f"error: run failed: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.quiet:
        print(summary_line(result))
    else:
        print(text_report(result))
    if result.verdict is Verdict.ERROR:
        # The script could not be executed (allocation failure, unknown
        # signal, instrument error) - an infrastructure problem, not a
        # verdict about the DUT.
        return EXIT_ERROR
    return 0 if result.passed else 1


# -- fault campaigns ------------------------------------------------------------

def _coverage_cell(missing: tuple[str, ...] | None) -> str:
    if missing is None:
        return "unknown"
    if not missing:
        return "ok"
    return "no " + ", no ".join(missing)


def _lint_cell(report, dut_name: str) -> str:
    """Per-DUT lint counts for the ``--list-targets --lint`` listing."""
    findings = [f for f in report.findings if f.dut == dut_name]
    if not findings:
        return "clean"
    counts = {}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return ", ".join(
        f"{counts[severity]} {severity}(s)"
        for severity in ("error", "warning", "note")
        if severity in counts
    )


def _print_target_listing(*, lint: bool = False) -> None:
    """Print the registered DUTs and stands with their method coverage
    (``--list-targets``).

    Per DUT the ``coverage:`` line shows every stand carrying the DUT's
    adapter and whether it supports all methods of the bundled suite
    (e.g. ``bare_bench no get_i``) - the registration-time capability
    negotiation that :func:`repro.targets.run_campaign` enforces as a
    pre-flight check.  With ``--lint`` a ``lint:`` line is appended per
    DUT with the static analyzer's finding counts (``repro-lint`` prints
    the findings themselves).
    """
    report = None
    if lint:
        from .lint import run_lint

        report = run_lint()
    print("registered DUTs:")
    for target in sorted(targets.iter_duts(), key=lambda t: t.key):
        sheets = len(target.suite_factory()) if target.suite_factory else 0
        fault_count = len(target.faults_factory()) if target.faults_factory else 0
        pins = ", ".join(target.pins) if target.pins else "paper default"
        print(f"  {target.name}")
        print(f"      {target.description or '-'}")
        print(f"      sheets: {sheets}  faults: {fault_count}  adapter pins: {pins}")
        if target.required_methods:
            print(f"      suite methods: {', '.join(target.required_methods)}")
        coverage = targets.method_coverage(target)
        if coverage:
            rendered = "; ".join(
                f"{stand} {_coverage_cell(missing)}"
                for stand, missing in coverage.items()
            )
            print(f"      coverage: {rendered}")
        if report is not None:
            print(f"      lint: {_lint_cell(report, target.name)}")
    compositions = sorted(targets.iter_compositions(), key=lambda t: t.key)
    if compositions:
        print("registered compositions:")
        for comp in compositions:
            sheets = len(comp.suite_factory())
            fault_count = len(comp.faults_factory())
            members = ", ".join(
                f"{member.alias}={member.dut}" for member in comp.members
            )
            print(f"  {comp.name}  (--compose {comp.name})")
            print(f"      {comp.description or '-'}")
            print(f"      members: {members}")
            print(f"      sheets: {sheets}  member faults: {fault_count}  "
                  f"adapter pins: {', '.join(comp.pins)}")
    print("registered stands:")
    for stand in sorted(targets.iter_stands(), key=lambda t: t.key):
        kind = "adaptable" if stand.adaptable else "fixed paper pinning"
        print(f"  {stand.name} ({kind}): {stand.description or '-'}")
        methods = ", ".join(stand.methods) if stand.methods is not None \
            else "unknown (builder could not be probed)"
        print(f"      methods: {methods}")


def _run_profiled_campaign(spec, *, quiet: bool = False):
    """Run *spec* with per-phase timing; returns (result, rendered, lines).

    Phases: *job expansion* (spec -> compiled scripts -> jobs), *execution*
    (the whole backend run) split into the interpreter-attributed
    *allocation* (full searches only - plan replays cost next to nothing
    and show up as the hit rate instead) and *instrument I/O* shares, and
    *aggregation* (rendering exactly the table/summary this invocation
    prints - the strings are returned so the caller prints rather than
    re-renders them).  The plan-cache delta over the campaign is reported
    alongside.  Worker processes ship their phase timings and plan-cache
    counters back with each result chunk, so ``--backend process`` shows
    the worker-side phases too (summed across workers, so they can exceed
    the parent's execution wall clock).
    """
    import time as _time

    from .teststand.plan import GLOBAL_PLAN_CACHE
    from .teststand.profiling import PROFILER

    cache_before = GLOBAL_PLAN_CACHE.stats.snapshot()
    PROFILER.reset()
    PROFILER.enable()
    try:
        t0 = _time.perf_counter()
        campaign, faults = targets.build_campaign(spec)
        t1 = _time.perf_counter()
        result = campaign.run(faults)
        t2 = _time.perf_counter()
        rendered = {
            "table": None if quiet else result.table(),
            "summary": result.summary(),
        }
        t3 = _time.perf_counter()
    finally:
        PROFILER.disable()
    phases = PROFILER.snapshot()
    cache_after = GLOBAL_PLAN_CACHE.stats.snapshot()
    delta = {key: cache_after[key] - cache_before[key]
             for key in ("plans_compiled", "plan_hits", "plan_misses",
                         "action_replays", "action_fallbacks",
                         "vm_runs", "vm_degraded", "alloc_only_runs")}
    replays, fallbacks = delta["action_replays"], delta["action_fallbacks"]
    visits = replays + fallbacks
    # A campaign fully rejected pre-flight (or one served end-to-end by the
    # VM) performs zero per-action allocator visits; a rate would divide by
    # zero, and 0% would misread as "the cache did nothing useful".
    hit_rate = f"{replays / visits:.0%} hit rate" if visits else "n/a hit rate"

    def _phase(name: str) -> str:
        seconds, calls = phases.get(name, (0.0, 0))
        return f"{seconds:.3f} s across {calls} call(s)"

    lines = [
        f"profile: job expansion  {t1 - t0:.3f} s",
        f"profile: execution      {t2 - t1:.3f} s "
        f"(allocation {_phase('allocation')}; "
        f"instrument I/O {_phase('instrument_io')}; "
        f"VM {_phase('vm_execute')})",
        f"profile: aggregation    {t3 - t2:.3f} s",
        f"profile: plan cache     {delta['plans_compiled']} compile(s), "
        f"{delta['plan_hits']} plan hit(s) / {delta['plan_misses']} miss(es); "
        f"{replays} action replay(s) / {fallbacks} fallback(s) "
        f"({hit_rate})",
        f"profile: vm             {delta['vm_runs']} run(s) on the bytecode "
        f"VM, {delta['alloc_only_runs']} classic, "
        f"{delta['vm_degraded']} degraded pre-flight",
    ]
    return result, rendered, lines


def main_campaign(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-campaign``: fault-injection campaigns.

    Builds a :class:`~repro.targets.CampaignSpec` from the arguments (a
    workbook directory, or ``--dut`` for a registered DUT's bundled suite)
    and runs it on the chosen execution backend: ``--jobs N`` sizes the
    thread / process pools, ``--backend async --concurrency N`` multiplexes
    up to N stands on one worker.  The verdict table on stdout is
    byte-identical for every backend choice; timing goes to stderr.
    Returns 0 on a clean campaign, 1 for genuine DUT regressions (dirty
    baseline, expected-caught fault escaping), 2 for infrastructure
    problems (unknown targets, capability gaps, ERROR baselines).
    """
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run a fault-injection campaign for a registered DUT "
                    "across a worker pool.",
    )
    parser.add_argument("workbook", nargs="?", default=None,
                        help="directory containing signals.csv, status.csv, "
                             "test_*.csv (omit to use the bundled suite of --dut)")
    parser.add_argument("--dut", default=None, metavar="NAME",
                        help="registered DUT whose bundled suite to campaign "
                             "(required when no workbook is given)")
    parser.add_argument("--compose", default=None, metavar="NAME",
                        help="registered multi-ECU composition to campaign "
                             "(e.g. lock+cluster): its members share one CAN "
                             "bus and the interaction suite drives them "
                             "end-to-end; mutually exclusive with --dut")
    parser.add_argument("--stand", choices=targets.stand_names(), default=None,
                        help="which virtual test stand to use (default: one "
                             "that carries the DUT's adapter)")
    parser.add_argument("--policy", choices=ALLOCATION_POLICIES,
                        default="first_fit", help="resource allocation policy")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker count for parallel execution (default: 1)")
    parser.add_argument("--backend", choices=EXECUTION_BACKENDS + ("auto",),
                        default="auto",
                        help="execution backend (default: auto = serial for "
                             "--jobs 1, threads otherwise; async multiplexes "
                             "many stands on one worker)")
    parser.add_argument("--concurrency", type=int, default=0, metavar="N",
                        help="multiplex width of the async backend: how many "
                             "stands the one async worker may keep in flight "
                             "(default: --jobs, or 8 when that is 1; other "
                             "backends ignore it)")
    parser.add_argument("--faults", default="",
                        help="comma-separated fault names to inject "
                             "(default: the DUT's whole catalogue)")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="extra attempts per job after a transient error "
                             "(default: 1; 0 disables retrying)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock budget shared across its "
                             "retry attempts; a job that overruns it is "
                             "reported as an ERROR (JobTimeoutError) "
                             "instead of hanging the campaign")
    parser.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                        help="inject deterministic infrastructure faults "
                             "from this seed (see docs/robustness.md); the "
                             "same seed reproduces the same fault schedule "
                             "on every backend")
    parser.add_argument("--chaos-profile",
                        choices=sorted(chaos_mod.PROFILES), default=None,
                        help="which chaos fault mix to inject (default with "
                             "--chaos-seed: flaky-instruments)")
    parser.add_argument("--vm", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="execute runs on the compiled bytecode VM when "
                             "the cached plan carries a program (default: "
                             "on; --no-vm forces the classic per-action "
                             "interpreter - the verdict table is "
                             "byte-identical either way)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="record the finished campaign into the "
                             "persistent result store at PATH (sqlite; "
                             "created on first use); the assigned run id "
                             "is reported on stderr and the stored run "
                             "re-renders this stdout byte-identically via "
                             "repro-report --store PATH --run ID")
    parser.add_argument("--resume", action="store_true",
                        help="checkpoint each finished job into --store and "
                             "skip jobs already checkpointed by an earlier "
                             "(killed) run of the same campaign; the final "
                             "report is byte-identical to an uninterrupted "
                             "run (requires --store)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="stdout format: the default text verdict "
                             "table, or a single JSON document carrying "
                             "the rendered table/summary plus the full "
                             "schema-versioned execution report "
                             "(ExecutionReport.to_dict)")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the campaign summary line "
                             "(text format)")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase timing breakdown (job "
                             "expansion / allocation / instrument I/O / "
                             "aggregation, plus the plan-cache hit rate and "
                             "VM run counts) on stderr; the process backend "
                             "merges its workers' phase timings in")
    parser.add_argument("--list-targets", action="store_true",
                        help="list the registered DUTs and stands, then exit")
    parser.add_argument("--lint", action="store_true",
                        help="with --list-targets: append each DUT's static-"
                             "analysis finding counts (see repro-lint)")
    args = parser.parse_args(argv)

    if args.list_targets:
        _print_target_listing(lint=args.lint)
        return 0
    if args.dut is not None and args.compose is not None:
        parser.error("--dut and --compose are mutually exclusive")
    if args.workbook is not None and args.compose is not None:
        parser.error("--compose uses the composition's bundled interaction "
                     "suite; a workbook directory cannot be combined with it")
    if args.workbook is None and args.dut is None and args.compose is None:
        parser.error("a workbook directory, --dut NAME or --compose NAME "
                     "is required")
    if args.resume and args.store is None:
        parser.error("--resume checkpoints into the result store and needs "
                     "--store PATH")
    if args.chaos_profile is not None and args.chaos_seed is None:
        parser.error("--chaos-profile needs --chaos-seed N (the seed makes "
                     "the fault schedule deterministic)")

    try:
        spec = CampaignSpec(
            dut=args.dut,
            composition=args.compose,
            workbook=args.workbook,
            stand=args.stand,
            faults=args.faults,  # comma-separated; parsed by CampaignSpec
            policy=args.policy,
            backend=args.backend,
            jobs=args.jobs,
            concurrency=args.concurrency,
            retries=args.retries,
            use_vm=args.vm,
            store=args.store,
            resume=args.resume,
            deadline=args.deadline,
            chaos_seed=args.chaos_seed,
            chaos_profile=args.chaos_profile or "",
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    try:
        if args.profile:
            result, rendered, profile_lines = _run_profiled_campaign(
                spec, quiet=args.quiet)
        else:
            result = targets.run_campaign(spec)
            rendered = {}
            profile_lines = ()
    except TargetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except Exception as exc:
        print(f"error: campaign failed: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.format == "json":
        import json as _json

        document = {
            "kind": "campaign-result",
            "dut": args.dut,
            "composition": args.compose,
            "table": rendered.get("table") or result.table(),
            "summary": rendered.get("summary") or result.summary(),
            "store_run_id": result.store_run_id,
            "execution": result.execution.to_dict()
            if result.execution is not None else None,
        }
        print(_json.dumps(document, indent=2))
    else:
        if not args.quiet:
            print(rendered.get("table") or result.table())
        print(rendered.get("summary") or result.summary())
    if result.store_run_id is not None:
        print(f"recorded as run {result.store_run_id} in {args.store}",
              file=sys.stderr)
    if result.execution is not None:
        # Timing is scheduling-dependent, so it goes to stderr: stdout stays
        # byte-identical across --jobs / --backend choices.
        print(result.execution.summary(), file=sys.stderr)
    for line in profile_lines:
        print(line, file=sys.stderr)
    # An ERROR verdict on the *healthy* baseline means the campaign could
    # not actually be executed (allocation failure, unknown signal,
    # instrument fault) - an infrastructure problem, never a statement
    # about the DUT; without this check it would masquerade as a dirty
    # baseline or even as detections.  An ERROR that appears only under an
    # injected fault is attributable to that fault and counts as a
    # legitimate detection.
    if any(r.verdict is Verdict.ERROR for r in result.baseline):
        where = ("re-run without --quiet for the per-script detail"
                 if args.quiet else "see table")
        print(f"error: the baseline contains ERROR verdicts ({where}); "
              "the campaign could not actually be executed", file=sys.stderr)
        return EXIT_ERROR
    # Exit 1 only for genuine regressions: a dirty baseline, or a fault the
    # catalogue expects the suite to catch slipping through.  Detecting a
    # fault that was *not* expected to be caught is a pleasant surprise (a
    # richer suite closed a knowledge gap), never a failure.
    missed = [o for o in result.outcomes if o.fault.expected_detected and not o.detected]
    return 0 if result.baseline_clean and not missed else 1


def _report_from_store(args, parser: argparse.ArgumentParser) -> int:
    """The ``repro-report --store`` modes: list / re-render / diff / html."""
    import json as _json
    from datetime import datetime, timezone

    from .store import ResultStore, StoreError
    from .teststand.report import format_table

    modes = [args.list, args.run is not None, args.diff is not None,
             args.html is not None]
    if sum(1 for mode in modes if mode) != 1:
        parser.error("--store needs exactly one of --list, --run ID, "
                     "--diff A B or --html DIR")
    try:
        store = ResultStore(args.store)
        if args.list:
            runs = store.list_runs()
            if args.format == "json":
                print(_json.dumps([
                    {
                        "run": info.run_id, "created_at": info.created_at,
                        "dut": info.dut, "stand": info.stand,
                        "backend": info.backend, "workers": info.workers,
                        "jobs": info.jobs, "verdict": info.verdict,
                        "wall_time": info.wall_time, "git_sha": info.git_sha,
                        "repro_version": info.repro_version,
                    }
                    for info in runs
                ], indent=2))
            else:
                header = ("run", "recorded (UTC)", "dut", "backend", "jobs",
                          "verdict", "version", "git")
                rows = [
                    (str(info.run_id),
                     datetime.fromtimestamp(info.created_at, timezone.utc)
                     .strftime("%Y-%m-%d %H:%M:%S"),
                     info.dut or "-", info.backend, str(info.jobs),
                     info.verdict.upper(), info.repro_version,
                     info.git_sha[:12] or "-")
                    for info in runs
                ]
                print(format_table(header, rows))
            return 0
        if args.run is not None:
            run = store.get_run(args.run)
            if args.format == "json":
                print(_json.dumps(run.execution_report().to_dict(), indent=2))
            else:
                # Byte-identical to the repro-campaign stdout that produced
                # the run: fault table + campaign summary line.
                print(run.render())
            return 0
        if args.diff is not None:
            diff = store.diff_runs(args.diff[0], args.diff[1])
            if args.format == "json":
                print(_json.dumps({
                    "run_a": diff.run_a, "run_b": diff.run_b,
                    "empty": diff.empty,
                    "changed": [
                        {"job": d.job, "verdict_a": d.verdict_a,
                         "verdict_b": d.verdict_b}
                        for d in diff.changed
                    ],
                    "only_a": list(diff.only_a),
                    "only_b": list(diff.only_b),
                }, indent=2))
            else:
                print(diff.table())
                print(diff.summary())
            return 0 if diff.empty else 1
        from .service.reportgen import generate_site
        written = generate_site(store, args.html)
        print(f"wrote {len(written)} page(s) to {args.html}")
        return 0
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except OSError as exc:
        print(f"error: cannot use store {args.store!r}: {exc}",
              file=sys.stderr)
        return EXIT_ERROR


def main_report(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-report``: script summaries and stored runs.

    Without ``--store`` it prints a static summary of an XML script (DUT,
    step/action counts, simulated duration, signals / methods / variables)
    without executing anything.  With ``--store PATH`` it reads the
    persistent result store instead: ``--list`` the recorded runs,
    ``--run ID`` re-renders one run's fault table byte-identically to the
    ``repro-campaign`` stdout that produced it (``--format json`` emits the
    full schema-versioned execution report), ``--diff A B`` prints per-sheet
    verdict deltas (exit 1 when the runs differ), and ``--html DIR``
    generates the static HTML report site.  Returns 0, 1 for a non-empty
    diff, 2 for unreadable scripts or store problems.
    """
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Summarise an XML test script, or list / re-render / "
                    "diff / export runs from a persistent result store.",
    )
    parser.add_argument("script", nargs="?", default=None,
                        help="path of the XML test script (omit when using "
                             "--store)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="read the persistent result store at PATH "
                             "instead of a script")
    parser.add_argument("--list", action="store_true",
                        help="with --store: list the recorded runs")
    parser.add_argument("--run", type=int, default=None, metavar="ID",
                        help="with --store: re-render the stored run "
                             "(byte-identical to the producing "
                             "repro-campaign stdout)")
    parser.add_argument("--diff", nargs=2, type=int, default=None,
                        metavar=("A", "B"),
                        help="with --store: per-sheet verdict deltas "
                             "between two runs (exit 1 when not empty)")
    parser.add_argument("--html", default=None, metavar="DIR",
                        help="with --store: generate the static HTML "
                             "report site into DIR")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format for --list / --run / --diff")
    args = parser.parse_args(argv)

    if args.store is not None:
        if args.script is not None:
            parser.error("--store cannot be combined with a script path")
        return _report_from_store(args, parser)
    if args.script is None:
        parser.error("a script path or --store PATH is required")

    try:
        script = read_script(args.script)
    except Exception as exc:
        print(f"error: cannot read script {args.script!r}: {exc}", file=sys.stderr)
        return EXIT_ERROR
    print(f"script    : {script.name}")
    print(f"DUT       : {script.dut}")
    print(f"steps     : {len(script.steps)}")
    print(f"actions   : {script.action_count()}")
    print(f"duration  : {script.total_duration:g} s (simulated)")
    print(f"signals   : {', '.join(script.signals_used())}")
    print(f"methods   : {', '.join(script.methods_used())}")
    print(f"variables : {', '.join(script.variables) or '-'}")
    return 0


# -- deprecated shims -----------------------------------------------------------
#
# Before the repro.targets registry existed this module owned the wiring
# tables.  The historical names below are kept as thin views of the registry
# so pre-existing imports keep working; new code should use repro.targets.

class CampaignTarget(NamedTuple):
    """Deprecated: use :class:`repro.targets.DutTarget` instead."""

    ecu_factory: Callable[[], object]
    harness_factory: Callable[[object], TestHarness]
    signals_factory: Callable[[], object]
    faults_factory: Callable[[], FaultCatalogue]
    pins: tuple[str, ...] | None = None


def _campaign_targets() -> dict[str, CampaignTarget]:
    return {
        target.name: CampaignTarget(
            target.ecu_factory, target.harness_factory,
            target.signals_factory, target.faults_factory, target.pins,
        )
        for target in targets.iter_duts()
        if target.campaignable
    }


def __getattr__(name: str):
    # Live, read-only views of the registry (PEP 562): legacy readers of
    # these names see registrations made after this module was imported,
    # exactly like ``--list-targets`` does.  The views are mapping proxies
    # so that old-style in-place registration (``STAND_BUILDERS["lab"] =
    # ...``) fails loudly instead of mutating a throwaway snapshot - such
    # code must move to repro.targets.register_stand / register_dut.
    from types import MappingProxyType

    if name == "CAMPAIGN_TARGETS":
        return MappingProxyType(_campaign_targets())
    if name == "STAND_BUILDERS":
        return MappingProxyType(
            {stand.name: stand.builder for stand in targets.iter_stands()}
        )
    if name == "ADAPTABLE_STANDS":
        return targets.adaptable_stand_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _dut_registry() -> dict[str, Callable[[], TestHarness]]:
    """Deprecated: harness factories per DUT (use :func:`repro.targets.get_dut`)."""
    return {target.name: target.build_harness for target in targets.iter_duts()}


def _campaign_stand_factory(stand: str, target: CampaignTarget):
    """Deprecated: use :func:`repro.targets.stand_factory_for` instead."""
    try:
        return targets.get_stand(stand).factory_for(target.pins)
    except TargetError:
        return None


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_run())
