"""The campaign job queue: specs in, recorded runs out.

:class:`CampaignService` is the execution half of campaign-as-a-service: it
accepts declarative :class:`~repro.targets.CampaignSpec` objects, executes
them **one at a time** on a dedicated worker thread through the ordinary
:func:`repro.targets.run_campaign` path (so every executor backend, the
plan cache and the capability negotiation behave exactly as they do for
the CLI), records each finished campaign into the service's
:class:`~repro.store.ResultStore`, and tracks per-job progress through the
states of :data:`JOB_STATES`:

``queued``  submitted, waiting for the worker
``running`` the worker is executing the campaign
``done``    finished and recorded; ``run_id`` points into the store
``failed``  the campaign raised; ``error`` carries the message

One worker is deliberate: campaigns parallelise *internally* (the spec's
``backend`` / ``jobs`` / ``concurrency`` fields), so a second service
worker would only make two campaigns fight over the same cores while
interleaving their plan-cache and stand-pool state.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
from dataclasses import replace

from .. import chaos as _chaos
from ..core.errors import ReproError, TransientError
from ..store import ResultStore
from ..targets import CampaignSpec, run_campaign

__all__ = ["JOB_STATES", "ServiceError", "CampaignService"]

#: Lifecycle states of a submitted campaign job, in order.
JOB_STATES = ("queued", "running", "done", "failed")


class ServiceError(ReproError):
    """A service operation failed (unknown job, shut down, bad spec...)."""


class _ServiceJob:
    """Internal mutable record of one submitted campaign."""

    def __init__(self, job_id: int, spec: CampaignSpec):
        self.job_id = job_id
        self.spec = spec
        self.state = "queued"
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.run_id: int | None = None
        self.error = ""
        self.summary = ""
        self.done = threading.Event()

    def snapshot(self) -> dict:
        """JSON-safe view of the job - what the API serves."""
        return {
            "job": self.job_id,
            "state": self.state,
            "dut": self.spec.dut,
            "stand": self.spec.stand,
            "backend": self.spec.backend,
            "faults": list(self.spec.faults),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "run_id": self.run_id,
            "error": self.error,
            "summary": self.summary,
        }


class CampaignService:
    """Worker-thread job queue over the target registry and a result store.

    >>> service = CampaignService("results.db")
    >>> job = service.submit(CampaignSpec(dut="wiper_ecu"))
    >>> service.wait(job)["state"]
    'done'
    >>> service.store.get_run(service.status(job)["run_id"]).render()

    *store* may be a ready :class:`~repro.store.ResultStore` or a path
    (including ``":memory:"`` for a store that lives and dies with the
    service).  *runner* exists for tests: any callable with
    :func:`~repro.targets.run_campaign`'s signature.
    """

    def __init__(self, store: ResultStore | str, *, runner=None):
        self.store = store if isinstance(store, ResultStore) \
            else ResultStore(store)
        self._runner = runner or run_campaign
        self._queue: queue_module.SimpleQueue = queue_module.SimpleQueue()
        self._jobs: dict[int, _ServiceJob] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False
        #: Times the worker loop died on a transient infrastructure error
        #: (e.g. an injected :func:`repro.chaos.maybe_service_crash`) and
        #: was restarted by the supervisor.  Queued jobs survive restarts.
        self.worker_restarts = 0
        self._worker = threading.Thread(
            target=self._supervise, name="repro-campaign-service",
            daemon=True)
        self._worker.start()

    # -- submission / inspection -------------------------------------------

    def submit(self, spec: CampaignSpec) -> int:
        """Enqueue a campaign; returns its job id immediately."""
        if not isinstance(spec, CampaignSpec):
            raise ServiceError(
                f"expected a CampaignSpec, got {type(spec).__name__}")
        with self._lock:
            if self._closed:
                raise ServiceError("the campaign service has been shut down")
            job = _ServiceJob(next(self._ids), spec)
            self._jobs[job.job_id] = job
        self._queue.put(job)
        return job.job_id

    def _job(self, job_id: int) -> _ServiceJob:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown campaign job {job_id}")
        return job

    def status(self, job_id: int) -> dict:
        """JSON-safe snapshot of one job (state, timestamps, run id...)."""
        return self._job(job_id).snapshot()

    def jobs(self) -> list[dict]:
        """Snapshots of every submitted job, in submission order."""
        with self._lock:
            records = list(self._jobs.values())
        return [job.snapshot() for job in records]

    def wait(self, job_id: int, timeout: float | None = None) -> dict:
        """Block until a job reaches ``done`` / ``failed``; returns its
        snapshot.  Raises :class:`ServiceError` when *timeout* expires
        first."""
        job = self._job(job_id)
        if not job.done.wait(timeout):
            raise ServiceError(
                f"campaign job {job_id} did not finish within {timeout} s "
                f"(state {job.state!r})"
            )
        return job.snapshot()

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, *, wait: bool = True,
                 timeout: float | None = None) -> None:
        """Stop accepting jobs and (optionally) wait for the worker to
        drain the queue.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        if wait:
            self._worker.join(timeout)

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- the worker ---------------------------------------------------------

    def _supervise(self) -> None:
        """Keep the worker loop alive across transient infrastructure
        deaths: a :class:`~repro.core.errors.TransientError` escaping
        :meth:`_work` (the chaos harness crashes the worker *between*
        jobs, never inside one) restarts the loop; anything else is a real
        bug and propagates."""
        while True:
            try:
                self._work()
                return
            except TransientError:
                with self._lock:
                    self.worker_restarts += 1

    def _work(self) -> None:
        while True:
            # Chaos hook: an installed policy may crash the service worker
            # here, before the next job is claimed, so no submission is
            # ever lost - the supervisor restarts the loop and the job is
            # still queued.
            if _chaos.ACTIVE is not None:
                _chaos.maybe_service_crash()
            job = self._queue.get()
            if job is None:
                return
            job.state = "running"
            job.started_at = time.time()
            try:
                # The service records through its own store object; a store
                # path on the submitted spec would open a second database.
                spec = replace(job.spec, store=None)
                result = self._runner(spec)
                job.run_id = self.store.record_campaign(result, spec)
                job.summary = result.summary()
                job.state = "done"
            except Exception as exc:  # any failure is the job's, not ours
                job.error = str(exc) or type(exc).__name__
                job.state = "failed"
            finally:
                job.finished_at = time.time()
                job.done.set()
