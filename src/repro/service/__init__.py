"""Campaign-as-a-service: job queue, JSON API and HTML report generator.

The service layer turns the declarative campaign API
(:class:`~repro.targets.CampaignSpec` / :func:`~repro.targets.run_campaign`)
into a long-running facility backed by the persistent result store
(:mod:`repro.store`):

:class:`CampaignService` (:mod:`repro.service.queue`)
    accepts specs, executes them one at a time on a worker thread through
    the ordinary executor backends, records every finished campaign, and
    tracks per-job states (queued / running / done / failed).
:class:`CampaignApp` (:mod:`repro.service.api`)
    a thin WSGI JSON API over the service - ``POST /campaigns``,
    ``GET /campaigns/<id>``, ``GET /runs/<id>/report``, ``GET /targets`` -
    served by the ``repro-serve`` console script
    (:mod:`repro.service.cli`).
:func:`generate_site` (:mod:`repro.service.reportgen`)
    static HTML rendering of the store: run index, per-run fault table +
    detection-coverage matrix, run-vs-run diff pages
    (``repro-report --store PATH --html DIR``).

Kept out of the top-level ``repro`` import on purpose: ``import
repro.service`` explicitly when you need it.
"""

from .api import CampaignApp, SPEC_FIELDS
from .queue import JOB_STATES, CampaignService, ServiceError
from .reportgen import generate_site, write_diff_page, write_run_page

__all__ = [
    "JOB_STATES",
    "ServiceError",
    "CampaignService",
    "CampaignApp",
    "SPEC_FIELDS",
    "generate_site",
    "write_run_page",
    "write_diff_page",
]
