"""The ``repro-serve`` console entry point.

Serves the campaign service's JSON API (:mod:`repro.service.api`) over
stdlib :mod:`wsgiref.simple_server` - adequate for a lab bench or a CI
smoke job; put the :class:`~repro.service.api.CampaignApp` behind a real
WSGI container for anything bigger.  The announcement line on stderr is
machine-greppable (``repro-serve: listening on http://HOST:PORT``) so
scripts can wait for readiness.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence
from wsgiref.simple_server import WSGIRequestHandler, make_server

from ..store import ResultStore, StoreError
from .api import CampaignApp
from .queue import CampaignService

__all__ = ["main_serve"]


class _StderrRequestHandler(WSGIRequestHandler):
    """Access log on stderr (stdout stays free for machine output)."""

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        sys.stderr.write("repro-serve: %s - %s\n"
                         % (self.address_string(), format % args))


def main_serve(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-serve``: campaign service over HTTP.

    Opens (or creates) the persistent result store, starts the
    single-worker :class:`~repro.service.queue.CampaignService` and serves
    the JSON API until interrupted.  Returns 0 on a clean shutdown
    (Ctrl-C), 2 when the store or the listening socket cannot be opened.
    """
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the campaign job-queue JSON API over HTTP "
                    "(POST /campaigns, GET /campaigns/<id>, "
                    "GET /runs/<id>/report, GET /targets).",
    )
    parser.add_argument("--store", required=True, metavar="PATH",
                        help="persistent result store to record campaigns "
                             "into (sqlite file; created on first use; "
                             "':memory:' for a store that dies with the "
                             "server)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8750, metavar="N",
                        help="TCP port to listen on (default: 8750)")
    args = parser.parse_args(argv)

    try:
        store = ResultStore(args.store)
    except (StoreError, OSError) as exc:
        print(f"error: cannot open store {args.store!r}: {exc}",
              file=sys.stderr)
        return 2
    service = CampaignService(store)
    app = CampaignApp(service)
    try:
        httpd = make_server(args.host, args.port, app,
                            handler_class=_StderrRequestHandler)
    except OSError as exc:
        print(f"error: cannot listen on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        service.shutdown(wait=False)
        return 2
    print(f"repro-serve: listening on http://{args.host}:{args.port} "
          f"(store {args.store})", file=sys.stderr, flush=True)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        service.shutdown(wait=False)
    print("repro-serve: shut down", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_serve())
