"""The WSGI JSON API over :class:`~repro.service.queue.CampaignService`.

A deliberately thin HTTP layer on stdlib WSGI - no framework, no new
dependency - served by ``repro-serve`` (:mod:`repro.service.cli`) through
:mod:`wsgiref.simple_server`, or mountable under any WSGI container.
Every response body is JSON; errors are ``{"error": ...}`` with the
matching status code.

Routes (see ``docs/result-store.md`` for a curl quickstart):

``GET /``
    service metadata and the endpoint catalogue.
``GET /targets``
    the registered DUTs and stands (what a campaign may ask for).
``POST /campaigns``
    submit a campaign; the JSON body carries
    :class:`~repro.targets.CampaignSpec` fields (``dut`` or ``workbook``
    required).  Returns 202 with the job id and its polling location.
``GET /campaigns`` / ``GET /campaigns/<id>``
    job snapshots: state (queued / running / done / failed), timestamps,
    and - once done - the store ``run_id``.
``GET /runs/<id>/report``
    the recorded run: rendered fault ``table`` + ``summary`` (byte-
    identical to the producing ``repro-campaign`` stdout), the per-job
    ``verdict_table``, and the full schema-versioned ``report`` document.
``GET /runs/<a>/diff/<b>``
    per-sheet verdict deltas between two stored runs.
"""

from __future__ import annotations

import json
from typing import Callable, Iterable

from .. import targets
from ..store import StoreError
from .queue import CampaignService, ServiceError

__all__ = ["CampaignApp", "SPEC_FIELDS"]

#: CampaignSpec fields a POST /campaigns body may set.  Everything else -
#: in particular ``store`` (the service records into its own store) and
#: ``suite`` (not expressible in JSON) - is rejected with 400.
SPEC_FIELDS = (
    "dut", "workbook", "stand", "faults", "policy", "backend", "jobs",
    "concurrency", "retries", "use_plans", "reuse_stands", "preflight",
)


class _HttpError(Exception):
    def __init__(self, status: str, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _bad_request(message: str) -> _HttpError:
    return _HttpError("400 Bad Request", message)


def _not_found(message: str) -> _HttpError:
    return _HttpError("404 Not Found", message)


def _int_segment(segment: str, what: str) -> int:
    try:
        return int(segment)
    except ValueError:
        raise _not_found(f"{what} {segment!r} is not a valid id") from None


class CampaignApp:
    """WSGI application serving the campaign service's JSON API."""

    def __init__(self, service: CampaignService):
        self.service = service

    # -- WSGI entry ---------------------------------------------------------

    def __call__(self, environ: dict,
                 start_response: Callable) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET").upper()
        segments = [s for s in environ.get("PATH_INFO", "/").split("/") if s]
        try:
            status, body = self._route(method, segments, environ)
        except _HttpError as error:
            status, body = error.status, {"error": error.message}
        except (ServiceError, StoreError) as exc:
            status, body = "404 Not Found", {"error": str(exc)}
        payload = (json.dumps(body, indent=2) + "\n").encode("utf-8")
        start_response(status, [
            ("Content-Type", "application/json; charset=utf-8"),
            ("Content-Length", str(len(payload))),
        ])
        return [payload]

    # -- routing ------------------------------------------------------------

    def _route(self, method: str, segments: list[str],
               environ: dict) -> tuple[str, object]:
        if not segments:
            return self._only(method, "GET", self._index)
        if segments == ["targets"]:
            return self._only(method, "GET", self._targets)
        if segments == ["campaigns"]:
            if method == "POST":
                return self._submit(environ)
            if method == "GET":
                return "200 OK", {"jobs": self.service.jobs()}
            raise _HttpError("405 Method Not Allowed",
                             "use GET or POST on /campaigns")
        if len(segments) == 2 and segments[0] == "campaigns":
            job_id = _int_segment(segments[1], "campaign job")
            return self._only(method, "GET",
                              lambda: ("200 OK", self.service.status(job_id)))
        if len(segments) == 3 and segments[0] == "runs" \
                and segments[2] == "report":
            run_id = _int_segment(segments[1], "run")
            return self._only(method, "GET", lambda: self._report(run_id))
        if len(segments) == 4 and segments[0] == "runs" \
                and segments[2] == "diff":
            run_a = _int_segment(segments[1], "run")
            run_b = _int_segment(segments[3], "run")
            return self._only(method, "GET",
                              lambda: self._diff(run_a, run_b))
        raise _not_found(f"no such endpoint: /{'/'.join(segments)}")

    @staticmethod
    def _only(method: str, expected: str, handler):
        if method != expected:
            raise _HttpError("405 Method Not Allowed",
                             f"this endpoint only supports {expected}")
        return handler()

    # -- handlers -----------------------------------------------------------

    def _index(self) -> tuple[str, dict]:
        from .. import __version__

        return "200 OK", {
            "service": "repro campaign service",
            "version": __version__,
            "store": self.service.store.path,
            "endpoints": [
                "GET /targets",
                "POST /campaigns",
                "GET /campaigns",
                "GET /campaigns/<id>",
                "GET /runs/<id>/report",
                "GET /runs/<a>/diff/<b>",
            ],
        }

    def _targets(self) -> tuple[str, dict]:
        return "200 OK", {
            "duts": [
                {
                    "name": target.name,
                    "description": target.description,
                    "campaignable": target.campaignable,
                    "sheets": len(target.suite_factory())
                    if target.suite_factory else 0,
                    "faults": len(target.faults_factory())
                    if target.faults_factory else 0,
                    "pins": list(target.pins) if target.pins else None,
                }
                for target in sorted(targets.iter_duts(), key=lambda t: t.key)
            ],
            "stands": [
                {
                    "name": stand.name,
                    "description": stand.description,
                    "adaptable": stand.adaptable,
                    "methods": list(stand.methods) if stand.methods else None,
                }
                for stand in sorted(targets.iter_stands(), key=lambda t: t.key)
            ],
        }

    def _submit(self, environ: dict) -> tuple[str, dict]:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            raise _bad_request("invalid Content-Length") from None
        raw = environ["wsgi.input"].read(length) if length else b""
        if not raw:
            raise _bad_request("POST /campaigns needs a JSON body "
                               "with CampaignSpec fields")
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _bad_request(f"request body is not valid JSON: {exc}") \
                from None
        if not isinstance(document, dict):
            raise _bad_request("request body must be a JSON object")
        unknown = sorted(set(document) - set(SPEC_FIELDS))
        if unknown:
            raise _bad_request(
                f"unknown campaign field(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(SPEC_FIELDS)}"
            )
        if not document.get("dut") and not document.get("workbook"):
            raise _bad_request("a campaign needs a 'dut' or a 'workbook'")
        if "faults" in document and isinstance(document["faults"], list):
            document["faults"] = tuple(document["faults"])
        try:
            spec = targets.CampaignSpec(**document)
        except (TypeError, ValueError) as exc:
            raise _bad_request(f"invalid campaign spec: {exc}") from None
        job_id = self.service.submit(spec)
        return "202 Accepted", {
            "job": job_id,
            "state": "queued",
            "location": f"/campaigns/{job_id}",
        }

    def _report(self, run_id: int) -> tuple[str, dict]:
        run = self.service.store.get_run(run_id)
        report = run.execution_report()
        table = summary = None
        if run.catalogue is not None:
            result = run.campaign_result()
            table = result.table()
            summary = result.summary()
        return "200 OK", {
            "run": run.run_id,
            "created_at": run.created_at,
            "dut": run.dut,
            "git_sha": run.git_sha,
            "repro_version": run.repro_version,
            "backend": run.backend,
            "workers": run.workers,
            "wall_time": run.wall_time,
            "campaign": run.campaign,
            "table": table,
            "summary": summary,
            "verdict_table": report.verdict_table(),
            "execution_summary": report.summary(),
            "report": report.to_dict(),
        }

    def _diff(self, run_a: int, run_b: int) -> tuple[str, dict]:
        diff = self.service.store.diff_runs(run_a, run_b)
        return "200 OK", {
            "run_a": diff.run_a,
            "run_b": diff.run_b,
            "empty": diff.empty,
            "changed": [
                {"job": delta.job, "verdict_a": delta.verdict_a,
                 "verdict_b": delta.verdict_b}
                for delta in diff.changed
            ],
            "only_a": list(diff.only_a),
            "only_b": list(diff.only_b),
            "table": diff.table(),
        }
