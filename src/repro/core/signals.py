"""Signal model of the device under test.

The paper's *signal definition sheet* lists every input and output signal of
the DUT together with its status before the test starts.  A signal is a
*requirement-level* concept (``INT_ILL`` - the interior illumination), which
may map onto one or several physical DUT pins (``INT_ILL_F`` / ``INT_ILL_R``
in the paper's wiring figure) or onto a bus message (``IGN_ST`` over CAN).

Keeping the signal <-> pin mapping explicit is what makes the test
definitions independent of the test stand: the sheets only ever talk about
signals; pins and resources appear when a concrete stand interprets the
script.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .errors import CompositionError, SignalError

__all__ = ["SignalDirection", "SignalKind", "Signal", "SignalSet",
           "merge_signal_sets"]


class SignalDirection(enum.Enum):
    """Direction of a signal as seen from the device under test."""

    INPUT = "input"
    OUTPUT = "output"
    BIDIRECTIONAL = "bidirectional"

    @classmethod
    def parse(cls, text: str) -> "SignalDirection":
        """Parse the sheet spelling of a direction (``in``/``out``/...)."""
        normalised = str(text).strip().lower()
        aliases = {
            "in": cls.INPUT,
            "input": cls.INPUT,
            "stimulus": cls.INPUT,
            "out": cls.OUTPUT,
            "output": cls.OUTPUT,
            "response": cls.OUTPUT,
            "inout": cls.BIDIRECTIONAL,
            "bidir": cls.BIDIRECTIONAL,
            "bidirectional": cls.BIDIRECTIONAL,
        }
        try:
            return aliases[normalised]
        except KeyError as exc:
            raise SignalError(f"unknown signal direction: {text!r}") from exc


class SignalKind(enum.Enum):
    """Physical nature of a signal.

    The kind determines which families of methods make sense for the signal
    and which harness binding (electrical pin vs. bus message) is used.
    """

    ANALOG = "analog"          #: voltage / current carrying pin(s)
    RESISTIVE = "resistive"    #: contact sensed through its resistance
    DIGITAL = "digital"        #: logic-level pin
    BUS = "bus"                #: signal transported in a bus message (CAN)

    @classmethod
    def parse(cls, text: str) -> "SignalKind":
        normalised = str(text).strip().lower()
        aliases = {
            "analog": cls.ANALOG,
            "analogue": cls.ANALOG,
            "voltage": cls.ANALOG,
            "resistive": cls.RESISTIVE,
            "resistance": cls.RESISTIVE,
            "contact": cls.RESISTIVE,
            "switch": cls.RESISTIVE,
            "digital": cls.DIGITAL,
            "logic": cls.DIGITAL,
            "bus": cls.BUS,
            "can": cls.BUS,
            "lin": cls.BUS,
        }
        try:
            return aliases[normalised]
        except KeyError as exc:
            raise SignalError(f"unknown signal kind: {text!r}") from exc


@dataclass(frozen=True)
class Signal:
    """A requirement-level signal of the device under test.

    Parameters
    ----------
    name:
        Signal name as used in the test sheets (case preserved, compared
        case-insensitively).
    direction:
        Whether the DUT consumes (:attr:`SignalDirection.INPUT`) or produces
        (:attr:`SignalDirection.OUTPUT`) the signal.
    kind:
        Physical nature, see :class:`SignalKind`.
    pins:
        The DUT pins carrying the signal.  Empty for pure bus signals.
    message:
        Bus message name carrying the signal (bus signals only).
    initial_status:
        Status name applied before the first test step, as given in the
        signal definition sheet.
    description:
        Free-text description for reports.
    """

    name: str
    direction: SignalDirection
    kind: SignalKind
    pins: tuple[str, ...] = ()
    message: str | None = None
    initial_status: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise SignalError("signal name must not be empty")
        object.__setattr__(self, "pins", tuple(self.pins))
        if self.kind is SignalKind.BUS:
            if not self.message:
                raise SignalError(
                    f"bus signal {self.name!r} needs the carrying message name"
                )
        elif not self.pins:
            raise SignalError(
                f"signal {self.name!r} of kind {self.kind.value} needs at least one pin"
            )

    @property
    def key(self) -> str:
        """Canonical lower-case lookup key."""
        return self.name.lower()

    @property
    def is_input(self) -> bool:
        """True when the DUT consumes this signal (test stand stimulates it)."""
        return self.direction in (SignalDirection.INPUT, SignalDirection.BIDIRECTIONAL)

    @property
    def is_output(self) -> bool:
        """True when the DUT produces this signal (test stand measures it)."""
        return self.direction in (SignalDirection.OUTPUT, SignalDirection.BIDIRECTIONAL)

    @property
    def is_bus(self) -> bool:
        """True for signals transported over a bus rather than discrete pins."""
        return self.kind is SignalKind.BUS

    def __str__(self) -> str:
        return self.name


class SignalSet:
    """An ordered, case-insensitive collection of :class:`Signal` objects.

    The set corresponds to one signal definition sheet: all signals of one
    device under test, in sheet order.
    """

    def __init__(self, signals: Iterable[Signal] = (), *, dut: str = "",
                 composition: str | None = None):
        self.dut = dut
        #: Name of the multi-ECU composition this sheet belongs to, or
        #: ``None`` for a classic single-DUT sheet.  Execution layers that
        #: assume one ECU behind the harness (the bytecode VM) key off this.
        self.composition = composition
        self._signals: dict[str, Signal] = {}
        for signal in signals:
            self.add(signal)

    def add(self, signal: Signal) -> None:
        """Add a signal; duplicate names raise :class:`SignalError`."""
        if signal.key in self._signals:
            raise SignalError(f"duplicate signal name: {signal.name!r}")
        self._signals[signal.key] = signal

    def get(self, name: str) -> Signal:
        """Look a signal up by (case-insensitive) name."""
        try:
            return self._signals[str(name).lower()]
        except KeyError as exc:
            raise SignalError(f"unknown signal: {name!r}") from exc

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._signals

    def __iter__(self) -> Iterator[Signal]:
        return iter(self._signals.values())

    def __len__(self) -> int:
        return len(self._signals)

    @property
    def names(self) -> tuple[str, ...]:
        """Signal names in sheet order."""
        return tuple(signal.name for signal in self._signals.values())

    @property
    def inputs(self) -> tuple[Signal, ...]:
        """All signals the test stand stimulates."""
        return tuple(s for s in self if s.is_input)

    @property
    def outputs(self) -> tuple[Signal, ...]:
        """All signals the test stand measures."""
        return tuple(s for s in self if s.is_output)

    @property
    def initial_statuses(self) -> Mapping[str, str]:
        """Mapping signal name -> initial status name (only where defined)."""
        return {
            signal.name: signal.initial_status
            for signal in self
            if signal.initial_status
        }

    def pins(self) -> tuple[str, ...]:
        """All DUT pins referenced by any signal, in first-seen order."""
        seen: dict[str, None] = {}
        for signal in self:
            for pin in signal.pins:
                seen.setdefault(pin, None)
        return tuple(seen)

    def signal_for_pin(self, pin: str) -> Signal:
        """Find the signal a physical pin belongs to."""
        wanted = str(pin).lower()
        for signal in self:
            if any(p.lower() == wanted for p in signal.pins):
                return signal
        raise SignalError(f"no signal owns pin {pin!r}")

    def __repr__(self) -> str:
        return f"SignalSet(dut={self.dut!r}, signals={list(self._signals)!r})"


def merge_signal_sets(sets: Iterable[SignalSet], *, dut: str,
                      composition: str | None = None) -> SignalSet:
    """Union of member signal definition sheets, with collision detection.

    Field-identical redefinitions deduplicate silently - that is the shared
    vocabulary case, e.g. two members both declaring the same ``IGN_ST``
    bus signal.  A same-named signal with a *different* definition is a
    composition error: the sheets would no longer say which member's signal
    a step means.
    """
    merged = SignalSet(dut=dut, composition=composition)
    for signal_set in sets:
        for signal in signal_set:
            if signal.name in merged:
                existing = merged.get(signal.name)
                if existing == signal:
                    continue
                raise CompositionError(
                    f"signal {signal.name!r} is defined differently by two "
                    f"composed members ({existing!r} vs {signal!r})"
                )
            merged.add(signal)
    return merged
