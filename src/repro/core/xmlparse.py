"""XML test-script parsing (the interpreter's entry point).

The test stand side of the tool chain never sees the Excel sheets - it only
receives the generated XML file.  This module parses such a file back into
the in-memory :class:`~repro.core.script.TestScript` representation that the
interpreter (:mod:`repro.teststand.interpreter`) executes.

The parser is strict about structure (every ``<signal>`` must contain
exactly one method element, steps must be numbered increasingly) but liberal
about unknown method names: they are preserved verbatim so that a stand with
proprietary methods can still run scripts mentioning them, and so that
round-tripping a script through XML is loss-free.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import IO

from .errors import ScriptError
from .script import MethodCall, ScriptStep, SignalAction, TestScript
from .values import parse_number

__all__ = ["parse_script", "script_from_element", "script_from_string", "read_script"]


def _parse_signal(element: ET.Element, *, context: str) -> SignalAction:
    name = element.get("name")
    if not name:
        raise ScriptError(f"<signal> without a name attribute in {context}")
    children = list(element)
    if len(children) != 1:
        raise ScriptError(
            f"<signal name={name!r}> must contain exactly one method element "
            f"({len(children)} found) in {context}"
        )
    method_element = children[0]
    params = dict(method_element.attrib)
    return SignalAction(name, MethodCall(method_element.tag, params))


def _parse_step(element: ET.Element) -> ScriptStep:
    number_text = element.get("number")
    if number_text is None:
        raise ScriptError("<step> without a number attribute")
    try:
        number = int(number_text)
    except ValueError as exc:
        raise ScriptError(f"step number {number_text!r} is not an integer") from exc
    dt_text = element.get("dt", "0")
    try:
        duration = parse_number(dt_text)
    except Exception as exc:
        raise ScriptError(f"step {number}: cannot parse dt={dt_text!r}") from exc
    actions = [
        _parse_signal(signal, context=f"step {number}")
        for signal in element.findall("signal")
    ]
    return ScriptStep(
        number=number,
        duration=float(duration or 0.0),
        actions=tuple(actions),
        remark=element.get("remark", ""),
        requirement=element.get("requirement"),
    )


def script_from_element(root: ET.Element) -> TestScript:
    """Build a :class:`TestScript` from a parsed ``<testscript>`` element."""
    if root.tag != "testscript":
        raise ScriptError(f"expected <testscript> root element, got <{root.tag}>")
    name = root.get("name")
    dut = root.get("dut")
    if not name or not dut:
        raise ScriptError("<testscript> needs both name and dut attributes")

    description = ""
    metadata: dict[str, str] = {}
    variables: list[str] = []
    header = root.find("header")
    if header is not None:
        description_element = header.find("description")
        if description_element is not None and description_element.text:
            description = description_element.text.strip()
        for meta in header.findall("meta"):
            key = meta.get("name")
            if key:
                metadata[key] = meta.get("value", "")
        variables_element = header.find("variables")
        if variables_element is not None:
            for variable in variables_element.findall("variable"):
                var_name = variable.get("name")
                if var_name:
                    variables.append(var_name)

    setup: list[SignalAction] = []
    setup_element = root.find("setup")
    if setup_element is not None:
        setup = [
            _parse_signal(signal, context="setup")
            for signal in setup_element.findall("signal")
        ]

    steps: list[ScriptStep] = []
    steps_element = root.find("steps")
    if steps_element is not None:
        steps = [_parse_step(step) for step in steps_element.findall("step")]
    else:
        # Tolerate flat scripts with <step> children directly under the root.
        steps = [_parse_step(step) for step in root.findall("step")]

    return TestScript(
        name=name,
        dut=dut,
        steps=steps,
        setup=setup,
        variables=variables,
        metadata=metadata,
        description=description,
    )


def script_from_string(text: str) -> TestScript:
    """Parse a test script from its XML text."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ScriptError(f"malformed XML test script: {exc}") from exc
    return script_from_element(root)


def read_script(source: str | IO[str]) -> TestScript:
    """Read a test script from a file path or text stream."""
    if hasattr(source, "read"):
        return script_from_string(source.read())  # type: ignore[union-attr]
    with open(source, "r", encoding="utf-8") as handle:
        return script_from_string(handle.read())


#: Backwards-compatible alias: ``parse_script`` accepts either XML text or a path.
def parse_script(source: str) -> TestScript:
    """Parse XML text (or, when the string names an existing file, that file)."""
    import os

    if os.path.exists(source) and not source.lstrip().startswith("<"):
        return read_script(source)
    return script_from_string(source)
