"""Test definition model: test steps, sheets and suites.

A *test definition sheet* (the paper's first table) is a sequence of timed
steps.  Each step assigns statuses to one or more signals; a status assigned
to an input signal is a stimulus, a status assigned to an output signal is an
expectation.  Signals not mentioned in a step simply keep their previous
status - that "sparse column" convention is what makes the sheets readable
and is preserved here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from .errors import DefinitionError
from .signals import SignalSet
from .status import StatusTable
from .values import format_number, parse_number

__all__ = ["StatusAssignment", "TestStep", "TestDefinition", "TestSuite"]


@dataclass(frozen=True)
class StatusAssignment:
    """Assignment of one status to one signal within a test step."""

    signal: str
    status: str

    def __post_init__(self) -> None:
        if not str(self.signal).strip():
            raise DefinitionError("status assignment without a signal name")
        if not str(self.status).strip():
            raise DefinitionError(
                f"empty status assigned to signal {self.signal!r}"
            )

    def __str__(self) -> str:
        return f"{self.signal}={self.status}"


@dataclass(frozen=True)
class TestStep:
    """One row of a test definition sheet.

    Parameters
    ----------
    number:
        Step number as written in the sheet (0-based in the paper).
    duration:
        The Δt column, in seconds: how long the step lasts before the
        expectations are evaluated and the next step begins.
    assignments:
        Status assignments of this step, in column order.
    remark:
        Free-text remark column.
    requirement:
        Optional requirement identifier for traceability (extension beyond
        the paper, used by :mod:`repro.analysis.traceability`).
    """

    number: int
    duration: float
    assignments: tuple[StatusAssignment, ...] = ()
    remark: str = ""
    requirement: str | None = None

    def __post_init__(self) -> None:
        if self.number < 0:
            raise DefinitionError(f"step number must be >= 0, got {self.number}")
        duration = float(self.duration)
        if duration < 0:
            raise DefinitionError(f"step duration must be >= 0, got {duration}")
        object.__setattr__(self, "duration", duration)
        object.__setattr__(self, "assignments", tuple(self.assignments))
        seen: set[str] = set()
        for assignment in self.assignments:
            key = assignment.signal.lower()
            if key in seen:
                raise DefinitionError(
                    f"step {self.number} assigns signal {assignment.signal!r} twice"
                )
            seen.add(key)

    @property
    def signals(self) -> tuple[str, ...]:
        """Signals touched by this step, in column order."""
        return tuple(a.signal for a in self.assignments)

    def status_for(self, signal: str) -> str | None:
        """Status assigned to *signal* in this step, or ``None``."""
        wanted = str(signal).lower()
        for assignment in self.assignments:
            if assignment.signal.lower() == wanted:
                return assignment.status
        return None

    def with_assignment(self, signal: str, status: str) -> "TestStep":
        """Return a copy with one extra (or replaced) assignment."""
        kept = tuple(a for a in self.assignments if a.signal.lower() != str(signal).lower())
        return TestStep(
            number=self.number,
            duration=self.duration,
            assignments=kept + (StatusAssignment(signal, status),),
            remark=self.remark,
            requirement=self.requirement,
        )

    def __str__(self) -> str:
        pairs = ", ".join(str(a) for a in self.assignments)
        return f"step {self.number} (Δt={format_number(self.duration)}s): {pairs}"


class TestDefinition:
    """One test definition sheet: an ordered sequence of :class:`TestStep`.

    The paper notes that each test sheet covers *a certain part of the
    specification* and only mentions the signals relevant to that part; the
    sheet therefore records its own signal column order.
    """

    def __init__(
        self,
        name: str,
        steps: Iterable[TestStep] = (),
        *,
        signals: Sequence[str] = (),
        description: str = "",
        requirement: str | None = None,
    ):
        if not str(name).strip():
            raise DefinitionError("test definition needs a name")
        self.name = str(name).strip()
        self.description = description
        self.requirement = requirement
        self._steps: list[TestStep] = []
        self._columns: list[str] = [str(s) for s in signals]
        for step in steps:
            self.append(step)

    # -- construction -------------------------------------------------------

    def append(self, step: TestStep) -> None:
        """Append a step; numbers must be strictly increasing."""
        if self._steps and step.number <= self._steps[-1].number:
            raise DefinitionError(
                f"step numbers must increase: {step.number} after {self._steps[-1].number}"
            )
        for assignment in step.assignments:
            if assignment.signal not in self._columns and not any(
                c.lower() == assignment.signal.lower() for c in self._columns
            ):
                self._columns.append(assignment.signal)
        self._steps.append(step)

    def add_step(
        self,
        duration: float,
        assignments: Mapping[str, str] | Iterable[tuple[str, str]],
        *,
        remark: str = "",
        requirement: str | None = None,
    ) -> TestStep:
        """Convenience builder: append a step with the next free number."""
        number = self._steps[-1].number + 1 if self._steps else 0
        pairs = assignments.items() if isinstance(assignments, Mapping) else assignments
        step = TestStep(
            number=number,
            duration=duration,
            assignments=tuple(StatusAssignment(sig, status) for sig, status in pairs),
            remark=remark,
            requirement=requirement,
        )
        self.append(step)
        return step

    # -- access --------------------------------------------------------------

    @property
    def steps(self) -> tuple[TestStep, ...]:
        return tuple(self._steps)

    @property
    def columns(self) -> tuple[str, ...]:
        """Signal column order of the sheet."""
        return tuple(self._columns)

    @property
    def total_duration(self) -> float:
        """Sum of all step durations in seconds."""
        return sum(step.duration for step in self._steps)

    def statuses_used(self) -> tuple[str, ...]:
        """All status names referenced, in first-use order."""
        seen: dict[str, None] = {}
        for step in self._steps:
            for assignment in step.assignments:
                seen.setdefault(assignment.status, None)
        return tuple(seen)

    def signals_used(self) -> tuple[str, ...]:
        """All signal names referenced, in first-use order."""
        seen: dict[str, None] = {}
        for step in self._steps:
            for assignment in step.assignments:
                seen.setdefault(assignment.signal, None)
        return tuple(seen)

    def validate(self, signals: SignalSet, statuses: StatusTable) -> None:
        """Cross-check the sheet against the signal set and status table."""
        for step in self._steps:
            for assignment in step.assignments:
                if assignment.signal not in signals:
                    raise DefinitionError(
                        f"test {self.name!r} step {step.number} references unknown "
                        f"signal {assignment.signal!r}"
                    )
                if assignment.status not in statuses:
                    raise DefinitionError(
                        f"test {self.name!r} step {step.number} references unknown "
                        f"status {assignment.status!r}"
                    )

    def rows(self) -> list[tuple[str, ...]]:
        """Sheet contents in the paper's column layout.

        The first two columns are the step number and Δt, then one column per
        signal (empty cell when the step does not touch the signal), finally
        the remark column.
        """
        rendered: list[tuple[str, ...]] = []
        for step in self._steps:
            row = [str(step.number), format_number(step.duration, decimal_comma=True)]
            for column in self._columns:
                row.append(step.status_for(column) or "")
            row.append(step.remark)
            rendered.append(tuple(row))
        return rendered

    def header(self) -> tuple[str, ...]:
        """Column headers matching :meth:`rows`."""
        return ("test step", "dt", *self._columns, "remarks")

    def __iter__(self) -> Iterator[TestStep]:
        return iter(self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __repr__(self) -> str:
        return f"TestDefinition(name={self.name!r}, steps={len(self._steps)})"


class TestSuite:
    """A device under test plus everything needed to test it.

    Bundles the signal definition sheet, the status table and any number of
    test definition sheets - i.e. the complete, test-stand-independent
    description of the component tests for one DUT.
    """

    def __init__(
        self,
        dut: str,
        signals: SignalSet,
        statuses: StatusTable,
        tests: Iterable[TestDefinition] = (),
        *,
        description: str = "",
    ):
        if not str(dut).strip():
            raise DefinitionError("test suite needs a DUT name")
        self.dut = str(dut).strip()
        self.signals = signals
        self.statuses = statuses
        self.description = description
        self._tests: dict[str, TestDefinition] = {}
        for test in tests:
            self.add(test)

    def add(self, test: TestDefinition) -> None:
        """Add a test definition; duplicate names raise ``DefinitionError``."""
        key = test.name.lower()
        if key in self._tests:
            raise DefinitionError(f"duplicate test definition name: {test.name!r}")
        self._tests[key] = test

    def get(self, name: str) -> TestDefinition:
        """Look up a test definition by case-insensitive name."""
        try:
            return self._tests[str(name).lower()]
        except KeyError as exc:
            raise DefinitionError(f"unknown test definition: {name!r}") from exc

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._tests

    def __iter__(self) -> Iterator[TestDefinition]:
        return iter(self._tests.values())

    def __len__(self) -> int:
        return len(self._tests)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(test.name for test in self._tests.values())

    def validate(self) -> None:
        """Cross-check all tests against the suite's signals and statuses."""
        for test in self:
            test.validate(self.signals, self.statuses)

    def statuses_used(self) -> tuple[str, ...]:
        """All status names used by any test, in first-use order."""
        seen: dict[str, None] = {}
        for test in self:
            for status in test.statuses_used():
                seen.setdefault(status, None)
        for status in self.signals.initial_statuses.values():
            seen.setdefault(status, None)
        return tuple(seen)

    def __repr__(self) -> str:
        return f"TestSuite(dut={self.dut!r}, tests={list(self.names)!r})"
