"""XML test-script generation.

The paper chooses XML as the exchange format between test definition and
test execution: *"Besides header, step numbers etc. the most important
content of this file is given by many signal statements, each of them
followed by a method statement."*  The example fragment is::

    <signal name="int_ill">
          <get_u   u_max="(1.1*ubatt)" u_min="(0.7*ubatt)" />
    </signal>

This module writes a :class:`~repro.core.script.TestScript` into that
format.  The full document structure is:

.. code-block:: xml

    <testscript name="..." dut="...">
      <header>
        <description>...</description>
        <meta name="generator" value="repro"/>
        <variables>
          <variable name="ubatt"/>
        </variables>
      </header>
      <setup>
        <signal name="..."> <method .../> </signal> ...
      </setup>
      <steps>
        <step number="0" dt="0.5" remark="...">
          <signal name="..."> <method .../> </signal> ...
        </step>
      </steps>
    </testscript>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import IO

from .script import MethodCall, ScriptStep, SignalAction, TestScript
from .values import format_number

__all__ = ["script_to_element", "script_to_string", "write_script", "signal_fragment"]

_ENCODING = "utf-8"


def _method_element(call: MethodCall) -> ET.Element:
    element = ET.Element(call.method)
    for name, value in call.params.items():
        element.set(name, value)
    return element


def _signal_element(action: SignalAction) -> ET.Element:
    element = ET.Element("signal", {"name": action.signal})
    element.append(_method_element(action.call))
    return element


def _step_element(step: ScriptStep) -> ET.Element:
    attributes = {
        "number": str(step.number),
        "dt": format_number(step.duration),
    }
    if step.remark:
        attributes["remark"] = step.remark
    if step.requirement:
        attributes["requirement"] = step.requirement
    element = ET.Element("step", attributes)
    for action in step.actions:
        element.append(_signal_element(action))
    return element


def script_to_element(script: TestScript) -> ET.Element:
    """Convert a :class:`TestScript` into an ``xml.etree`` element tree."""
    root = ET.Element("testscript", {"name": script.name, "dut": script.dut})

    header = ET.SubElement(root, "header")
    if script.description:
        description = ET.SubElement(header, "description")
        description.text = script.description
    for key, value in script.metadata.items():
        ET.SubElement(header, "meta", {"name": key, "value": value})
    if script.variables:
        variables = ET.SubElement(header, "variables")
        for name in script.variables:
            ET.SubElement(variables, "variable", {"name": name})

    setup = ET.SubElement(root, "setup")
    for action in script.setup:
        setup.append(_signal_element(action))

    steps = ET.SubElement(root, "steps")
    for step in script.steps:
        steps.append(_step_element(step))

    return root


def script_to_string(script: TestScript, *, indent: str = "  ") -> str:
    """Serialise a :class:`TestScript` to a pretty-printed XML string."""
    root = script_to_element(script)
    ET.indent(root, space=indent)
    body = ET.tostring(root, encoding="unicode")
    return f'<?xml version="1.0" encoding="{_ENCODING}"?>\n{body}\n'


def write_script(script: TestScript, destination: str | IO[str]) -> None:
    """Write a :class:`TestScript` to a file path or text stream."""
    text = script_to_string(script)
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
        return
    with open(destination, "w", encoding=_ENCODING) as handle:
        handle.write(text)


def signal_fragment(action: SignalAction, *, indent: str = "  ") -> str:
    """Render one signal statement exactly as the paper's Section 3 shows it.

    Useful for documentation and for the X1 reproduction benchmark which
    compares the generated fragment against the snippet printed in the paper::

        <signal name="int_ill">
          <get_u u_max="(1.1*ubatt)" u_min="(0.7*ubatt)" />
        </signal>
    """
    params = " ".join(f'{name}="{value}"' for name, value in action.call.params.items())
    method_line = f"{indent}<{action.call.method} {params} />" if params else (
        f"{indent}<{action.call.method} />"
    )
    return f'<signal name="{action.signal}">\n{method_line}\n</signal>'
