"""Core test-definition model and tool chain (the paper's contribution)."""

from .compiler import CompileOptions, Compiler, compile_suite, compile_test
from .errors import (
    AllocationError,
    CapabilityError,
    CompileError,
    DefinitionError,
    ExecutionError,
    ExpressionError,
    HarnessError,
    InstrumentError,
    MethodError,
    ReproError,
    RoutingError,
    ScriptError,
    SheetError,
    SignalError,
    StatusError,
)
from .script import MethodCall, ScriptStep, SignalAction, TestScript
from .signals import Signal, SignalDirection, SignalKind, SignalSet
from .status import StatusDefinition, StatusTable
from .testdef import StatusAssignment, TestDefinition, TestStep, TestSuite
from .validation import Issue, Severity, assert_valid, validate_script, validate_suite
from .values import (
    INFINITY,
    Interval,
    LimitExpression,
    Quantity,
    format_binary,
    format_number,
    parse_binary,
    parse_number,
)
from .xmlgen import script_to_string, signal_fragment, write_script
from .xmlparse import parse_script, read_script, script_from_string

__all__ = [
    # errors
    "ReproError", "DefinitionError", "SheetError", "StatusError", "SignalError",
    "ExpressionError", "CompileError", "ScriptError", "ExecutionError",
    "AllocationError", "CapabilityError", "RoutingError", "InstrumentError",
    "HarnessError", "MethodError",
    # values
    "INFINITY", "Interval", "LimitExpression", "Quantity",
    "parse_number", "format_number", "parse_binary", "format_binary",
    # signals & statuses
    "Signal", "SignalDirection", "SignalKind", "SignalSet",
    "StatusDefinition", "StatusTable",
    # test definitions
    "StatusAssignment", "TestStep", "TestDefinition", "TestSuite",
    # scripts
    "MethodCall", "SignalAction", "ScriptStep", "TestScript",
    # compiler & xml
    "Compiler", "CompileOptions", "compile_test", "compile_suite",
    "script_to_string", "write_script", "signal_fragment",
    "parse_script", "read_script", "script_from_string",
    # validation
    "Issue", "Severity", "validate_suite", "validate_script", "assert_valid",
]
