"""Status model: the paper's *status table*.

Every symbolic status used in a signal or test definition sheet (``Off``,
``Open``, ``Closed``, ``0``, ``1``, ``Lo``, ``Ho`` in the paper) is defined
in the status table.  A definition binds the status to

* a **method** that realises it (``put_can``, ``put_r``, ``get_u``, ...),
* the method's principal **attribute** (``data``, ``r``, ``u``),
* an optional reference **variable** such as ``UBATT``; when present the
  numeric columns are understood as *factors* of that variable,
* numeric columns **nom / min / max** giving the nominal stimulus value and
  the acceptance limits,
* up to three free **auxiliary parameters** ``D1..D3`` for method-specific
  extras (settling time, minimum applicable resistance, ...).

The table is deliberately dumb: it records the sheet contents faithfully and
leaves interpretation to the method specification (see
:meth:`repro.methods.base.MethodSpec.params_from_status`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .errors import StatusError
from .values import format_number, parse_number

__all__ = ["StatusDefinition", "StatusTable"]


@dataclass(frozen=True)
class StatusDefinition:
    """One row of the status table.

    Numeric columns are stored both parsed (``nominal`` ...) and verbatim
    (``nominal_text`` ...).  The verbatim forms matter for payload statuses:
    the paper writes CAN payloads as ``0001B``, which is not a number but
    must survive the round trip into XML untouched.
    """

    name: str
    method: str
    attribute: str = ""
    variable: str | None = None
    nominal: float | None = None
    minimum: float | None = None
    maximum: float | None = None
    nominal_text: str = ""
    minimum_text: str = ""
    maximum_text: str = ""
    auxiliaries: tuple[float | None, ...] = (None, None, None)
    description: str = ""

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise StatusError("status name must not be empty")
        if not str(self.method).strip():
            raise StatusError(f"status {self.name!r} does not name a method")
        aux = tuple(self.auxiliaries)
        if len(aux) < 3:
            aux = aux + (None,) * (3 - len(aux))
        object.__setattr__(self, "auxiliaries", aux[:3])
        if not self.nominal_text and self.nominal is not None:
            object.__setattr__(self, "nominal_text", format_number(self.nominal))
        if not self.minimum_text and self.minimum is not None:
            object.__setattr__(self, "minimum_text", format_number(self.minimum))
        if not self.maximum_text and self.maximum is not None:
            object.__setattr__(self, "maximum_text", format_number(self.maximum))

    @property
    def key(self) -> str:
        """Canonical lower-case lookup key."""
        return str(self.name).lower()

    @property
    def is_relative(self) -> bool:
        """True when the numeric columns are factors of a reference variable."""
        return bool(self.variable)

    def auxiliary_value(self, name: str) -> float | None:
        """Return an auxiliary parameter (``d1``/``d2``/``d3``) by name."""
        normalised = str(name).strip().lower().replace(" ", "")
        mapping = {"d1": 0, "d2": 1, "d3": 2}
        if normalised not in mapping:
            return None
        return self.auxiliaries[mapping[normalised]]

    @classmethod
    def from_cells(
        cls,
        name: str,
        method: str,
        attribute: str = "",
        variable: str = "",
        nominal: str | float | None = None,
        minimum: str | float | None = None,
        maximum: str | float | None = None,
        d1: str | float | None = None,
        d2: str | float | None = None,
        d3: str | float | None = None,
        description: str = "",
    ) -> "StatusDefinition":
        """Build a definition from raw sheet cells (strings, possibly empty).

        Numeric cells that do not parse as numbers (e.g. ``0001B``) are kept
        only in their textual form; that is exactly what payload statuses
        need.
        """

        def parse_cell(cell: str | float | None) -> tuple[float | None, str]:
            if cell is None:
                return None, ""
            text = str(cell).strip()
            if not text:
                return None, ""
            try:
                return parse_number(text), text
            except Exception:
                return None, text

        nom, nom_text = parse_cell(nominal)
        mn, mn_text = parse_cell(minimum)
        mx, mx_text = parse_cell(maximum)

        def parse_aux(cell: str | float | None) -> float | None:
            if cell is None or not str(cell).strip():
                return None
            return parse_number(cell)

        return cls(
            name=str(name).strip(),
            method=str(method).strip(),
            attribute=str(attribute).strip(),
            variable=str(variable).strip() or None,
            nominal=nom,
            minimum=mn,
            maximum=mx,
            nominal_text=nom_text,
            minimum_text=mn_text,
            maximum_text=mx_text,
            auxiliaries=(parse_aux(d1), parse_aux(d2), parse_aux(d3)),
            description=description,
        )

    def as_row(self) -> tuple[str, ...]:
        """Render the definition back into the paper's column layout."""
        return (
            self.name,
            self.method,
            self.attribute,
            self.variable or "",
            self.nominal_text,
            self.minimum_text,
            self.maximum_text,
            format_number(self.auxiliaries[0]) if self.auxiliaries[0] is not None else "",
            format_number(self.auxiliaries[1]) if self.auxiliaries[1] is not None else "",
            format_number(self.auxiliaries[2]) if self.auxiliaries[2] is not None else "",
        )

    def __str__(self) -> str:
        return f"{self.name} -> {self.method}"


class StatusTable:
    """An ordered, case-insensitive collection of :class:`StatusDefinition`.

    One status table typically serves a whole project (or even an OEM/supplier
    partnership): the same ``Lo`` / ``Ho`` / ``Open`` / ``Closed`` vocabulary
    is reused by many test definition sheets, which is the knowledge-reuse
    point the paper makes.
    """

    COLUMNS = ("status", "method", "attribut", "var (x)", "nom", "min", "max",
               "D 1", "D 2", "D 3")

    def __init__(self, definitions: Iterable[StatusDefinition] = (), *, name: str = "status"):
        self.name = name
        self._definitions: dict[str, StatusDefinition] = {}
        for definition in definitions:
            self.add(definition)

    def add(self, definition: StatusDefinition, *, replace: bool = False) -> None:
        """Add a status definition; duplicates raise unless *replace*."""
        if definition.key in self._definitions and not replace:
            raise StatusError(f"duplicate status definition: {definition.name!r}")
        self._definitions[definition.key] = definition

    def get(self, name: str) -> StatusDefinition:
        """Look a status up by case-insensitive name."""
        try:
            return self._definitions[str(name).lower()]
        except KeyError as exc:
            raise StatusError(f"status {name!r} is not defined in the status table") from exc

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._definitions

    def __iter__(self) -> Iterator[StatusDefinition]:
        return iter(self._definitions.values())

    def __len__(self) -> int:
        return len(self._definitions)

    @property
    def names(self) -> tuple[str, ...]:
        """All status names in table order."""
        return tuple(d.name for d in self._definitions.values())

    def methods_used(self) -> tuple[str, ...]:
        """All method names referenced by the table, in first-use order."""
        seen: dict[str, None] = {}
        for definition in self:
            seen.setdefault(definition.method.lower(), None)
        return tuple(seen)

    def variables_used(self) -> tuple[str, ...]:
        """All reference variables (e.g. ``UBATT``) used by the table."""
        seen: dict[str, None] = {}
        for definition in self:
            if definition.variable:
                seen.setdefault(definition.variable.upper(), None)
        return tuple(seen)

    def merged_with(self, other: "StatusTable", *, name: str | None = None) -> "StatusTable":
        """Combine two tables; conflicting redefinitions raise ``StatusError``.

        Identical redefinitions are tolerated so that a shared base library
        can be merged with project-specific additions.
        """
        merged = StatusTable(self, name=name or f"{self.name}+{other.name}")
        for definition in other:
            if definition.key in merged._definitions:
                if merged._definitions[definition.key] != definition:
                    raise StatusError(
                        f"conflicting definitions for status {definition.name!r}"
                    )
                continue
            merged.add(definition)
        return merged

    def rows(self) -> list[tuple[str, ...]]:
        """Table contents in the paper's column layout (without header)."""
        return [definition.as_row() for definition in self]

    def __repr__(self) -> str:
        return f"StatusTable(name={self.name!r}, statuses={list(self.names)!r})"
