"""Static validation of suites and compiled scripts.

The paper's workflow places a lot of trust in early checking: sheets are
written by many different engineers ("usage ... to all involved engineers
without specific training"), so mistakes must be caught before the script
reaches an expensive test stand.  This module implements those checks as
pure functions that return a list of :class:`Issue` objects (empty list =
clean) so that callers can decide whether to warn or abort.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from ..methods import MethodRegistry, default_registry
from .errors import DefinitionError
from .script import TestScript
from .testdef import TestSuite
from .values import LimitExpression

__all__ = ["Severity", "Issue", "validate_suite", "validate_script", "assert_valid"]


class Severity(enum.Enum):
    """How bad an issue is."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Issue:
    """One finding of the validator."""

    severity: Severity
    location: str
    message: str

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def __str__(self) -> str:
        return f"{self.severity.value.upper()} {self.location}: {self.message}"


def _issue(severity: Severity, location: str, message: str) -> Issue:
    return Issue(severity, location, message)


def validate_suite(
    suite: TestSuite, registry: MethodRegistry | None = None
) -> list[Issue]:
    """Validate a test suite (sheets) before compilation.

    Checks performed:

    * every status referenced by a test or by an initial status exists,
    * every signal referenced by a test exists,
    * every status' method is known to the registry,
    * stimulus/measurement methods match the signal direction,
    * statuses defined but never used are reported as warnings,
    * output signals that are never checked are reported as warnings.
    """
    registry = registry or default_registry()
    issues: list[Issue] = []

    for signal_name, status_name in suite.signals.initial_statuses.items():
        if status_name not in suite.statuses:
            issues.append(_issue(
                Severity.ERROR,
                f"signals/{signal_name}",
                f"initial status {status_name!r} is not defined in the status table",
            ))

    for status in suite.statuses:
        if status.method not in registry:
            issues.append(_issue(
                Severity.ERROR,
                f"status/{status.name}",
                f"method {status.method!r} is not registered",
            ))

    used_statuses = {name.lower() for name in suite.statuses_used()}
    for status in suite.statuses:
        if status.key not in used_statuses:
            issues.append(_issue(
                Severity.WARNING,
                f"status/{status.name}",
                "status is defined but never used by this suite",
            ))

    checked_outputs: set[str] = set()
    for test in suite:
        location = f"test/{test.name}"
        for step in test:
            for assignment in step.assignments:
                step_location = f"{location}/step{step.number}"
                if assignment.signal not in suite.signals:
                    issues.append(_issue(
                        Severity.ERROR, step_location,
                        f"unknown signal {assignment.signal!r}",
                    ))
                    continue
                if assignment.status not in suite.statuses:
                    issues.append(_issue(
                        Severity.ERROR, step_location,
                        f"unknown status {assignment.status!r}",
                    ))
                    continue
                signal = suite.signals.get(assignment.signal)
                status = suite.statuses.get(assignment.status)
                if status.method not in registry:
                    continue  # already reported above
                spec = registry.get(status.method)
                if spec.is_stimulus and not signal.is_input:
                    issues.append(_issue(
                        Severity.ERROR, step_location,
                        f"stimulus status {status.name!r} assigned to output "
                        f"signal {signal.name!r}",
                    ))
                if spec.is_measurement and not signal.is_output:
                    issues.append(_issue(
                        Severity.ERROR, step_location,
                        f"measurement status {status.name!r} assigned to input "
                        f"signal {signal.name!r}",
                    ))
                if spec.is_measurement and signal.is_output:
                    checked_outputs.add(signal.key)

    for signal in suite.signals.outputs:
        if signal.key not in checked_outputs:
            issues.append(_issue(
                Severity.WARNING,
                f"signals/{signal.name}",
                "output signal is never checked by any test of the suite",
            ))

    return issues


def validate_script(
    script: TestScript, registry: MethodRegistry | None = None
) -> list[Issue]:
    """Validate a compiled (or hand-written / parsed) test script.

    Checks performed:

    * method names are known to the registry (unknown ones are warnings so
      that stand-specific methods survive),
    * parameters match the method schema,
    * expression parameters only reference declared variables,
    * step durations are non-negative and numbers strictly increase.
    """
    registry = registry or default_registry()
    issues: list[Issue] = []
    declared = {v.lower() for v in script.variables}

    def check_action(action, location: str) -> None:
        if action.method not in registry:
            issues.append(_issue(
                Severity.WARNING, location,
                f"method {action.method!r} is not in the registry",
            ))
        else:
            spec = registry.get(action.method)
            try:
                spec.validate_params(dict(action.call.params))
            except Exception as exc:
                issues.append(_issue(Severity.ERROR, location, str(exc)))
        for name, value in action.call.params.items():
            try:
                expression = LimitExpression(value)
            except Exception:
                continue
            undeclared = expression.variables - declared
            if undeclared:
                issues.append(_issue(
                    Severity.ERROR, location,
                    f"parameter {name!r} references undeclared variables "
                    f"{sorted(undeclared)}",
                ))

    for action in script.setup:
        check_action(action, f"setup/{action.signal}")

    previous = -1
    for step in script.steps:
        location = f"step{step.number}"
        if step.number <= previous:
            issues.append(_issue(
                Severity.ERROR, location,
                f"step number {step.number} does not increase (previous {previous})",
            ))
        previous = step.number
        if step.duration < 0:
            issues.append(_issue(
                Severity.ERROR, location, f"negative duration {step.duration}"
            ))
        for action in step.actions:
            check_action(action, f"{location}/{action.signal}")

    return issues


def assert_valid(issues: Iterable[Issue]) -> None:
    """Raise :class:`DefinitionError` when any issue is an error."""
    errors = [issue for issue in issues if issue.is_error]
    if errors:
        summary = "; ".join(str(issue) for issue in errors)
        raise DefinitionError(f"validation failed: {summary}")
