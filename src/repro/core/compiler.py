"""Compiler: test definition sheets -> stand-independent test scripts.

This is the paper's "tool ... for automatic generation of code, that can be
interpreted by any test stand".  The compiler resolves every symbolic status
of every step through the status table and the method registry into a fully
parameterised method call, while deliberately *not* resolving anything that
belongs to the test stand (supply-voltage-relative limits stay as
expressions, signals stay signals rather than pins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..methods import MethodRegistry, MethodSpec, default_registry
from .errors import CompileError
from .script import MethodCall, ScriptStep, SignalAction, TestScript
from .signals import Signal, SignalSet
from .status import StatusDefinition, StatusTable
from .testdef import TestDefinition, TestStep, TestSuite

__all__ = ["CompileOptions", "Compiler", "compile_suite", "compile_test"]


@dataclass(frozen=True)
class CompileOptions:
    """Tunable aspects of the compilation.

    Attributes
    ----------
    check_directions:
        Reject stimulus methods applied to DUT outputs and measurement
        methods applied to DUT inputs.  This catches the most common sheet
        editing mistake (swapping a column) at generation time instead of on
        the test stand.
    emit_setup:
        Whether the initial statuses from the signal definition sheet are
        emitted as a setup block before step 0.
    strict_statuses:
        Reject statuses whose method is unknown to the registry.  When off,
        unknown methods are passed through verbatim (useful when a stand
        brings proprietary methods).
    """

    check_directions: bool = True
    emit_setup: bool = True
    strict_statuses: bool = True


class Compiler:
    """Compile :class:`~repro.core.testdef.TestDefinition` objects to scripts."""

    def __init__(
        self,
        registry: MethodRegistry | None = None,
        options: CompileOptions | None = None,
    ):
        self.registry = registry or default_registry()
        self.options = options or CompileOptions()

    # -- public API ----------------------------------------------------------

    def compile_test(self, suite: TestSuite, test: TestDefinition | str) -> TestScript:
        """Compile one test definition of a suite into a test script."""
        definition = suite.get(test) if isinstance(test, str) else test
        definition.validate(suite.signals, suite.statuses)
        setup = self._compile_setup(suite) if self.options.emit_setup else ()
        steps = [
            self._compile_step(step, suite.signals, suite.statuses, definition.name)
            for step in definition
        ]
        return TestScript(
            name=definition.name,
            dut=suite.dut,
            steps=steps,
            setup=setup,
            description=definition.description,
            metadata={"generator": "repro", "suite": suite.dut},
        )

    def compile_suite(self, suite: TestSuite) -> list[TestScript]:
        """Compile every test definition of the suite."""
        return [self.compile_test(suite, test) for test in suite]

    # -- internals -----------------------------------------------------------

    def _compile_setup(self, suite: TestSuite) -> tuple[SignalAction, ...]:
        actions: list[SignalAction] = []
        for signal_name, status_name in suite.signals.initial_statuses.items():
            signal = suite.signals.get(signal_name)
            status = suite.statuses.get(status_name)
            spec = self._spec_for(status, step=None, signal=signal.name)
            if spec is not None and spec.is_measurement:
                # Initial statuses describe the state to establish before the
                # test; expectations make no sense there and are skipped for
                # outputs (the paper's sheet lists "Lo" as the resting state
                # of INT_ILL which is checked again by step 0 anyway).
                continue
            actions.append(self._build_action(signal, status, spec, step=None))
        return tuple(actions)

    def _compile_step(
        self,
        step: TestStep,
        signals: SignalSet,
        statuses: StatusTable,
        test_name: str,
    ) -> ScriptStep:
        stimuli: list[SignalAction] = []
        expectations: list[SignalAction] = []
        for assignment in step.assignments:
            try:
                signal = signals.get(assignment.signal)
                status = statuses.get(assignment.status)
            except Exception as exc:
                raise CompileError(str(exc), step=step.number, signal=assignment.signal) from exc
            spec = self._spec_for(status, step=step.number, signal=signal.name)
            action = self._build_action(signal, status, spec, step=step.number)
            # Within one step all stimuli are applied first, then the
            # expectations are evaluated after the step's Δt has elapsed.
            # Keeping them ordered in the IR lets any interpreter follow the
            # same convention.
            if spec is not None and spec.is_measurement:
                expectations.append(action)
            else:
                stimuli.append(action)
        return ScriptStep(
            number=step.number,
            duration=step.duration,
            actions=tuple(stimuli + expectations),
            remark=step.remark,
            requirement=step.requirement,
        )

    def _spec_for(
        self, status: StatusDefinition, *, step: int | None, signal: str
    ) -> MethodSpec | None:
        if status.method in self.registry:
            return self.registry.get(status.method)
        if self.options.strict_statuses:
            raise CompileError(
                f"status {status.name!r} uses unknown method {status.method!r}",
                step=step,
                signal=signal,
            )
        return None

    def _build_action(
        self,
        signal: Signal,
        status: StatusDefinition,
        spec: MethodSpec | None,
        *,
        step: int | None,
    ) -> SignalAction:
        if spec is None:
            params = {"status": status.name}
            return SignalAction(signal.name.lower(), MethodCall(status.method, params))
        if self.options.check_directions:
            self._check_direction(signal, spec, step=step)
        try:
            params = spec.params_from_status(status)
        except Exception as exc:
            raise CompileError(
                f"cannot build parameters for status {status.name!r}: {exc}",
                step=step,
                signal=signal.name,
            ) from exc
        return SignalAction(signal.name.lower(), MethodCall(spec.name, params))

    @staticmethod
    def _check_direction(signal: Signal, spec: MethodSpec, *, step: int | None) -> None:
        if spec.is_stimulus and not signal.is_input:
            raise CompileError(
                f"stimulus method {spec.name!r} applied to DUT output {signal.name!r}",
                step=step,
                signal=signal.name,
            )
        if spec.is_measurement and not signal.is_output:
            raise CompileError(
                f"measurement method {spec.name!r} applied to DUT input {signal.name!r}",
                step=step,
                signal=signal.name,
            )


def compile_test(
    suite: TestSuite,
    test: TestDefinition | str,
    *,
    registry: MethodRegistry | None = None,
    options: CompileOptions | None = None,
) -> TestScript:
    """Module-level convenience wrapper around :class:`Compiler`."""
    return Compiler(registry, options).compile_test(suite, test)


def compile_suite(
    suite: TestSuite,
    *,
    registry: MethodRegistry | None = None,
    options: CompileOptions | None = None,
) -> list[TestScript]:
    """Compile every test of *suite* (convenience wrapper)."""
    return Compiler(registry, options).compile_suite(suite)
