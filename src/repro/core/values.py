"""Physical values, tolerance intervals and limit expressions.

The paper's status table mixes several kinds of "values":

* plain numbers written with either a decimal point or a decimal comma
  (``0,5`` in the paper's German locale means ``0.5``),
* the special value ``INF`` (an open contact / infinite resistance),
* binary CAN payloads such as ``0001B``,
* limits that are *relative to a variable*, e.g. the status ``Ho`` is valid
  if the measured voltage lies between ``0.7*UBATT`` and ``1.1*UBATT``.

This module provides the small value algebra the rest of the toolchain is
built on:

``parse_number``
    tolerant numeric parser (decimal comma, ``INF``, empty cells).
``Quantity``
    a number together with a unit string.
``Interval``
    a closed tolerance interval with containment and scaling.
``LimitExpression``
    a tiny, safe arithmetic expression over named variables, used both for
    the XML representation (``(0.7*ubatt)``) and for evaluation on the test
    stand where the concrete ``UBATT`` is known.
"""

from __future__ import annotations

import ast
import functools
import math
import operator
import re
from dataclasses import dataclass
from typing import Iterable, Mapping

from .errors import ExpressionError, ValueError_

__all__ = [
    "INFINITY",
    "parse_number",
    "format_number",
    "parse_binary",
    "format_binary",
    "Quantity",
    "Interval",
    "LimitExpression",
    "compile_expression",
]

#: Canonical representation of an unbounded value (e.g. an open contact).
INFINITY = math.inf

_INF_TOKENS = {"INF", "INFINITY", "OO", "∞"}

_NUMBER_RE = re.compile(r"^[+-]?(\d+([.,]\d*)?|[.,]\d+)([eE][+-]?\d+)?$")


def parse_number(text: str | float | int | None, *, allow_empty: bool = False) -> float | None:
    """Parse a numeric cell the way the paper's sheets write numbers.

    Accepts decimal commas (``0,5``), decimal points, scientific notation
    (``1,00E+06``), the ``INF`` token and - when *allow_empty* is true -
    empty cells (returned as ``None``).

    Raises :class:`~repro.core.errors.ValueError_` for anything else.
    """
    if text is None:
        if allow_empty:
            return None
        raise ValueError_("empty cell where a number was required")
    if isinstance(text, (int, float)):
        return float(text)
    stripped = str(text).strip()
    if not stripped:
        if allow_empty:
            return None
        raise ValueError_("empty cell where a number was required")
    if stripped.upper() in _INF_TOKENS:
        return INFINITY
    if stripped.upper() in {"-INF", "-INFINITY"}:
        return -INFINITY
    if not _NUMBER_RE.match(stripped):
        raise ValueError_(f"cannot parse number: {stripped!r}")
    normalised = stripped.replace(",", ".")
    try:
        return float(normalised)
    except ValueError as exc:  # pragma: no cover - regex should prevent this
        raise ValueError_(f"cannot parse number: {stripped!r}") from exc


def format_number(value: float | None, *, decimal_comma: bool = False) -> str:
    """Format a number the way the paper's sheets print them.

    Integers lose their trailing ``.0``, infinity becomes ``INF`` and - when
    *decimal_comma* is requested - the decimal separator is a comma, matching
    the paper's tables.
    """
    if value is None:
        return ""
    if math.isinf(value):
        return "INF" if value > 0 else "-INF"
    if float(value).is_integer() and abs(value) < 1e15:
        text = str(int(value))
    else:
        text = repr(float(value))
    if decimal_comma:
        text = text.replace(".", ",")
    return text


_BINARY_RE = re.compile(r"^([01]+)B$", re.IGNORECASE)
_HEX_RE = re.compile(r"^([0-9a-fA-F]+)H$")


def parse_binary(text: str) -> int:
    """Parse a CAN payload literal such as ``0001B`` (binary) or ``1AH`` (hex).

    Plain decimal integers are accepted as well so that status tables may
    simply write ``3``.
    """
    stripped = str(text).strip()
    if not stripped:
        raise ValueError_("empty CAN payload literal")
    match = _BINARY_RE.match(stripped)
    if match:
        return int(match.group(1), 2)
    match = _HEX_RE.match(stripped)
    if match:
        return int(match.group(1), 16)
    if stripped.isdigit() or (stripped[0] in "+-" and stripped[1:].isdigit()):
        return int(stripped)
    raise ValueError_(f"cannot parse CAN payload literal: {text!r}")


def format_binary(value: int, *, width: int = 4) -> str:
    """Format an integer as the paper's binary payload literal (``0001B``)."""
    if value < 0:
        raise ValueError_("CAN payload literals must be non-negative")
    bits = format(value, "b")
    if len(bits) < width:
        bits = bits.zfill(width)
    return bits + "B"


@dataclass(frozen=True)
class Quantity:
    """A physical quantity: a magnitude plus a unit string.

    Units are not converted automatically (the tool chain always works in
    SI-ish base units: volts, ohms, amperes, seconds); the unit is carried
    for documentation, reports and range checking of resources.
    """

    value: float
    unit: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", float(self.value))

    def __str__(self) -> str:
        if self.unit:
            return f"{format_number(self.value)} {self.unit}"
        return format_number(self.value)

    def __float__(self) -> float:
        return self.value

    def with_value(self, value: float) -> "Quantity":
        """Return a copy carrying the same unit but a different magnitude."""
        return Quantity(value, self.unit)

    def compatible_with(self, other: "Quantity") -> bool:
        """True when both quantities share a unit (or one has none)."""
        return self.unit == other.unit or not self.unit or not other.unit


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[low, high]`` used for tolerance checks.

    Intervals are the backbone of expectation checking: a ``get_u`` status
    passes when the measured voltage lies inside the interval obtained by
    scaling the status' min/max factors with the stand's supply voltage.

    Edge semantics are part of the contract and the static analyzer's
    E-EMPTY-INTERVAL rule depends on them being well-defined:

    * the interval is *closed*: ``contains(low)`` and ``contains(high)``
      are both true, and two intervals sharing only a boundary point
      ``intersects`` each other;
    * empty intervals cannot be constructed - ``low > high`` raises
      :class:`~repro.core.errors.ValueError_` at construction (callers
      that want normalisation swap the bounds first, as
      :func:`repro.methods.base.limits_from_params` does), so an interval
      that silently never matches anything does not exist;
    * NaN bounds are rejected for the same reason: ``NaN`` compares false
      against everything, so a NaN bound would slip past the ``low >
      high`` check yet make ``contains`` unsatisfiable;
    * a negative ``tolerance`` passed to :meth:`contains` narrows instead
      of widening and may legitimately produce a never-matching check -
      that is the caller's explicit request, not a construction artefact.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        low = float(self.low)
        high = float(self.high)
        if math.isnan(low) or math.isnan(high):
            raise ValueError_(
                f"interval bounds must not be NaN, got [{low}, {high}]"
            )
        if low > high:
            raise ValueError_(f"interval low {low} exceeds high {high}")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    def contains(self, value: float, *, tolerance: float = 0.0) -> bool:
        """Whether *value* lies inside the interval (optionally widened).

        Boundary values are inside (closed interval); *tolerance* widens
        both edges before the check.
        """
        return (self.low - tolerance) <= value <= (self.high + tolerance)

    def scaled(self, factor: float) -> "Interval":
        """Scale both bounds by *factor* (used for UBATT-relative limits)."""
        lo = self.low * factor
        hi = self.high * factor
        if lo > hi:
            lo, hi = hi, lo
        return Interval(lo, hi)

    def widened(self, margin: float) -> "Interval":
        """Return an interval widened by *margin* on both sides."""
        return Interval(self.low - margin, self.high + margin)

    def intersects(self, other: "Interval") -> bool:
        """Whether the two intervals overlap.

        Closed-interval semantics: touching at a single boundary point
        (``self.high == other.low``) counts as overlapping.  Because empty
        intervals cannot be constructed, ``intersects`` never returns a
        vacuous ``False`` for an interval that could match nothing.
        """
        return self.low <= other.high and other.low <= self.high

    def clamp(self, value: float) -> float:
        """Clamp *value* into the interval."""
        return min(max(value, self.low), self.high)

    @property
    def width(self) -> float:
        """Interval width (``high - low``)."""
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        """Interval midpoint, useful for nominal stimulus selection."""
        if math.isinf(self.low) or math.isinf(self.high):
            return self.low if math.isinf(self.high) else self.high
        return (self.low + self.high) / 2.0

    def __str__(self) -> str:
        return f"[{format_number(self.low)}, {format_number(self.high)}]"


# --------------------------------------------------------------------------
# Limit expressions
# --------------------------------------------------------------------------

_ALLOWED_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
}

_ALLOWED_UNARYOPS = {
    ast.UAdd: operator.pos,
    ast.USub: operator.neg,
}

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class LimitExpression:
    """A tiny, safe arithmetic expression over named variables.

    The paper's XML represents limits such as ``(0.7*ubatt)`` textually and
    leaves the evaluation to the test stand, which knows the actual supply
    voltage.  ``LimitExpression`` mirrors that: the expression keeps its
    textual form (so generated XML matches the paper byte for byte) and can
    be evaluated against a variable mapping.

    Only numbers, identifiers, ``+ - * /``, unary signs and parentheses are
    accepted; anything else raises :class:`ExpressionError`.
    """

    __slots__ = ("_text", "_tree", "_variables")

    def __init__(self, text: str | float | int):
        if isinstance(text, (int, float)):
            text = format_number(float(text))
        self._text = str(text).strip()
        if not self._text:
            raise ExpressionError("empty limit expression")
        source = self._normalise(self._text)
        try:
            tree = ast.parse(source, mode="eval")
        except SyntaxError as exc:
            raise ExpressionError(f"malformed expression: {self._text!r}") from exc
        self._validate(tree.body)
        self._tree = tree.body
        self._variables = frozenset(self._collect_variables(tree.body))

    @staticmethod
    def _normalise(text: str) -> str:
        stripped = text.strip()
        # The sheets may use decimal commas; only replace commas that sit
        # between digits so argument-separating commas stay illegal.
        stripped = re.sub(r"(?<=\d),(?=\d)", ".", stripped)
        if stripped.upper() in _INF_TOKENS:
            return "inf"
        return stripped

    @classmethod
    def _validate(cls, node: ast.AST) -> None:
        if isinstance(node, ast.Expression):
            cls._validate(node.body)
        elif isinstance(node, ast.BinOp):
            if type(node.op) not in _ALLOWED_BINOPS:
                raise ExpressionError(f"operator {type(node.op).__name__} not allowed")
            cls._validate(node.left)
            cls._validate(node.right)
        elif isinstance(node, ast.UnaryOp):
            if type(node.op) not in _ALLOWED_UNARYOPS:
                raise ExpressionError(f"operator {type(node.op).__name__} not allowed")
            cls._validate(node.operand)
        elif isinstance(node, ast.Num):  # pragma: no cover - legacy node type
            pass
        elif isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, float)):
                raise ExpressionError(f"constant {node.value!r} not allowed")
        elif isinstance(node, ast.Name):
            if not _IDENT_RE.match(node.id):
                raise ExpressionError(f"identifier {node.id!r} not allowed")
        else:
            raise ExpressionError(f"construct {type(node).__name__} not allowed in expression")

    @classmethod
    def _collect_variables(cls, node: ast.AST) -> Iterable[str]:
        if isinstance(node, ast.BinOp):
            yield from cls._collect_variables(node.left)
            yield from cls._collect_variables(node.right)
        elif isinstance(node, ast.UnaryOp):
            yield from cls._collect_variables(node.operand)
        elif isinstance(node, ast.Name):
            if node.id.lower() != "inf":
                yield node.id.lower()

    # -- public API ---------------------------------------------------------

    @property
    def text(self) -> str:
        """The original textual form (as written in the sheet or XML)."""
        return self._text

    @property
    def variables(self) -> frozenset[str]:
        """Lower-cased names of all variables referenced by the expression."""
        return self._variables

    @property
    def is_constant(self) -> bool:
        """True when the expression references no variables."""
        return not self._variables

    def evaluate(self, variables: Mapping[str, float] | None = None) -> float:
        """Evaluate the expression against a case-insensitive variable map."""
        lowered = {str(k).lower(): float(v) for k, v in (variables or {}).items()}
        missing = self._variables - set(lowered)
        if missing:
            raise ExpressionError(
                f"expression {self._text!r} needs variables {sorted(missing)}"
            )
        return self._eval(self._tree, lowered)

    @classmethod
    def _eval(cls, node: ast.AST, variables: Mapping[str, float]) -> float:
        if isinstance(node, ast.BinOp):
            left = cls._eval(node.left, variables)
            right = cls._eval(node.right, variables)
            try:
                return _ALLOWED_BINOPS[type(node.op)](left, right)
            except ZeroDivisionError as exc:
                raise ExpressionError("division by zero in limit expression") from exc
        if isinstance(node, ast.UnaryOp):
            return _ALLOWED_UNARYOPS[type(node.op)](cls._eval(node.operand, variables))
        if isinstance(node, ast.Constant):
            return float(node.value)
        if isinstance(node, ast.Name):
            if node.id.lower() == "inf":
                return INFINITY
            return variables[node.id.lower()]
        raise ExpressionError(f"cannot evaluate node {type(node).__name__}")  # pragma: no cover

    # -- constructors -------------------------------------------------------

    @classmethod
    def relative(cls, factor: float, variable: str) -> "LimitExpression":
        """Build the paper's canonical relative form, e.g. ``(0.7*ubatt)``."""
        return cls(f"({format_number(factor)}*{variable.lower()})")

    @classmethod
    def constant(cls, value: float) -> "LimitExpression":
        """Build an expression holding a plain constant."""
        return cls(format_number(value))

    # -- dunder -------------------------------------------------------------

    def __str__(self) -> str:
        return self._text

    def __repr__(self) -> str:
        return f"LimitExpression({self._text!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LimitExpression):
            return self._text == other._text
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._text)


@functools.lru_cache(maxsize=4096)
def compile_expression(text: str) -> LimitExpression:
    """Parse *text* into a :class:`LimitExpression`, caching by source text.

    Limit expressions are immutable after construction and their evaluation
    is pure, so one compiled instance can serve every caller that sees the
    same textual form.  The interpreter/allocator hot path evaluates the
    same handful of script parameters thousands of times per campaign;
    interning the parse step turns each of those into a tree walk instead
    of an ``ast.parse``.
    """
    return LimitExpression(text)
