"""Intermediate representation of a compiled test script.

The XML file the paper generates ("test script") is a flat, stand-neutral
sequence of steps; each step carries *signal statements*, each followed by a
*method statement* with fully resolved parameters.  This module models that
structure in memory:

``MethodCall``   one method statement (name + textual parameters)
``SignalAction`` one signal statement (signal name + its method call)
``ScriptStep``   one step (number, Δt, ordered signal actions)
``TestScript``   the whole script (setup actions + steps + metadata)

Parameters stay *textual* in the IR: limits such as ``(0.7*ubatt)`` must not
be evaluated before the script reaches a concrete test stand, because only
the stand knows its supply voltage.  This mirrors the paper's split between
test definition and test execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from .errors import ScriptError
from .values import LimitExpression, compile_expression, format_number

__all__ = ["MethodCall", "SignalAction", "ScriptStep", "TestScript"]


@dataclass(frozen=True)
class MethodCall:
    """One method statement: a method name plus textual parameters."""

    method: str
    params: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not str(self.method).strip():
            raise ScriptError("method call without a method name")
        frozen = MappingProxyType({str(k): str(v) for k, v in dict(self.params).items()})
        object.__setattr__(self, "params", frozen)

    def __reduce__(self):
        # The frozen MappingProxyType view cannot be pickled; rebuild from a
        # plain dict so scripts can cross process boundaries (executor jobs).
        return (type(self), (self.method, dict(self.params)))

    def param(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive parameter lookup."""
        wanted = str(name).lower()
        for key, value in self.params.items():
            if key.lower() == wanted:
                return value
        return default

    def variables(self) -> frozenset[str]:
        """All variables referenced by any expression-valued parameter."""
        names: set[str] = set()
        for value in self.params.values():
            try:
                names |= compile_expression(str(value)).variables
            except Exception:
                continue
        return frozenset(names)

    def __eq__(self, other: object) -> bool:
        if self is other:
            # Identity first: cache lookups keyed by long-lived call objects
            # (repro.methods.base) compare the very same instance on every
            # hit, and the dict rebuilds below are the expensive part.
            return True
        if isinstance(other, MethodCall):
            return (
                self.method.lower() == other.method.lower()
                and dict(self.params) == dict(other.params)
            )
        return NotImplemented

    def __hash__(self) -> int:
        # Memoised: calls are immutable, and the parse caches in
        # repro.methods.base hash the same long-lived call objects on every
        # measurement, so the sort-and-lower must only ever run once.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.method.lower(), tuple(sorted(self.params.items()))))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __str__(self) -> str:
        rendered = " ".join(f'{k}="{v}"' for k, v in self.params.items())
        return f"{self.method} {rendered}".strip()


@dataclass(frozen=True)
class SignalAction:
    """One signal statement: a signal name and the method call applied to it."""

    signal: str
    call: MethodCall

    def __post_init__(self) -> None:
        if not str(self.signal).strip():
            raise ScriptError("signal action without a signal name")

    @property
    def method(self) -> str:
        """Shortcut to the method name."""
        return self.call.method

    def __str__(self) -> str:
        return f"{self.signal}: {self.call}"


@dataclass(frozen=True)
class ScriptStep:
    """One script step: number, duration and its ordered signal actions."""

    number: int
    duration: float
    actions: tuple[SignalAction, ...] = ()
    remark: str = ""
    requirement: str | None = None

    def __post_init__(self) -> None:
        if self.number < 0:
            raise ScriptError(f"step number must be >= 0, got {self.number}")
        duration = float(self.duration)
        if duration < 0:
            raise ScriptError(f"step duration must be >= 0, got {duration}")
        object.__setattr__(self, "duration", duration)
        object.__setattr__(self, "actions", tuple(self.actions))

    def actions_for(self, signal: str) -> tuple[SignalAction, ...]:
        """All actions addressing *signal* (case-insensitive)."""
        wanted = str(signal).lower()
        return tuple(a for a in self.actions if a.signal.lower() == wanted)

    def methods_used(self) -> tuple[str, ...]:
        """Method names used by this step, in action order."""
        seen: dict[str, None] = {}
        for action in self.actions:
            seen.setdefault(action.method.lower(), None)
        return tuple(seen)

    def __str__(self) -> str:
        return (
            f"step {self.number} (dt={format_number(self.duration)}s, "
            f"{len(self.actions)} actions)"
        )


class TestScript:
    """A complete, test-stand-independent test script.

    Attributes
    ----------
    name:
        Script name (normally the test definition sheet's name).
    dut:
        Name of the device under test.
    setup:
        Signal actions establishing the initial statuses from the signal
        definition sheet, performed before step 0.
    steps:
        The ordered script steps.
    variables:
        Names of stand-supplied variables (e.g. ``ubatt``) the script's
        expressions reference.
    metadata:
        Free-form string metadata recorded in the XML header.
    """

    def __init__(
        self,
        name: str,
        dut: str,
        steps: Iterable[ScriptStep] = (),
        *,
        setup: Iterable[SignalAction] = (),
        variables: Iterable[str] = (),
        metadata: Mapping[str, str] | None = None,
        description: str = "",
    ):
        if not str(name).strip():
            raise ScriptError("test script needs a name")
        if not str(dut).strip():
            raise ScriptError("test script needs a DUT name")
        self.name = str(name).strip()
        self.dut = str(dut).strip()
        self.description = description
        self.setup: tuple[SignalAction, ...] = tuple(setup)
        self._steps: list[ScriptStep] = []
        for step in steps:
            self.append(step)
        declared = {str(v).lower() for v in variables}
        self._variables = tuple(sorted(declared | self._referenced_variables()))
        self.metadata: dict[str, str] = dict(metadata or {})

    def append(self, step: ScriptStep) -> None:
        """Append a step; numbers must be strictly increasing."""
        if self._steps and step.number <= self._steps[-1].number:
            raise ScriptError(
                f"step numbers must increase: {step.number} after {self._steps[-1].number}"
            )
        self._steps.append(step)

    def _referenced_variables(self) -> set[str]:
        names: set[str] = set()
        for action in self.setup:
            names |= action.call.variables()
        for step in self._steps:
            for action in step.actions:
                names |= action.call.variables()
        return names

    # -- access --------------------------------------------------------------

    @property
    def steps(self) -> tuple[ScriptStep, ...]:
        return tuple(self._steps)

    @property
    def variables(self) -> tuple[str, ...]:
        """Stand-supplied variables referenced by the script."""
        return self._variables

    @property
    def total_duration(self) -> float:
        """Sum of all step durations in seconds."""
        return sum(step.duration for step in self._steps)

    def signals_used(self) -> tuple[str, ...]:
        """All signal names referenced (setup + steps), in first-use order."""
        seen: dict[str, None] = {}
        for action in self.setup:
            seen.setdefault(action.signal, None)
        for step in self._steps:
            for action in step.actions:
                seen.setdefault(action.signal, None)
        return tuple(seen)

    def methods_used(self) -> tuple[str, ...]:
        """All method names referenced, in first-use order."""
        seen: dict[str, None] = {}
        for action in self.setup:
            seen.setdefault(action.method.lower(), None)
        for step in self._steps:
            for action in step.actions:
                seen.setdefault(action.method.lower(), None)
        return tuple(seen)

    def action_count(self) -> int:
        """Total number of signal actions (setup + steps)."""
        return len(self.setup) + sum(len(step.actions) for step in self._steps)

    def __iter__(self) -> Iterator[ScriptStep]:
        return iter(self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TestScript):
            return NotImplemented
        return (
            self.name == other.name
            and self.dut == other.dut
            and self.setup == other.setup
            and self.steps == other.steps
        )

    def __repr__(self) -> str:
        return (
            f"TestScript(name={self.name!r}, dut={self.dut!r}, "
            f"steps={len(self._steps)}, actions={self.action_count()})"
        )
