"""Exception hierarchy for the component-testing toolchain.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch toolchain problems without swallowing unrelated Python
errors.  The hierarchy mirrors the tool-chain stages described in the paper:

* definition-time problems (sheets, statuses, signals)  -> ``DefinitionError``
* compile-time problems (sheet -> XML generation)       -> ``CompileError``
* execution-time problems (interpreter on a test stand) -> ``ExecutionError``
* allocation problems ("no appropriate resource")       -> ``AllocationError``

Orthogonally to the stage taxonomy, errors are classified by
*recoverability* for the executor's retry machinery
(:func:`is_transient`): a :class:`TransientError` describes an
infrastructure hiccup (a flaky instrument round-trip, an allocation race)
that a retry may well cure, while definition / compile / configuration
errors are *permanent* - the same job would fail the same way on every
attempt, so retrying them only wastes wall clock.  Exceptions from outside
the hierarchy default to transient: an unclassified ``RuntimeError`` from a
plugin stand may be a race, and dropping a job over it would be worse than
one wasted attempt (``repro-lint``'s X-UNCLASSIFIED-RAISE rule nudges
plugin authors towards the explicit taxonomy).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An execution knob (worker count, concurrency, retries...) is invalid.

    Deliberately also a :class:`ValueError`: misconfigured executor or
    campaign parameters are plain bad arguments, and callers outside the
    library reasonably catch them as such.
    """


class DefinitionError(ReproError):
    """A test-definition artefact (sheet, status, signal) is inconsistent."""


class SheetError(DefinitionError):
    """A worksheet could not be parsed into its semantic model."""

    def __init__(self, message: str, sheet: str | None = None, row: int | None = None):
        location = ""
        if sheet is not None:
            location = f" [sheet={sheet!r}" + (f", row={row}" if row is not None else "") + "]"
        super().__init__(message + location)
        self.sheet = sheet
        self.row = row


class StatusError(DefinitionError):
    """A status definition is missing or malformed."""


class SignalError(DefinitionError):
    """A signal definition is missing or malformed."""


class ValueError_(DefinitionError):
    """A physical value or expression could not be parsed."""


class CompositionError(DefinitionError):
    """A multi-ECU composition is inconsistent (pin or bus collisions...)."""


class ExpressionError(ValueError_):
    """A limit expression (e.g. ``(0.7*ubatt)``) is malformed or unresolvable."""


class CompileError(ReproError):
    """Sheets could not be compiled into a test script."""

    def __init__(self, message: str, step: int | None = None, signal: str | None = None):
        location = ""
        if step is not None or signal is not None:
            parts = []
            if step is not None:
                parts.append(f"step={step}")
            if signal is not None:
                parts.append(f"signal={signal!r}")
            location = " [" + ", ".join(parts) + "]"
        super().__init__(message + location)
        self.step = step
        self.signal = signal


class ScriptError(ReproError):
    """An XML test script is malformed or semantically invalid."""


class ExecutionError(ReproError):
    """The interpreter could not execute a script step."""


class AllocationError(ExecutionError):
    """No appropriate resource/route could be found for a method call.

    This is the error message generation the paper describes: *"For each
    method to be carried out, the test stand searches an appropriate
    resource, that can be connected to the signal pin.  If this is not
    possible an error message is generated."*
    """

    def __init__(self, message: str, signal: str | None = None, method: str | None = None):
        location = ""
        if signal is not None or method is not None:
            parts = []
            if signal is not None:
                parts.append(f"signal={signal!r}")
            if method is not None:
                parts.append(f"method={method!r}")
            location = " [" + ", ".join(parts) + "]"
        super().__init__(message + location)
        self.signal = signal
        self.method = method


class CapabilityError(AllocationError):
    """A resource exists but the requested parameter is outside its range."""


class RoutingError(AllocationError):
    """A resource exists but cannot be routed to the signal's pins."""


class InstrumentError(ExecutionError):
    """A virtual instrument was driven outside its operating envelope."""


class TransientError(ReproError):
    """A recoverable infrastructure hiccup; the executor may retry the job.

    Raise (or subclass) this for failures where a fresh attempt has a real
    chance of succeeding: a dropped instrument connection, a worker racing
    another over a shared stand, a briefly locked store.  The interpreter
    deliberately lets transients *propagate* instead of absorbing them into
    ERROR verdicts, so the executor's retry layer sees them and a recovered
    job's verdicts are indistinguishable from an undisturbed run.
    """


class InstrumentIOError(TransientError, InstrumentError):
    """One (simulated) instrument I/O round-trip failed transiently.

    Both a :class:`TransientError` (the executor retries it) and an
    :class:`InstrumentError` (it happened inside an instrument): the fault
    the chaos harness (:mod:`repro.chaos`) injects to prove retries absorb
    flaky instrument I/O without changing a single verdict.
    """


class JobTimeoutError(ExecutionError):
    """A job exceeded its wall-clock deadline.

    Deliberately *not* transient: a job that blew its deadline once would
    blow it again, so the executor fails it fast and reports the structured
    reason instead of burning the remaining attempts.
    """

    def __init__(self, message: str, deadline: float | None = None):
        super().__init__(message)
        self.deadline = deadline


class StandQuarantinedError(ExecutionError):
    """A stand was quarantined after consecutive infrastructure failures.

    The executor's per-stand circuit breaker raises this for jobs routed to
    a stand that kept failing with infrastructure (non-verdict) errors;
    the job is reported ERROR with this structured reason instead of being
    executed against hardware that is evidently broken.
    """


class HarnessError(ExecutionError):
    """The DUT harness wiring is inconsistent (unknown pin, double drive...)."""


class MethodError(ReproError):
    """A method name is unknown or its parameters do not match its schema."""


class ReportError(ReproError):
    """A test report could not be produced or serialised."""


#: Error types the retry machinery treats as permanent: the job would fail
#: identically on every attempt, so it fails fast with its first error.
#: Types outside the hierarchy can opt in (or out) with a boolean
#: ``transient`` class attribute - :class:`repro.targets.TargetError` does -
#: without this module having to import them.
PERMANENT_ERRORS = (
    ConfigurationError,
    DefinitionError,
    CompileError,
    ScriptError,
    MethodError,
    ReportError,
    JobTimeoutError,
    StandQuarantinedError,
)


def is_transient(exc: BaseException) -> bool:
    """Whether the executor should retry a job that raised *exc*.

    Classification order: an explicit :class:`TransientError` always
    retries; an explicit boolean ``transient`` attribute on the exception
    (instance or class) is honoured next; the known-permanent taxonomy
    (:data:`PERMANENT_ERRORS`) fails fast; everything else - unclassified
    ``RuntimeError`` and friends from plugin stands - defaults to
    *transient*, because a wasted retry is cheaper than dropping a job
    over what may have been a race.
    """
    if isinstance(exc, TransientError):
        return True
    flagged = getattr(exc, "transient", None)
    if isinstance(flagged, bool):
        return flagged
    return not isinstance(exc, PERMANENT_ERRORS)
