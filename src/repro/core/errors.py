"""Exception hierarchy for the component-testing toolchain.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch toolchain problems without swallowing unrelated Python
errors.  The hierarchy mirrors the tool-chain stages described in the paper:

* definition-time problems (sheets, statuses, signals)  -> ``DefinitionError``
* compile-time problems (sheet -> XML generation)       -> ``CompileError``
* execution-time problems (interpreter on a test stand) -> ``ExecutionError``
* allocation problems ("no appropriate resource")       -> ``AllocationError``
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An execution knob (worker count, concurrency, retries...) is invalid.

    Deliberately also a :class:`ValueError`: misconfigured executor or
    campaign parameters are plain bad arguments, and callers outside the
    library reasonably catch them as such.
    """


class DefinitionError(ReproError):
    """A test-definition artefact (sheet, status, signal) is inconsistent."""


class SheetError(DefinitionError):
    """A worksheet could not be parsed into its semantic model."""

    def __init__(self, message: str, sheet: str | None = None, row: int | None = None):
        location = ""
        if sheet is not None:
            location = f" [sheet={sheet!r}" + (f", row={row}" if row is not None else "") + "]"
        super().__init__(message + location)
        self.sheet = sheet
        self.row = row


class StatusError(DefinitionError):
    """A status definition is missing or malformed."""


class SignalError(DefinitionError):
    """A signal definition is missing or malformed."""


class ValueError_(DefinitionError):
    """A physical value or expression could not be parsed."""


class CompositionError(DefinitionError):
    """A multi-ECU composition is inconsistent (pin or bus collisions...)."""


class ExpressionError(ValueError_):
    """A limit expression (e.g. ``(0.7*ubatt)``) is malformed or unresolvable."""


class CompileError(ReproError):
    """Sheets could not be compiled into a test script."""

    def __init__(self, message: str, step: int | None = None, signal: str | None = None):
        location = ""
        if step is not None or signal is not None:
            parts = []
            if step is not None:
                parts.append(f"step={step}")
            if signal is not None:
                parts.append(f"signal={signal!r}")
            location = " [" + ", ".join(parts) + "]"
        super().__init__(message + location)
        self.step = step
        self.signal = signal


class ScriptError(ReproError):
    """An XML test script is malformed or semantically invalid."""


class ExecutionError(ReproError):
    """The interpreter could not execute a script step."""


class AllocationError(ExecutionError):
    """No appropriate resource/route could be found for a method call.

    This is the error message generation the paper describes: *"For each
    method to be carried out, the test stand searches an appropriate
    resource, that can be connected to the signal pin.  If this is not
    possible an error message is generated."*
    """

    def __init__(self, message: str, signal: str | None = None, method: str | None = None):
        location = ""
        if signal is not None or method is not None:
            parts = []
            if signal is not None:
                parts.append(f"signal={signal!r}")
            if method is not None:
                parts.append(f"method={method!r}")
            location = " [" + ", ".join(parts) + "]"
        super().__init__(message + location)
        self.signal = signal
        self.method = method


class CapabilityError(AllocationError):
    """A resource exists but the requested parameter is outside its range."""


class RoutingError(AllocationError):
    """A resource exists but cannot be routed to the signal's pins."""


class InstrumentError(ExecutionError):
    """A virtual instrument was driven outside its operating envelope."""


class HarnessError(ExecutionError):
    """The DUT harness wiring is inconsistent (unknown pin, double drive...)."""


class MethodError(ReproError):
    """A method name is unknown or its parameters do not match its schema."""


class ReportError(ReproError):
    """A test report could not be produced or serialised."""
