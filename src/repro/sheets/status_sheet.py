"""Status definition sheet ("status table"): parsing and emitting.

Layout follows the paper's second table::

    status | method  | attribut | var (x) | nom   | min  | max  | D 1  | D 2  | D 3
    Off    | put_can | data     |         | 0001B |      |      |      |      |
    Open   | put_r   | r        |         | 0     | 0,5  | 1    | 2    |      |
    Closed | put_r   | r        |         | INF   | INF  | 5000 | 5000 |      |
    Lo     | get_u   | u        | UBATT   | 0     | 0    | 0,3  |      |      |
    Ho     | get_u   | u        | UBATT   | 1     | 0,7  | 1,1  |      |      |
"""

from __future__ import annotations

from ..core.errors import SheetError
from ..core.status import StatusDefinition, StatusTable
from .worksheet import Worksheet

__all__ = ["STATUS_SHEET_COLUMNS", "parse_status_sheet", "build_status_sheet"]

#: Canonical column titles of a status definition sheet (paper spelling).
STATUS_SHEET_COLUMNS = (
    "status", "method", "attribut", "var (x)", "nom", "min", "max",
    "D 1", "D 2", "D 3", "description",
)

_COLUMN_ALIASES = {
    "status": ("status",),
    "method": ("method",),
    "attribut": ("attribut", "attribute"),
    "var (x)": ("var (x)", "var", "variable"),
    "nom": ("nom", "nominal"),
    "min": ("min", "minimum"),
    "max": ("max", "maximum"),
    "d 1": ("d 1", "d1"),
    "d 2": ("d 2", "d2"),
    "d 3": ("d 3", "d3"),
    "description": ("description", "remark", "remarks"),
}


def _resolve_columns(columns: dict[str, int]) -> dict[str, int]:
    resolved: dict[str, int] = {}
    for canonical, aliases in _COLUMN_ALIASES.items():
        for alias in aliases:
            if alias in columns:
                resolved[canonical] = columns[alias]
                break
    return resolved


def parse_status_sheet(sheet: Worksheet, *, name: str | None = None) -> StatusTable:
    """Parse a status definition worksheet into a :class:`StatusTable`."""
    header_row, columns = sheet.find_header("status", "method")
    resolved = _resolve_columns(columns)
    table = StatusTable(name=name or sheet.name)

    def cell(row: int, title: str) -> str:
        column = resolved.get(title)
        if column is None:
            return ""
        return sheet.get(row, column).strip()

    for row in range(header_row + 1, sheet.row_count):
        if sheet.is_empty_row(row):
            continue
        status_name = cell(row, "status")
        method = cell(row, "method")
        if not status_name:
            raise SheetError("row without a status name", sheet=sheet.name, row=row)
        if not method:
            raise SheetError(
                f"status {status_name!r} has no method", sheet=sheet.name, row=row
            )
        try:
            definition = StatusDefinition.from_cells(
                name=status_name,
                method=method,
                attribute=cell(row, "attribut"),
                variable=cell(row, "var (x)"),
                nominal=cell(row, "nom"),
                minimum=cell(row, "min"),
                maximum=cell(row, "max"),
                d1=cell(row, "d 1"),
                d2=cell(row, "d 2"),
                d3=cell(row, "d 3"),
                description=cell(row, "description"),
            )
        except SheetError:
            raise
        except Exception as exc:
            raise SheetError(str(exc), sheet=sheet.name, row=row) from exc
        table.add(definition)
    return table


def build_status_sheet(table: StatusTable, *, name: str = "status") -> Worksheet:
    """Emit a :class:`StatusTable` as a status definition worksheet."""
    sheet = Worksheet(name)
    sheet.append_row(STATUS_SHEET_COLUMNS)
    for definition in table:
        sheet.append_row((*definition.as_row(), definition.description))
    return sheet
