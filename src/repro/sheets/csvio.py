"""CSV serialisation of worksheets.

CSV keeps the sheets human-editable (any spreadsheet program can open and
save them) without requiring a binary Excel library, which is the documented
substitution of this reproduction.  Semicolon-separated files with a decimal
comma - the form a German Excel would export - are accepted transparently.
"""

from __future__ import annotations

import csv
import io
import os
from typing import IO, Iterable

from ..core.errors import SheetError
from .worksheet import Worksheet

__all__ = ["worksheet_to_csv", "worksheet_from_csv", "write_worksheet", "read_worksheet"]


def worksheet_to_csv(sheet: Worksheet, *, delimiter: str = ",") -> str:
    """Serialise a worksheet to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    for row in sheet.rows():
        writer.writerow(row)
    return buffer.getvalue()


def _sniff_delimiter(text: str) -> str:
    first_line = text.splitlines()[0] if text.splitlines() else ""
    if first_line.count(";") > first_line.count(","):
        return ";"
    return ","


def worksheet_from_csv(
    text: str, name: str, *, delimiter: str | None = None
) -> Worksheet:
    """Parse CSV text into a worksheet.

    The delimiter is sniffed (``;`` vs ``,``) unless given explicitly.
    """
    if delimiter is None:
        delimiter = _sniff_delimiter(text)
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    sheet = Worksheet(name)
    for row in reader:
        sheet.append_row(row)
    return sheet


def write_worksheet(sheet: Worksheet, destination: str | IO[str]) -> None:
    """Write a worksheet to a CSV file path or text stream."""
    text = worksheet_to_csv(sheet)
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
        return
    with open(destination, "w", encoding="utf-8", newline="") as handle:
        handle.write(text)


def read_worksheet(source: str | IO[str], name: str | None = None) -> Worksheet:
    """Read a worksheet from a CSV file path or text stream."""
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
        if name is None:
            raise SheetError("a sheet name is required when reading from a stream")
        return worksheet_from_csv(text, name)
    path = str(source)
    if not os.path.exists(path):
        raise SheetError(f"worksheet file not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    inferred = name or os.path.splitext(os.path.basename(path))[0]
    return worksheet_from_csv(text, inferred)
